//! # gsknn-rs — the GSKNN kNN kernel, reproduced in Rust
//!
//! Umbrella crate for the reproduction of *Yu, Huang, Austin, Xiao &
//! Biros, "Performance Optimization for the K-Nearest Neighbors Kernel
//! on x86 Architectures" (SC'15)*. Re-exports the public API of every
//! workspace crate:
//!
//! * [`gsknn_core`] (as `core`) — the fused GSKNN kernel (blocking, packing,
//!   micro-kernel, variants, parallel schemes, performance model);
//! * [`knn_select`] (as `select`) — selection substrate (heaps, quickselect,
//!   merge selection);
//! * [`gemm`](gemm_kernel) — the blocked Goto GEMM substrate;
//! * [`reference`](knn_ref) — the GEMM-based and single-loop baselines
//!   plus the brute-force oracle;
//! * [`tree`](rkdt) / [`hashing`](lsh) — the approximate all-NN outer
//!   solvers the kernel plugs into;
//! * [`data`](dataset) — point sets, synthetic generators, metrics;
//! * [`serve`](gsknn_serve) / [`router`](gsknn_router) — the TCP serving
//!   tier and the scatter-gather front over partitioned indices.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the paper-to-code map.

pub use cluster as clustering;
pub use dataset as data;
pub use gemm_kernel as gemm;
pub use gsknn_core as core;
pub use gsknn_router as router;
pub use gsknn_serve as serve;
pub use knn_graph as graph;
pub use knn_ref as reference;
pub use knn_select as select;
pub use lsh as hashing;
pub use rkdt as tree;

// The most-used types at the top level for convenient importing.
pub use dataset::{DistanceKind, PointSet};
pub use gsknn_core::{Gsknn, GsknnConfig, MachineParams, Model, ProblemSize, Variant};
pub use knn_select::{Neighbor, NeighborTable};
