//! Cross-crate property tests: every kernel implementation in the
//! workspace — GSKNN in all five variants (serial and data-parallel, all
//! norms), the GEMM-based reference, and the single-loop baseline — must
//! agree with the brute-force oracle on arbitrary problem shapes.

use gsknn::core::parallel::run_data_parallel;
use gsknn::core::variants::{run_serial, DriverArgs, SelHeap};
use gsknn::core::{GsknnWorkspace, Variant};
use gsknn::reference::{oracle, single_loop_knn, GemmKnn};
use gsknn::{DistanceKind, Gsknn, GsknnConfig, NeighborTable, PointSet};
use proptest::prelude::*;

/// Random problem: N points in d dims, random query/reference id lists
/// (possibly overlapping, unsorted), random k.
#[derive(Debug, Clone)]
struct Problem {
    x: PointSet,
    q_idx: Vec<usize>,
    r_idx: Vec<usize>,
    k: usize,
}

fn problems() -> impl Strategy<Value = Problem> {
    (2usize..60, 1usize..24, 1usize..12, 0u64..1000).prop_flat_map(|(n, d, k, seed)| {
        let q = prop::collection::vec(0usize..n, 1..30);
        let r = prop::collection::vec(0usize..n, 1..n.max(2));
        (Just(n), Just(d), Just(k), Just(seed), q, r).prop_map(|(n, d, k, seed, q_idx, r_idx)| {
            Problem {
                x: gsknn::data::uniform(n, d, seed),
                q_idx,
                r_idx,
                k,
            }
        })
    })
}

fn table_close(got: &NeighborTable, want: &NeighborTable, tol: f64) -> Result<(), String> {
    for i in 0..want.len() {
        for (pos, (a, b)) in got.row(i).iter().zip(want.row(i)).enumerate() {
            let ok = if b.dist.is_finite() {
                (a.dist - b.dist).abs() <= tol * (1.0 + b.dist.abs())
            } else {
                !a.dist.is_finite()
            };
            if !ok {
                return Err(format!(
                    "row {i} pos {pos}: {} (idx {}) vs {} (idx {})",
                    a.dist, a.idx, b.dist, b.idx
                ));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gsknn_all_variants_match_oracle(p in problems()) {
        // The oracle keeps duplicate reference ids as distinct
        // candidates; GSKNN does too when heaps start empty.
        let want = oracle::exact(&p.x, &p.q_idx, &p.r_idx, p.k, DistanceKind::SqL2);
        for variant in Variant::ALL {
            let mut exec = Gsknn::new(GsknnConfig { variant, ..Default::default() });
            let got = exec.run(&p.x, &p.q_idx, &p.r_idx, p.k, DistanceKind::SqL2);
            if let Err(e) = table_close(&got, &want, 1e-9) {
                prop_assert!(false, "{}: {e}", variant.name());
            }
        }
    }

    #[test]
    fn gsknn_all_norms_match_oracle(p in problems()) {
        for kind in [
            DistanceKind::L1,
            DistanceKind::LInf,
            DistanceKind::Lp(1.7),
            DistanceKind::Cosine,
        ] {
            let want = oracle::exact(&p.x, &p.q_idx, &p.r_idx, p.k, kind);
            let mut exec = Gsknn::new(GsknnConfig::default());
            let got = exec.run(&p.x, &p.q_idx, &p.r_idx, p.k, kind);
            if let Err(e) = table_close(&got, &want, 1e-9) {
                prop_assert!(false, "{}: {e}", kind.name());
            }
        }
    }

    #[test]
    fn gemm_reference_matches_oracle(p in problems()) {
        let want = oracle::exact(&p.x, &p.q_idx, &p.r_idx, p.k, DistanceKind::SqL2);
        let mut exec = GemmKnn::new(gsknn::gemm::GemmParams::tiny(), false);
        let (got, _) = exec.run(&p.x, &p.q_idx, &p.r_idx, p.k);
        if let Err(e) = table_close(&got, &want, 1e-9) {
            prop_assert!(false, "gemm-ref: {e}");
        }
    }

    #[test]
    fn single_loop_matches_oracle(p in problems()) {
        let want = oracle::exact(&p.x, &p.q_idx, &p.r_idx, p.k, DistanceKind::SqL2);
        let got = single_loop_knn(&p.x, &p.q_idx, &p.r_idx, p.k, DistanceKind::SqL2, false);
        prop_assert!(table_close(&got, &want, 1e-12).is_ok());
    }

    #[test]
    fn data_parallel_is_bit_identical_to_serial(p in problems()) {
        for variant in [Variant::Var1, Variant::Var6] {
            let args = DriverArgs::same(
                &p.x,
                &p.q_idx,
                &p.r_idx,
                DistanceKind::SqL2,
                gsknn::gemm::GemmParams::tiny(),
                variant,
            );
            let mut serial: Vec<SelHeap> =
                (0..p.q_idx.len()).map(|_| SelHeap::new(p.k, false)).collect();
            let mut ws = GsknnWorkspace::new();
            run_serial(&args, &mut serial, &mut ws);
            let mut par: Vec<SelHeap> =
                (0..p.q_idx.len()).map(|_| SelHeap::new(p.k, false)).collect();
            run_data_parallel(&args, &mut par, 3);
            for (s, pp) in serial.into_iter().zip(par) {
                prop_assert_eq!(s.into_sorted_vec(), pp.into_sorted_vec());
            }
        }
    }

    #[test]
    fn incremental_update_equals_oneshot(p in problems()) {
        // split references in two, update twice: equals a single run on
        // the deduplicated union (the update path dedupes ids; so must
        // the comparison target)
        let mut union: Vec<usize> = p.r_idx.clone();
        union.sort_unstable();
        union.dedup();
        let half = p.r_idx.len() / 2;
        let mut dedup_first: Vec<usize> = p.r_idx[..half].to_vec();
        dedup_first.sort_unstable();
        dedup_first.dedup();
        let mut dedup_second: Vec<usize> = p.r_idx[half..].to_vec();
        dedup_second.sort_unstable();
        dedup_second.dedup();

        let mut exec = Gsknn::new(GsknnConfig::default());
        let mut got = NeighborTable::new(p.q_idx.len(), p.k);
        exec.update(&p.x, &p.q_idx, &dedup_first, DistanceKind::SqL2, &mut got);
        exec.update(&p.x, &p.q_idx, &dedup_second, DistanceKind::SqL2, &mut got);
        let want = oracle::exact(&p.x, &p.q_idx, &union, p.k, DistanceKind::SqL2);
        // ids must match exactly up to distance ties
        for i in 0..want.len() {
            let gi: Vec<u32> = got.row(i).iter().map(|nb| nb.idx).collect();
            let wi: Vec<u32> = want.row(i).iter().map(|nb| nb.idx).collect();
            prop_assert_eq!(&gi, &wi, "row {}", i);
        }
    }
}

#[test]
fn auto_variant_matches_forced_variants_on_threshold_sizes() {
    // around the auto rule boundary (k = 512), results must be identical
    // regardless of which variant executes
    let x = gsknn::data::uniform(700, 12, 99);
    let q: Vec<usize> = (0..40).collect();
    let r: Vec<usize> = (0..700).collect();
    for k in [511, 512, 513] {
        let mut auto = Gsknn::new(GsknnConfig::default());
        let got = auto.run(&x, &q, &r, k, DistanceKind::SqL2);
        let mut forced = Gsknn::new(GsknnConfig {
            variant: Variant::Var3,
            ..Default::default()
        });
        let want = forced.run(&x, &q, &r, k, DistanceKind::SqL2);
        for i in 0..40 {
            let gi: Vec<u32> = got.row(i).iter().map(|nb| nb.idx).collect();
            let wi: Vec<u32> = want.row(i).iter().map(|nb| nb.idx).collect();
            assert_eq!(gi, wi, "k={k} row {i}");
        }
    }
}
