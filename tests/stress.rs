//! Moderate-scale stress tests at the paper's blocking parameters —
//! shapes big enough to cross every block boundary (multiple jc blocks,
//! multiple d blocks, fringe tiles in every dimension) in one run.

use gsknn::reference::{oracle, GemmKnn};
use gsknn::{DistanceKind, Gsknn, GsknnConfig, Variant};

/// m, n, d chosen to hit: nc fringe (n > 4096), dc multipass (d > 256),
/// mc fringe (m % 104 != 0), MR/NR fringes (odd sizes).
#[test]
fn paper_blocking_stress() {
    let n_total = 4500;
    let d = 300;
    let x = gsknn::data::uniform(n_total, d, 2026);
    let q_idx: Vec<usize> = (0..333).collect();
    let r_idx: Vec<usize> = (0..n_total).collect();
    let k = 10;

    let want = oracle::exact(&x, &q_idx, &r_idx, k, DistanceKind::SqL2);
    for variant in [Variant::Var1, Variant::Var5, Variant::Var6] {
        let mut exec = Gsknn::new(GsknnConfig {
            variant,
            ..Default::default()
        });
        let got = exec.run(&x, &q_idx, &r_idx, k, DistanceKind::SqL2);
        oracle::assert_matches(&got, &want, 1e-9, variant.name());
    }

    let mut gemm = GemmKnn::new(gsknn::gemm::GemmParams::ivy_bridge(), true);
    let (got_ref, times) = gemm.run(&x, &q_idx, &r_idx, k);
    oracle::assert_matches(&got_ref, &want, 1e-9, "gemm-ref");
    assert!(times.t_gemm > std::time::Duration::ZERO);
}

/// Native (cache-derived) parameters must agree with the paper's on the
/// same problem.
#[test]
fn native_params_match_paper_params() {
    let x = gsknn::data::uniform(1200, 48, 7);
    let q: Vec<usize> = (0..250).collect();
    let r: Vec<usize> = (0..1200).collect();
    let a = Gsknn::new(GsknnConfig::default()).run(&x, &q, &r, 6, DistanceKind::SqL2);
    let b = Gsknn::new(GsknnConfig::native()).run(&x, &q, &r, 6, DistanceKind::SqL2);
    for i in 0..250 {
        let ia: Vec<u32> = a.row(i).iter().map(|nb| nb.idx).collect();
        let ib: Vec<u32> = b.row(i).iter().map(|nb| nb.idx).collect();
        assert_eq!(ia, ib, "row {i}");
    }
}

/// The data-parallel scheme at paper parameters, oversubscribed.
#[test]
fn data_parallel_stress() {
    use gsknn::core::parallel::run_data_parallel;
    use gsknn::core::variants::{run_serial, DriverArgs, SelHeap};
    use gsknn::core::GsknnWorkspace;

    let x = gsknn::data::uniform(3000, 70, 31);
    let q_idx: Vec<usize> = (0..777).collect();
    let r_idx: Vec<usize> = (0..3000).collect();
    let args = DriverArgs::same(
        &x,
        &q_idx,
        &r_idx,
        DistanceKind::SqL2,
        gsknn::gemm::GemmParams::ivy_bridge(),
        Variant::Var1,
    );
    let mut serial: Vec<SelHeap> = (0..777).map(|_| SelHeap::new(12, false)).collect();
    let mut ws = GsknnWorkspace::new();
    run_serial(&args, &mut serial, &mut ws);
    let mut par: Vec<SelHeap> = (0..777).map(|_| SelHeap::new(12, false)).collect();
    run_data_parallel(&args, &mut par, 8);
    for (s, p) in serial.into_iter().zip(par) {
        assert_eq!(s.into_sorted_vec(), p.into_sorted_vec());
    }
}
