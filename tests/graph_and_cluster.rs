//! Integration of the downstream applications (kNN graph, k-means) with
//! the kernel and solvers — the intro's motivating use cases end to end.

use gsknn::clustering::{kmeans, KMeansConfig};
use gsknn::graph::{build_exact, build_with_forest, connected_components, Symmetrize};
use gsknn::tree::RkdtConfig;
use gsknn::DistanceKind;

#[test]
fn graph_components_recover_planted_clusters() {
    // 3 well-separated Gaussian blobs: the union kNN graph must split
    // into >= 3 components, and points of one blob must share a label
    let x = gsknn::data::gaussian_embedded(240, 16, 3, 55);
    let g = build_exact(&x, 3, DistanceKind::SqL2, Symmetrize::Union);
    let comps = connected_components(&g);
    assert!(
        comps.count() >= 3,
        "expected >= 3 components, got {}",
        comps.count()
    );
    // the three largest components cover nearly everything
    let mut sizes = comps.sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let covered: usize = sizes.iter().take(3).sum();
    assert!(covered > 200, "3 largest components cover {covered}/240");
}

#[test]
fn kmeans_labels_agree_with_graph_components() {
    // on perfectly separated blobs, k-means clusters and kNN-graph
    // components define the same partition. (Seed chosen so all three
    // blobs actually separate; some seeds place two centers close enough
    // that the union graph merges them and the premise doesn't hold.)
    let x = gsknn::data::gaussian_embedded(180, 12, 3, 19);
    let g = build_exact(&x, 3, DistanceKind::SqL2, Symmetrize::Union);
    let comps = connected_components(&g);
    assert_eq!(comps.count(), 3, "blobs did not separate into 3 components");
    let km = kmeans(
        &x,
        &KMeansConfig {
            clusters: comps.count().min(8),
            max_iters: 60,
            tol: 0.0,
            seed: 5,
        },
    );
    // partitions agree iff same-component ⇔ same-cluster for most pairs
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in (0..180).step_by(3) {
        for j in (i + 1..180).step_by(7) {
            total += 1;
            let same_comp = comps.label(i) == comps.label(j);
            let same_km = km.assignment[i] == km.assignment[j];
            if same_comp == same_km {
                agree += 1;
            }
        }
    }
    let frac = agree as f64 / total as f64;
    assert!(frac > 0.9, "partition agreement only {frac}");
}

#[test]
fn forest_graph_matches_exact_graph_closely() {
    let x = gsknn::data::gaussian_embedded(400, 24, 4, 31);
    let exact = build_exact(&x, 5, DistanceKind::SqL2, Symmetrize::None);
    let approx = build_with_forest(
        &x,
        5,
        DistanceKind::SqL2,
        Symmetrize::None,
        RkdtConfig {
            leaf_size: 80,
            iterations: 10,
            seed: 3,
            parallel_leaves: true,
            lpt_workers: None,
        },
    );
    let mut hit = 0;
    let mut total = 0;
    for u in 0..400 {
        for &v in exact.neighbors(u) {
            total += 1;
            if approx.has_edge(u, v) {
                hit += 1;
            }
        }
    }
    assert!(
        hit as f64 / total as f64 > 0.9,
        "forest graph edge recall {}/{total}",
        hit
    );
}

#[test]
fn cosine_graph_works_end_to_end() {
    let x = gsknn::data::uniform(150, 10, 9);
    let g = build_exact(&x, 4, DistanceKind::Cosine, Symmetrize::Mutual);
    assert_eq!(g.num_vertices(), 150);
    assert!(g.is_symmetric());
}
