//! Chaos suite: deterministic fault injection against a live server.
//!
//! Run with `cargo test --features faults --test chaos`. Everything here
//! is driven by the [`gsknn_faults`] registry at pinned seeds, so a
//! failure reproduces exactly. The fault registry is process-global;
//! the suite is one test function so phases can't race each other.
//!
//! What must hold under chaos:
//!
//! 1. every request in flight when a worker dies gets a *terminal*
//!    response (`InternalError`, never a hang or a dropped socket),
//! 2. the server keeps serving — panicked workers respawn with fresh
//!    executors, corrupted frames answer typed errors,
//! 3. once the faults clear, answers are bit-identical to brute force
//!    (the index is exact: one tree, leaf ≥ N), i.e. recall is
//!    unchanged by any amount of prior fault traffic,
//! 4. in the scatter-gather tier, killing a backend mid-stream yields a
//!    *typed* `DegradedPartial` (never an error) that is the exact merge
//!    of the surviving partitions, and a restarted backend rejoins and
//!    restores answers bit-identical to a single node.
#![cfg(feature = "faults")]

use gsknn::router::{Router, RouterConfig};
use gsknn::serve::{Client, Outcome, PartitionCfg, RetryPolicy, ServeIndex, Server, ServerConfig};
use gsknn::{DistanceKind, Gsknn, GsknnConfig, Neighbor, PointSet};
use gsknn_faults::{FaultPlan, FaultPoint, Mode};
use serde_json::Value;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

const N: usize = 300;
const D: usize = 8;
const K: usize = 8;

fn brute_indices(refs: &PointSet<f64>, q: &[f64], k: usize) -> Vec<u32> {
    let mut cands: Vec<Neighbor<f64>> = (0..refs.len())
        .map(|j| Neighbor::new(DistanceKind::SqL2.eval(q, refs.point(j)), j as u32))
        .collect();
    cands.sort_unstable_by(Neighbor::cmp_dist_idx);
    cands[..k].iter().map(|nb| nb.idx).collect()
}

fn start_server() -> (SocketAddr, thread::JoinHandle<gsknn::serve::ServeReport>) {
    let refs = gsknn::data::uniform(N, D, 1);
    // exact configuration: one tree whose single leaf holds every
    // reference, so a healthy answer is brute force bit-for-bit
    let index = ServeIndex::build(refs, 1, N, 7);
    let server = Server::bind(
        ServerConfig {
            workers_per_lane: 2,
            queue_cap: 256,
            max_batch: 32,
            k_max: 16,
            ..ServerConfig::default()
        },
        index,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    (addr, thread::spawn(move || server.run()))
}

fn counter(stats: &Value, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("stats JSON missing {key}: {stats:?}"))
}

/// The injected panic is catchable *outside* the server too: a direct
/// kernel call dies with a recognizable message and a fresh executor is
/// unaffected — the contract the worker supervisor builds on. Runs as a
/// phase of the single chaos test because the fault registry is global.
fn direct_kernel_fault_has_recognizable_panic() {
    let x = gsknn::data::uniform(64, D, 3);
    let refs: Vec<usize> = (0..64).collect();
    let queries: Vec<usize> = (0..4).collect();
    gsknn_faults::configure(FaultPlan::new(11).with(FaultPoint::HeapSelect, Mode::Nth(1)));
    let got = std::panic::catch_unwind(|| {
        Gsknn::new(GsknnConfig::default()).run(&x, &queries, &refs, 4, DistanceKind::SqL2)
    });
    let err = got.expect_err("armed heap-select fault must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("injected fault: heap-select"),
        "panic must identify its injection point, got: {msg}"
    );
    gsknn_faults::clear();
    let t = Gsknn::new(GsknnConfig::default()).run(&x, &queries, &refs, 4, DistanceKind::SqL2);
    assert_eq!(t.len(), 4, "fresh executor after a fault must work");
}

#[test]
fn chaos_faults_are_survived_and_recall_is_unchanged() {
    // standalone kernel-level contract first (shares the global registry,
    // so it cannot be its own #[test] without racing this one)
    direct_kernel_fault_has_recognizable_panic();

    let refs = gsknn::data::uniform(N, D, 1);
    let pool = gsknn::data::uniform(64, D, 99);
    let (addr, handle) = start_server();
    let mut client = Client::connect(addr).expect("connect");

    // -- phase 0: healthy baseline ------------------------------------
    for i in 0..8 {
        let q = pool.point(i);
        let Outcome::Neighbors(t) = client.query::<f64>(q, 1, K, 500).unwrap().outcome else {
            panic!("healthy query {i} must succeed");
        };
        let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
        assert_eq!(got, brute_indices(&refs, q, K), "baseline query {i}");
    }

    // -- phase 1: worker killed mid-batch -----------------------------
    // The next batch execution panics (Nth(1) is one-shot). The query
    // riding in that batch must get a terminal InternalError, and the
    // worker must respawn.
    gsknn_faults::configure(FaultPlan::new(0xC4A05).with(FaultPoint::BatchExec, Mode::Nth(1)));
    let out = client
        .query::<f64>(pool.point(10), 1, K, 500)
        .unwrap()
        .outcome;
    let Outcome::Failed(msg) = out else {
        panic!("in-flight request of a killed worker must fail terminally, got {out:?}");
    };
    assert!(msg.contains("panicked"), "unhelpful failure message: {msg}");
    assert_eq!(gsknn_faults::fired(FaultPoint::BatchExec), 1);
    // the respawned worker answers the identical request correctly
    let out = client
        .query::<f64>(pool.point(10), 1, K, 500)
        .unwrap()
        .outcome;
    let Outcome::Neighbors(t) = out else {
        panic!("respawned worker must serve, got {out:?}");
    };
    let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
    assert_eq!(got, brute_indices(&refs, pool.point(10), K));
    gsknn_faults::clear();

    // -- phase 2: kernel fault deep in the six-loop nest ---------------
    // The panic starts in gsknn-core's packing/micro-kernel path and
    // unwinds through rkdt into the server's supervisor — same terminal
    // answer, same respawn.
    for (point, label) in [
        (FaultPoint::MicroKernel, "micro-kernel"),
        (FaultPoint::PackR, "pack-r"),
    ] {
        gsknn_faults::configure(FaultPlan::new(0xFEED).with(point, Mode::Nth(1)));
        let out = client
            .query::<f64>(pool.point(11), 1, K, 500)
            .unwrap()
            .outcome;
        assert!(
            matches!(out, Outcome::Failed(_)),
            "{label}: expected terminal failure, got {out:?}"
        );
        assert_eq!(gsknn_faults::fired(point), 1, "{label} must have fired");
        // retry lands on a healthy (respawned) worker
        let out = client
            .query_with_retry::<f64>(pool.point(11), 1, K, 500, &RetryPolicy::default())
            .unwrap()
            .outcome;
        assert!(
            matches!(out, Outcome::Neighbors(_)),
            "{label}: retry after respawn must succeed, got {out:?}"
        );
        gsknn_faults::clear();
    }

    // -- phase 3: concurrent clients under probabilistic worker kills --
    // Every call must return a terminal outcome; with retries, nearly
    // all converge to answers. Nothing may hang or drop.
    gsknn_faults::configure(
        FaultPlan::new(0xD1CE).with(FaultPoint::BatchExec, Mode::Probability(0.3)),
    );
    let outcomes: Vec<&'static str> = thread::scope(|s| {
        (0..3u64)
            .map(|t| {
                let pool = &pool;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let policy = RetryPolicy {
                        max_attempts: 8,
                        base: Duration::from_millis(10),
                        cap: Duration::from_millis(80),
                        deadline: Duration::from_secs(20),
                        seed: 1000 + t,
                    };
                    let mut out = Vec::new();
                    for r in 0..10usize {
                        let q = pool.point((13 + 3 * r + t as usize) % 64);
                        match client
                            .query_with_retry::<f64>(q, 1, K, 500, &policy)
                            .map(|r| r.outcome)
                        {
                            Ok(Outcome::Neighbors(_)) => out.push("ok"),
                            Ok(Outcome::Failed(_)) => out.push("failed"),
                            Ok(other) => panic!("thread {t} req {r}: unexpected {other:?}"),
                            Err(e) => panic!("thread {t} req {r}: transport error {e}"),
                        }
                    }
                    out
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(
        outcomes.len(),
        30,
        "every request must reach a terminal outcome"
    );
    let answered = outcomes.iter().filter(|&&o| o == "ok").count();
    assert!(
        answered >= 25,
        "retries should absorb most injected kills: {answered}/30 answered"
    );
    assert!(
        gsknn_faults::fired(FaultPoint::BatchExec) >= 1,
        "the probabilistic killer must actually engage"
    );
    gsknn_faults::clear();

    // -- phase 4: corrupted frames ------------------------------------
    // Inbound payloads get a byte flipped before decoding. Pings carry a
    // 7-byte frame whose middle is the version field, so an armed hit is
    // always a decode error — answered as a typed Error, connection kept.
    gsknn_faults::configure(
        FaultPlan::new(0xBADF).with(FaultPoint::FrameDecode, Mode::Probability(0.5)),
    );
    let (mut clean, mut corrupted) = (0, 0);
    for _ in 0..30 {
        match client.ping() {
            Ok(()) => clean += 1,
            Err(_) => corrupted += 1, // typed Error decoded fine client-side
        }
    }
    assert!(clean >= 1, "p = 0.5 over 30 pings must pass some through");
    assert!(corrupted >= 1, "p = 0.5 over 30 pings must corrupt some");
    assert!(gsknn_faults::fired(FaultPoint::FrameDecode) >= 1);
    gsknn_faults::clear();

    // -- phase 5: post-chaos recall is unchanged ----------------------
    // Same connection, no faults armed: every answer must again match
    // brute force exactly, as in phase 0.
    for i in 0..16 {
        let q = pool.point(i);
        let Outcome::Neighbors(t) = client.query::<f64>(q, 1, K, 500).unwrap().outcome else {
            panic!("post-chaos query {i} must succeed");
        };
        let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
        assert_eq!(got, brute_indices(&refs, q, K), "post-chaos query {i}");
    }

    // supervision counters made it into the report
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    assert!(counter(&stats, "worker_panics") >= 3, "{stats:?}");
    assert!(counter(&stats, "worker_respawns") >= 3, "{stats:?}");

    client.shutdown().unwrap();
    let report = handle.join().expect("server must outlive the chaos");
    assert!(report.worker_panics >= 3);
    assert_eq!(report.worker_panics, report.worker_respawns);

    // -- phase 6: shard killed mid-query in a 2-shard server ----------
    shard_kill_leaves_sibling_shards_serving();

    // -- phase 7: backend killed under the scatter-gather router ------
    router_backend_kill_degrades_typed_then_recovers();

    // -- phase 8: replica killed under the replicated router ----------
    replica_kill_is_transparent_until_the_whole_set_dies();
}

/// A batch panic inside one shard of a 2-shard server must stay inside
/// that shard: its in-flight query fails typed, the sibling shard keeps
/// serving, the killed shard rebuilds its workspace, and the respawn is
/// attributed to exactly one shard in both the stats JSON and the
/// Prometheus exposition. Runs as a phase of the single chaos test
/// because the fault registry is global.
fn shard_kill_leaves_sibling_shards_serving() {
    let refs = gsknn::data::uniform(N, D, 1);
    let pool = gsknn::data::uniform(16, D, 77);
    let index = ServeIndex::build(gsknn::data::uniform(N, D, 1), 1, N, 7);
    let server = Server::bind(
        ServerConfig {
            shards: 2,
            queue_cap: 256,
            max_batch: 32,
            k_max: 16,
            ..ServerConfig::default()
        },
        index,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = thread::spawn(move || server.run());

    // connection order is the shard assignment: the acceptor
    // round-robins, so the first connection lands on shard 0 and the
    // second on shard 1
    let mut on_s0 = Client::connect(addr).expect("connect shard 0");
    let mut on_s1 = Client::connect(addr).expect("connect shard 1");

    for (c, i) in [(&mut on_s0, 0usize), (&mut on_s1, 1)] {
        let Outcome::Neighbors(t) = c.query::<f64>(pool.point(i), 1, K, 500).unwrap().outcome
        else {
            panic!("healthy query on shard {i} must succeed");
        };
        let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
        assert_eq!(got, brute_indices(&refs, pool.point(i), K));
    }

    // kill shard 0's next batch mid-query (phases are sequential, so
    // the one-shot fault deterministically lands on shard 0's flush)
    gsknn_faults::configure(FaultPlan::new(0x54A8D).with(FaultPoint::BatchExec, Mode::Nth(1)));
    let out = on_s0
        .query::<f64>(pool.point(2), 1, K, 500)
        .unwrap()
        .outcome;
    let Outcome::Failed(msg) = out else {
        panic!("query riding the killed shard's batch must fail terminally, got {out:?}");
    };
    assert!(msg.contains("panicked"), "unhelpful failure message: {msg}");
    assert_eq!(gsknn_faults::fired(FaultPoint::BatchExec), 1);
    gsknn_faults::clear();

    // the sibling shard was never stalled by shard 0's death...
    let Outcome::Neighbors(t) = on_s1
        .query::<f64>(pool.point(3), 1, K, 500)
        .unwrap()
        .outcome
    else {
        panic!("sibling shard must keep serving through shard 0's kill");
    };
    let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
    assert_eq!(got, brute_indices(&refs, pool.point(3), K));
    // ...and the killed shard rebuilt its workspace and serves again,
    // answering the exact request that died
    let Outcome::Neighbors(t) = on_s0
        .query::<f64>(pool.point(2), 1, K, 500)
        .unwrap()
        .outcome
    else {
        panic!("killed shard must respawn its workspace and serve");
    };
    let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
    assert_eq!(got, brute_indices(&refs, pool.point(2), K));

    // the respawn is attributed per shard: exactly one shard panicked
    let stats: Value = serde_json::from_str(&on_s0.stats().unwrap()).unwrap();
    let shards = stats
        .get("shards")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("stats JSON missing shards array: {stats:?}"))
        .clone();
    assert_eq!(shards.len(), 2, "{stats:?}");
    let respawns: Vec<u64> = shards
        .iter()
        .map(|s| counter(s, "worker_respawns"))
        .collect();
    let panics: Vec<u64> = shards.iter().map(|s| counter(s, "worker_panics")).collect();
    assert_eq!(respawns.iter().sum::<u64>(), 1, "{stats:?}");
    assert_eq!(panics, respawns, "{stats:?}");
    for s in &shards {
        assert_eq!(
            counter(s, "conns"),
            1,
            "one connection per shard: {stats:?}"
        );
        assert!(
            counter(s, "queries") >= 1,
            "both shards answered: {stats:?}"
        );
    }

    // and in the Prometheus exposition, keyed by shard label
    let text = on_s0.metrics_text().unwrap();
    let respawn_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("gsknn_shard_worker_respawns_total{"))
        .collect();
    assert_eq!(respawn_lines.len(), 2, "{text}");
    assert!(
        respawn_lines.iter().filter(|l| l.ends_with(" 1")).count() == 1,
        "exactly one shard respawned: {respawn_lines:?}"
    );

    on_s0.shutdown().unwrap();
    let report = handle.join().expect("server must outlive the shard kill");
    assert_eq!(report.worker_panics, 1);
    assert_eq!(report.worker_panics, report.worker_respawns);
}

/// The replication acceptance contract (ISSUE 9): with R=2, killing any
/// single replica mid-stream must be *invisible* — every answer stays
/// `Outcome::Neighbors`, bitwise-identical to the healthy run, and the
/// degraded counter stays at zero, because the sibling replica covers
/// the slice via send-time failover or the hedge race. Only killing
/// *both* replicas of one partition may produce `DegradedPartial`, and
/// that answer must be the surviving partition's brute force exactly.
fn replica_kill_is_transparent_until_the_whole_set_dies() {
    let full = gsknn::data::uniform(N, D, 1);
    let pool = gsknn::data::uniform(16, D, 31);
    let half = N / 2;
    // 2 partitions x 2 replicas, partition-major
    let (p0r0, h00) = spawn_replicated_partition(&full, 0, half, 0, 0);
    let (p0r1, h01) = spawn_replicated_partition(&full, 0, half, 0, 1);
    let (p1r0, h10) = spawn_replicated_partition(&full, half, N, 1, 0);
    let (p1r1, h11) = spawn_replicated_partition(&full, half, N, 1, 1);

    let router = Router::bind(RouterConfig {
        backends: vec![p0r0.clone(), p0r1.clone(), p1r0.clone(), p1r1.clone()],
        replicas: 2,
        backend_timeout: Duration::from_secs(1),
        probe_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    })
    .expect("bind replicated router");
    let raddr = router.local_addr().expect("router addr").to_string();
    let hr = thread::spawn(move || router.run());
    let mut client = Client::connect(&raddr).expect("connect router");

    // healthy run: record the exact answers (already oracle-checked by
    // phase 7's topology; here the contract is bitwise *stability*)
    let healthy: Vec<_> = (0..8)
        .map(|i| {
            let out = client
                .query::<f64>(pool.point(i), 1, K, 2000)
                .unwrap()
                .outcome;
            let Outcome::Neighbors(t) = out else {
                panic!("healthy replicated query {i} must succeed, got {out:?}");
            };
            assert_eq!(
                t.row(0).iter().map(|nb| nb.idx).collect::<Vec<u32>>(),
                brute_indices(&full, pool.point(i), K),
                "healthy replicated query {i} vs brute force"
            );
            t
        })
        .collect();

    // kill one replica of partition 1 mid-stream: every answer must stay
    // undegraded and bitwise-identical to the healthy run
    Client::connect(&p1r0).unwrap().shutdown().unwrap();
    h10.join().expect("p1r0 drain");
    for round in 0..3 {
        for (i, want) in healthy.iter().enumerate() {
            let out = client
                .query::<f64>(pool.point(i), 1, K, 2000)
                .unwrap()
                .outcome;
            let Outcome::Neighbors(t) = out else {
                panic!("round {round} query {i}: replica kill must be invisible, got {out:?}");
            };
            assert_eq!(
                t.row(0),
                want.row(0),
                "round {round} query {i}: answer drifted after the replica kill"
            );
        }
    }
    let metrics = client.metrics_text().unwrap();
    assert!(
        metrics.contains("gsknn_router_degraded_total 0"),
        "a live sibling must keep answers undegraded:\n{metrics}"
    );
    assert!(
        !metrics.contains("gsknn_router_replica_failovers_total 0"),
        "the kill must register as a replica failover:\n{metrics}"
    );

    // kill the sibling too: the whole replica set for partition 1 is
    // gone, so the typed degraded answer appears and must equal the
    // surviving partition's brute force
    Client::connect(&p1r1).unwrap().shutdown().unwrap();
    h11.join().expect("p1r1 drain");
    let q = pool.point(11);
    let mut degraded_seen = false;
    for _ in 0..20 {
        match client.query::<f64>(q, 1, K, 2000).unwrap().outcome {
            Outcome::DegradedPartial {
                table,
                contributed,
                total,
            } => {
                assert_eq!((contributed, total), (1, 2), "partition counts");
                let want: Vec<u32> = {
                    let mut cands: Vec<Neighbor<f64>> = (0..half)
                        .map(|j| Neighbor::new(DistanceKind::SqL2.eval(q, full.point(j)), j as u32))
                        .collect();
                    cands.sort_unstable_by(Neighbor::cmp_dist_idx);
                    cands[..K].iter().map(|nb| nb.idx).collect()
                };
                let got: Vec<u32> = table.row(0).iter().map(|nb| nb.idx).collect();
                assert_eq!(got, want, "degraded merge vs partition-0 brute force");
                degraded_seen = true;
                break;
            }
            Outcome::Neighbors(_) | Outcome::Failed(_) => thread::sleep(Duration::from_millis(50)),
            other => panic!("dead replica set must degrade typed, got {other:?}"),
        }
    }
    assert!(
        degraded_seen,
        "dead replica set never produced DegradedPartial"
    );

    client.shutdown().unwrap();
    hr.join().expect("router drain");
    Client::connect(&p0r0).unwrap().shutdown().unwrap();
    Client::connect(&p0r1).unwrap().shutdown().unwrap();
    h00.join().expect("p0r0 drain");
    h01.join().expect("p0r1 drain");
}

/// Spawn one replica of an exact partitioned backend holding rows
/// `lo..hi`, with its replica identity stamped into the GSPK envelope.
fn spawn_replicated_partition(
    full: &PointSet<f64>,
    lo: usize,
    hi: usize,
    id: u16,
    replica: u16,
) -> (String, thread::JoinHandle<gsknn::serve::ServeReport>) {
    let slice = PointSet::from_vec(D, hi - lo, full.as_slice()[lo * D..hi * D].to_vec());
    let index = ServeIndex::build(slice, 1, hi - lo, 7);
    let server = Server::bind(
        ServerConfig {
            k_max: 16,
            partition: Some(PartitionCfg {
                id,
                total: 2,
                offset: lo as u32,
                epoch: 1,
                replica,
                replicas: 2,
            }),
            ..ServerConfig::default()
        },
        index,
    )
    .expect("bind replica");
    let bound = server.local_addr().expect("addr").to_string();
    (bound, thread::spawn(move || server.run()))
}

/// Spawn an exact partitioned backend holding rows `lo..hi` of the full
/// set, on `addr` (pass `"127.0.0.1:0"` for an ephemeral port, or a
/// previous bound address to restart in place).
fn spawn_partition(
    full: &PointSet<f64>,
    lo: usize,
    hi: usize,
    id: u16,
    addr: &str,
) -> (String, thread::JoinHandle<gsknn::serve::ServeReport>) {
    let slice = PointSet::from_vec(D, hi - lo, full.as_slice()[lo * D..hi * D].to_vec());
    let index = ServeIndex::build(slice, 1, hi - lo, 7);
    let server = Server::bind(
        ServerConfig {
            addr: addr.to_string(),
            k_max: 16,
            partition: Some(PartitionCfg::solo(id, 2, lo as u32, 1)),
            ..ServerConfig::default()
        },
        index,
    )
    .expect("bind partition");
    let bound = server.local_addr().expect("addr").to_string();
    (bound, thread::spawn(move || server.run()))
}

/// The scatter-gather acceptance contract, under a real backend kill:
/// healthy answers through the router are bit-identical to a single node
/// holding the full set (both precisions); killing one backend produces
/// a typed `DegradedPartial` carrying the contributing-partition count
/// whose merge equals the surviving partition exactly; the health gauge
/// flips; a restarted backend rejoins via the prober and bit-identical
/// answers return. No fault registry involved — the "fault" is a real
/// process-level drain — but it lives in the chaos suite because it is
/// the serving tier's kill-a-backend story.
fn router_backend_kill_degrades_typed_then_recovers() {
    let full = gsknn::data::uniform(N, D, 1);
    let pool = gsknn::data::uniform(16, D, 55);
    let half = N / 2;
    let (b0, h0) = spawn_partition(&full, 0, half, 0, "127.0.0.1:0");
    let (b1, h1) = spawn_partition(&full, half, N, 1, "127.0.0.1:0");

    // single-node reference: same exact index over the full set
    let single = Server::bind(
        ServerConfig {
            k_max: 16,
            ..ServerConfig::default()
        },
        ServeIndex::build(full.clone(), 1, N, 7),
    )
    .expect("bind single");
    let single_addr = single.local_addr().expect("addr");
    let hs = thread::spawn(move || single.run());

    let router = Router::bind(RouterConfig {
        backends: vec![b0.clone(), b1.clone()],
        probe_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let raddr = router.local_addr().expect("router addr").to_string();
    let hr = thread::spawn(move || router.run());

    let mut via_router = Client::connect(&raddr).expect("connect router");
    let mut via_single = Client::connect(single_addr).expect("connect single");

    // healthy: bit-identical to the single node, both precisions
    let pool32 = pool.cast::<f32>();
    for i in 0..6 {
        let q = pool.point(i);
        let (r, s) = (
            via_router.query::<f64>(q, 1, K, 2000).unwrap().outcome,
            via_single.query::<f64>(q, 1, K, 2000).unwrap().outcome,
        );
        let (Outcome::Neighbors(rt), Outcome::Neighbors(st)) = (r, s) else {
            panic!("healthy routed query {i} must answer Ok on both paths");
        };
        assert_eq!(rt.row(0), st.row(0), "routed f64 query {i} vs single node");
        let q32 = pool32.point(i);
        let (r, s) = (
            via_router.query::<f32>(q32, 1, K, 2000).unwrap().outcome,
            via_single.query::<f32>(q32, 1, K, 2000).unwrap().outcome,
        );
        let (Outcome::Neighbors(rt), Outcome::Neighbors(st)) = (r, s) else {
            panic!("healthy routed f32 query {i} must answer Ok on both paths");
        };
        assert_eq!(rt.row(0), st.row(0), "routed f32 query {i} vs single node");
    }

    // kill backend 1: the router must degrade to a typed partial whose
    // merge is exactly partition 0's answer
    Client::connect(&b1).unwrap().shutdown().unwrap();
    h1.join().expect("backend 1 drain");
    let q = pool.point(8);
    let mut degraded_seen = false;
    for _ in 0..20 {
        match via_router.query::<f64>(q, 1, K, 2000).unwrap().outcome {
            Outcome::DegradedPartial {
                table,
                contributed,
                total,
            } => {
                assert_eq!(
                    (contributed, total),
                    (1, 2),
                    "degraded answer must carry the contributing-partition count"
                );
                let want: Vec<u32> = {
                    let mut cands: Vec<Neighbor<f64>> = (0..half)
                        .map(|j| Neighbor::new(DistanceKind::SqL2.eval(q, full.point(j)), j as u32))
                        .collect();
                    cands.sort_unstable_by(Neighbor::cmp_dist_idx);
                    cands[..K].iter().map(|nb| nb.idx).collect()
                };
                let got: Vec<u32> = table.row(0).iter().map(|nb| nb.idx).collect();
                assert_eq!(got, want, "degraded merge vs partition-0 brute force");
                degraded_seen = true;
                break;
            }
            // the kill may race the next query's pooled connection —
            // retry while the router notices
            Outcome::Neighbors(_) | Outcome::Failed(_) => thread::sleep(Duration::from_millis(50)),
            other => panic!("killing a backend must stay typed, got {other:?}"),
        }
    }
    assert!(degraded_seen, "router never produced a DegradedPartial");
    let metrics = via_router.metrics_text().unwrap();
    assert!(
        metrics.contains("gsknn_router_backend_up{backend=\"1\"} 0"),
        "dead backend's gauge must read 0:\n{metrics}"
    );
    assert!(
        metrics.contains("gsknn_router_backend_up{backend=\"0\"} 1"),
        "survivor's gauge must stay 1:\n{metrics}"
    );
    assert!(
        metrics.contains("gsknn_router_degraded_total"),
        "degraded counter family must be exposed:\n{metrics}"
    );

    // restart backend 1 in place: the prober folds it back in and
    // bit-identical answers return
    let (_, h1b) = spawn_partition(&full, half, N, 1, &b1);
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while !via_router
        .metrics_text()
        .unwrap()
        .contains("gsknn_router_backend_up{backend=\"1\"} 1")
    {
        assert!(
            std::time::Instant::now() < deadline,
            "backend 1 never rejoined"
        );
        thread::sleep(Duration::from_millis(50));
    }
    let mut exact_again = false;
    for _ in 0..20 {
        match via_router.query::<f64>(q, 1, K, 2000).unwrap().outcome {
            Outcome::Neighbors(rt) => {
                let Outcome::Neighbors(st) =
                    via_single.query::<f64>(q, 1, K, 2000).unwrap().outcome
                else {
                    panic!("single node must answer");
                };
                assert_eq!(rt.row(0), st.row(0), "post-rejoin router vs single node");
                exact_again = true;
                break;
            }
            Outcome::DegradedPartial { .. } => thread::sleep(Duration::from_millis(50)),
            other => panic!("unexpected outcome after rejoin: {other:?}"),
        }
    }
    assert!(exact_again, "router never returned to exact answers");

    // drain the tier
    via_router.shutdown().unwrap();
    hr.join().expect("router drain");
    Client::connect(&b0).unwrap().shutdown().unwrap();
    Client::connect(&b1).unwrap().shutdown().unwrap();
    h0.join().expect("backend 0 drain");
    h1b.join().expect("backend 1 drain (restart)");
    Client::connect(single_addr).unwrap().shutdown().unwrap();
    hs.join().expect("single drain");
}
