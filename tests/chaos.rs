//! Chaos suite: deterministic fault injection against a live server.
//!
//! Run with `cargo test --features faults --test chaos`. Everything here
//! is driven by the [`gsknn_faults`] registry at pinned seeds, so a
//! failure reproduces exactly. The fault registry is process-global;
//! the suite is one test function so phases can't race each other.
//!
//! What must hold under chaos:
//!
//! 1. every request in flight when a worker dies gets a *terminal*
//!    response (`InternalError`, never a hang or a dropped socket),
//! 2. the server keeps serving — panicked workers respawn with fresh
//!    executors, corrupted frames answer typed errors,
//! 3. once the faults clear, answers are bit-identical to brute force
//!    (the index is exact: one tree, leaf ≥ N), i.e. recall is
//!    unchanged by any amount of prior fault traffic.
#![cfg(feature = "faults")]

use gsknn::serve::{Client, Outcome, RetryPolicy, ServeIndex, Server, ServerConfig};
use gsknn::{DistanceKind, Gsknn, GsknnConfig, Neighbor, PointSet};
use gsknn_faults::{FaultPlan, FaultPoint, Mode};
use serde_json::Value;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

const N: usize = 300;
const D: usize = 8;
const K: usize = 8;

fn brute_indices(refs: &PointSet<f64>, q: &[f64], k: usize) -> Vec<u32> {
    let mut cands: Vec<Neighbor<f64>> = (0..refs.len())
        .map(|j| Neighbor::new(DistanceKind::SqL2.eval(q, refs.point(j)), j as u32))
        .collect();
    cands.sort_unstable_by(Neighbor::cmp_dist_idx);
    cands[..k].iter().map(|nb| nb.idx).collect()
}

fn start_server() -> (SocketAddr, thread::JoinHandle<gsknn::serve::ServeReport>) {
    let refs = gsknn::data::uniform(N, D, 1);
    // exact configuration: one tree whose single leaf holds every
    // reference, so a healthy answer is brute force bit-for-bit
    let index = ServeIndex::build(refs, 1, N, 7);
    let server = Server::bind(
        ServerConfig {
            workers_per_lane: 2,
            queue_cap: 256,
            max_batch: 32,
            k_max: 16,
            ..ServerConfig::default()
        },
        index,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    (addr, thread::spawn(move || server.run()))
}

fn counter(stats: &Value, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("stats JSON missing {key}: {stats:?}"))
}

/// The injected panic is catchable *outside* the server too: a direct
/// kernel call dies with a recognizable message and a fresh executor is
/// unaffected — the contract the worker supervisor builds on. Runs as a
/// phase of the single chaos test because the fault registry is global.
fn direct_kernel_fault_has_recognizable_panic() {
    let x = gsknn::data::uniform(64, D, 3);
    let refs: Vec<usize> = (0..64).collect();
    let queries: Vec<usize> = (0..4).collect();
    gsknn_faults::configure(FaultPlan::new(11).with(FaultPoint::HeapSelect, Mode::Nth(1)));
    let got = std::panic::catch_unwind(|| {
        Gsknn::new(GsknnConfig::default()).run(&x, &queries, &refs, 4, DistanceKind::SqL2)
    });
    let err = got.expect_err("armed heap-select fault must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("injected fault: heap-select"),
        "panic must identify its injection point, got: {msg}"
    );
    gsknn_faults::clear();
    let t = Gsknn::new(GsknnConfig::default()).run(&x, &queries, &refs, 4, DistanceKind::SqL2);
    assert_eq!(t.len(), 4, "fresh executor after a fault must work");
}

#[test]
fn chaos_faults_are_survived_and_recall_is_unchanged() {
    // standalone kernel-level contract first (shares the global registry,
    // so it cannot be its own #[test] without racing this one)
    direct_kernel_fault_has_recognizable_panic();

    let refs = gsknn::data::uniform(N, D, 1);
    let pool = gsknn::data::uniform(64, D, 99);
    let (addr, handle) = start_server();
    let mut client = Client::connect(addr).expect("connect");

    // -- phase 0: healthy baseline ------------------------------------
    for i in 0..8 {
        let q = pool.point(i);
        let Outcome::Neighbors(t) = client.query::<f64>(q, 1, K, 500).unwrap().outcome else {
            panic!("healthy query {i} must succeed");
        };
        let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
        assert_eq!(got, brute_indices(&refs, q, K), "baseline query {i}");
    }

    // -- phase 1: worker killed mid-batch -----------------------------
    // The next batch execution panics (Nth(1) is one-shot). The query
    // riding in that batch must get a terminal InternalError, and the
    // worker must respawn.
    gsknn_faults::configure(FaultPlan::new(0xC4A05).with(FaultPoint::BatchExec, Mode::Nth(1)));
    let out = client
        .query::<f64>(pool.point(10), 1, K, 500)
        .unwrap()
        .outcome;
    let Outcome::Failed(msg) = out else {
        panic!("in-flight request of a killed worker must fail terminally, got {out:?}");
    };
    assert!(msg.contains("panicked"), "unhelpful failure message: {msg}");
    assert_eq!(gsknn_faults::fired(FaultPoint::BatchExec), 1);
    // the respawned worker answers the identical request correctly
    let out = client
        .query::<f64>(pool.point(10), 1, K, 500)
        .unwrap()
        .outcome;
    let Outcome::Neighbors(t) = out else {
        panic!("respawned worker must serve, got {out:?}");
    };
    let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
    assert_eq!(got, brute_indices(&refs, pool.point(10), K));
    gsknn_faults::clear();

    // -- phase 2: kernel fault deep in the six-loop nest ---------------
    // The panic starts in gsknn-core's packing/micro-kernel path and
    // unwinds through rkdt into the server's supervisor — same terminal
    // answer, same respawn.
    for (point, label) in [
        (FaultPoint::MicroKernel, "micro-kernel"),
        (FaultPoint::PackR, "pack-r"),
    ] {
        gsknn_faults::configure(FaultPlan::new(0xFEED).with(point, Mode::Nth(1)));
        let out = client
            .query::<f64>(pool.point(11), 1, K, 500)
            .unwrap()
            .outcome;
        assert!(
            matches!(out, Outcome::Failed(_)),
            "{label}: expected terminal failure, got {out:?}"
        );
        assert_eq!(gsknn_faults::fired(point), 1, "{label} must have fired");
        // retry lands on a healthy (respawned) worker
        let out = client
            .query_with_retry::<f64>(pool.point(11), 1, K, 500, &RetryPolicy::default())
            .unwrap()
            .outcome;
        assert!(
            matches!(out, Outcome::Neighbors(_)),
            "{label}: retry after respawn must succeed, got {out:?}"
        );
        gsknn_faults::clear();
    }

    // -- phase 3: concurrent clients under probabilistic worker kills --
    // Every call must return a terminal outcome; with retries, nearly
    // all converge to answers. Nothing may hang or drop.
    gsknn_faults::configure(
        FaultPlan::new(0xD1CE).with(FaultPoint::BatchExec, Mode::Probability(0.3)),
    );
    let outcomes: Vec<&'static str> = thread::scope(|s| {
        (0..3u64)
            .map(|t| {
                let pool = &pool;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let policy = RetryPolicy {
                        max_attempts: 8,
                        base: Duration::from_millis(10),
                        cap: Duration::from_millis(80),
                        deadline: Duration::from_secs(20),
                        seed: 1000 + t,
                    };
                    let mut out = Vec::new();
                    for r in 0..10usize {
                        let q = pool.point((13 + 3 * r + t as usize) % 64);
                        match client
                            .query_with_retry::<f64>(q, 1, K, 500, &policy)
                            .map(|r| r.outcome)
                        {
                            Ok(Outcome::Neighbors(_)) => out.push("ok"),
                            Ok(Outcome::Failed(_)) => out.push("failed"),
                            Ok(other) => panic!("thread {t} req {r}: unexpected {other:?}"),
                            Err(e) => panic!("thread {t} req {r}: transport error {e}"),
                        }
                    }
                    out
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(
        outcomes.len(),
        30,
        "every request must reach a terminal outcome"
    );
    let answered = outcomes.iter().filter(|&&o| o == "ok").count();
    assert!(
        answered >= 25,
        "retries should absorb most injected kills: {answered}/30 answered"
    );
    assert!(
        gsknn_faults::fired(FaultPoint::BatchExec) >= 1,
        "the probabilistic killer must actually engage"
    );
    gsknn_faults::clear();

    // -- phase 4: corrupted frames ------------------------------------
    // Inbound payloads get a byte flipped before decoding. Pings carry a
    // 7-byte frame whose middle is the version field, so an armed hit is
    // always a decode error — answered as a typed Error, connection kept.
    gsknn_faults::configure(
        FaultPlan::new(0xBADF).with(FaultPoint::FrameDecode, Mode::Probability(0.5)),
    );
    let (mut clean, mut corrupted) = (0, 0);
    for _ in 0..30 {
        match client.ping() {
            Ok(()) => clean += 1,
            Err(_) => corrupted += 1, // typed Error decoded fine client-side
        }
    }
    assert!(clean >= 1, "p = 0.5 over 30 pings must pass some through");
    assert!(corrupted >= 1, "p = 0.5 over 30 pings must corrupt some");
    assert!(gsknn_faults::fired(FaultPoint::FrameDecode) >= 1);
    gsknn_faults::clear();

    // -- phase 5: post-chaos recall is unchanged ----------------------
    // Same connection, no faults armed: every answer must again match
    // brute force exactly, as in phase 0.
    for i in 0..16 {
        let q = pool.point(i);
        let Outcome::Neighbors(t) = client.query::<f64>(q, 1, K, 500).unwrap().outcome else {
            panic!("post-chaos query {i} must succeed");
        };
        let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
        assert_eq!(got, brute_indices(&refs, q, K), "post-chaos query {i}");
    }

    // supervision counters made it into the report
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    assert!(counter(&stats, "worker_panics") >= 3, "{stats:?}");
    assert!(counter(&stats, "worker_respawns") >= 3, "{stats:?}");

    client.shutdown().unwrap();
    let report = handle.join().expect("server must outlive the chaos");
    assert!(report.worker_panics >= 3);
    assert_eq!(report.worker_panics, report.worker_respawns);

    // -- phase 6: shard killed mid-query in a 2-shard server ----------
    shard_kill_leaves_sibling_shards_serving();
}

/// A batch panic inside one shard of a 2-shard server must stay inside
/// that shard: its in-flight query fails typed, the sibling shard keeps
/// serving, the killed shard rebuilds its workspace, and the respawn is
/// attributed to exactly one shard in both the stats JSON and the
/// Prometheus exposition. Runs as a phase of the single chaos test
/// because the fault registry is global.
fn shard_kill_leaves_sibling_shards_serving() {
    let refs = gsknn::data::uniform(N, D, 1);
    let pool = gsknn::data::uniform(16, D, 77);
    let index = ServeIndex::build(gsknn::data::uniform(N, D, 1), 1, N, 7);
    let server = Server::bind(
        ServerConfig {
            shards: 2,
            queue_cap: 256,
            max_batch: 32,
            k_max: 16,
            ..ServerConfig::default()
        },
        index,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = thread::spawn(move || server.run());

    // connection order is the shard assignment: the acceptor
    // round-robins, so the first connection lands on shard 0 and the
    // second on shard 1
    let mut on_s0 = Client::connect(addr).expect("connect shard 0");
    let mut on_s1 = Client::connect(addr).expect("connect shard 1");

    for (c, i) in [(&mut on_s0, 0usize), (&mut on_s1, 1)] {
        let Outcome::Neighbors(t) = c.query::<f64>(pool.point(i), 1, K, 500).unwrap().outcome
        else {
            panic!("healthy query on shard {i} must succeed");
        };
        let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
        assert_eq!(got, brute_indices(&refs, pool.point(i), K));
    }

    // kill shard 0's next batch mid-query (phases are sequential, so
    // the one-shot fault deterministically lands on shard 0's flush)
    gsknn_faults::configure(FaultPlan::new(0x54A8D).with(FaultPoint::BatchExec, Mode::Nth(1)));
    let out = on_s0
        .query::<f64>(pool.point(2), 1, K, 500)
        .unwrap()
        .outcome;
    let Outcome::Failed(msg) = out else {
        panic!("query riding the killed shard's batch must fail terminally, got {out:?}");
    };
    assert!(msg.contains("panicked"), "unhelpful failure message: {msg}");
    assert_eq!(gsknn_faults::fired(FaultPoint::BatchExec), 1);
    gsknn_faults::clear();

    // the sibling shard was never stalled by shard 0's death...
    let Outcome::Neighbors(t) = on_s1
        .query::<f64>(pool.point(3), 1, K, 500)
        .unwrap()
        .outcome
    else {
        panic!("sibling shard must keep serving through shard 0's kill");
    };
    let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
    assert_eq!(got, brute_indices(&refs, pool.point(3), K));
    // ...and the killed shard rebuilt its workspace and serves again,
    // answering the exact request that died
    let Outcome::Neighbors(t) = on_s0
        .query::<f64>(pool.point(2), 1, K, 500)
        .unwrap()
        .outcome
    else {
        panic!("killed shard must respawn its workspace and serve");
    };
    let got: Vec<u32> = t.row(0).iter().map(|nb| nb.idx).collect();
    assert_eq!(got, brute_indices(&refs, pool.point(2), K));

    // the respawn is attributed per shard: exactly one shard panicked
    let stats: Value = serde_json::from_str(&on_s0.stats().unwrap()).unwrap();
    let shards = stats
        .get("shards")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("stats JSON missing shards array: {stats:?}"))
        .clone();
    assert_eq!(shards.len(), 2, "{stats:?}");
    let respawns: Vec<u64> = shards
        .iter()
        .map(|s| counter(s, "worker_respawns"))
        .collect();
    let panics: Vec<u64> = shards.iter().map(|s| counter(s, "worker_panics")).collect();
    assert_eq!(respawns.iter().sum::<u64>(), 1, "{stats:?}");
    assert_eq!(panics, respawns, "{stats:?}");
    for s in &shards {
        assert_eq!(
            counter(s, "conns"),
            1,
            "one connection per shard: {stats:?}"
        );
        assert!(
            counter(s, "queries") >= 1,
            "both shards answered: {stats:?}"
        );
    }

    // and in the Prometheus exposition, keyed by shard label
    let text = on_s0.metrics_text().unwrap();
    let respawn_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("gsknn_shard_worker_respawns_total{"))
        .collect();
    assert_eq!(respawn_lines.len(), 2, "{text}");
    assert!(
        respawn_lines.iter().filter(|l| l.ends_with(" 1")).count() == 1,
        "exactly one shard respawned: {respawn_lines:?}"
    );

    on_s0.shutdown().unwrap();
    let report = handle.join().expect("server must outlive the shard kill");
    assert_eq!(report.worker_panics, 1);
    assert_eq!(report.worker_panics, report.worker_respawns);
}
