//! Failure-injection and boundary-condition tests across the public API:
//! malformed inputs must be rejected loudly at the boundary, and every
//! legal degenerate shape must produce well-defined results.

use gsknn::core::scheduler::{lpt_schedule, run_task_parallel, KnnTask};
use gsknn::{DistanceKind, Gsknn, GsknnConfig, MachineParams, Neighbor, PointSet, Variant};

#[test]
#[should_panic(expected = "non-finite")]
fn nan_coordinates_rejected_at_construction() {
    PointSet::from_vec(2, 2, vec![0.0, 1.0, f64::NAN, 2.0]);
}

#[test]
#[should_panic(expected = "non-finite")]
fn infinite_coordinates_rejected_at_construction() {
    PointSet::from_vec(1, 1, vec![f64::INFINITY]);
}

#[test]
#[should_panic(expected = "reference index out of bounds")]
fn out_of_bounds_reference_panics() {
    let x = gsknn::data::uniform(5, 2, 1);
    Gsknn::new(GsknnConfig::default()).run(&x, &[0], &[5], 1, DistanceKind::SqL2);
}

#[test]
fn single_point_single_query() {
    let x = gsknn::data::uniform(1, 3, 1);
    let t = Gsknn::new(GsknnConfig::default()).run(&x, &[0], &[0], 1, DistanceKind::SqL2);
    assert_eq!(t.row(0)[0].idx, 0);
}

#[test]
fn d_zero_distances_are_all_zero_with_index_tiebreak() {
    let x: PointSet = PointSet::from_vec(0, 4, Vec::new());
    let t =
        Gsknn::new(GsknnConfig::default()).run(&x, &[0, 1], &[3, 1, 2, 0], 2, DistanceKind::SqL2);
    for i in 0..2 {
        let ids: Vec<u32> = t.row(i).iter().map(|nb| nb.idx).collect();
        assert_eq!(ids, vec![0, 1], "smallest ids win all-zero ties");
    }
}

#[test]
fn duplicate_points_tie_break_deterministically() {
    // four identical points: the k=2 nearest of each are ids 0 and 1
    let x = PointSet::from_vec(2, 4, vec![0.5; 8]);
    let all = [0usize, 1, 2, 3];
    for variant in Variant::ALL {
        let mut exec = Gsknn::new(GsknnConfig {
            variant,
            ..Default::default()
        });
        let t = exec.run(&x, &all, &all, 2, DistanceKind::SqL2);
        for i in 0..4 {
            let ids: Vec<u32> = t.row(i).iter().map(|nb| nb.idx).collect();
            assert_eq!(ids, vec![0, 1], "{} row {i}", variant.name());
        }
    }
}

#[test]
fn huge_k_padded_with_sentinels() {
    let x = gsknn::data::uniform(6, 4, 3);
    let t = Gsknn::new(GsknnConfig::default()).run(&x, &[0], &[1, 2, 3], 1000, DistanceKind::SqL2);
    assert_eq!(t.k(), 1000);
    let real = t.row(0).iter().filter(|nb| nb.dist.is_finite()).count();
    assert_eq!(real, 3);
    assert_eq!(t.row(0)[999], Neighbor::sentinel());
}

#[test]
fn empty_everything() {
    let x = gsknn::data::uniform(4, 2, 5);
    let mut exec = Gsknn::new(GsknnConfig::default());
    assert_eq!(exec.run(&x, &[], &[], 3, DistanceKind::SqL2).len(), 0);
    assert_eq!(exec.run(&x, &[], &[0], 3, DistanceKind::SqL2).len(), 0);
    let t = exec.run(&x, &[0], &[], 3, DistanceKind::SqL2);
    assert_eq!(t.row(0)[0], Neighbor::sentinel());
}

#[test]
#[should_panic(expected = "NaN task cost")]
fn scheduler_rejects_nan_costs() {
    lpt_schedule(&[1.0, f64::NAN], 2);
}

#[test]
fn scheduler_more_workers_than_tasks() {
    let s = lpt_schedule(&[1.0, 2.0], 5);
    assert_eq!(s.len(), 5);
    assert_eq!(s.iter().map(|b| b.len()).sum::<usize>(), 2);
}

#[test]
fn task_parallel_with_empty_task_list() {
    let x = gsknn::data::uniform(10, 2, 7);
    let out = run_task_parallel(
        &x,
        &[],
        DistanceKind::SqL2,
        &GsknnConfig::default(),
        MachineParams::ivy_bridge_1core(),
        2,
    );
    assert!(out.is_empty());
}

#[test]
fn task_parallel_with_degenerate_tasks() {
    let x = gsknn::data::uniform(20, 3, 9);
    let tasks = vec![
        KnnTask {
            q_idx: vec![],
            r_idx: (0..20).collect(),
            k: 2,
        },
        KnnTask {
            q_idx: vec![0, 1],
            r_idx: vec![],
            k: 2,
        },
        KnnTask {
            q_idx: vec![5],
            r_idx: vec![5],
            k: 2,
        },
    ];
    let out = run_task_parallel(
        &x,
        &tasks,
        DistanceKind::SqL2,
        &GsknnConfig::default(),
        MachineParams::ivy_bridge_1core(),
        2,
    );
    assert_eq!(out.len(), 3);
    assert_eq!(out[0].len(), 0);
    assert_eq!(out[1].row(0)[0], Neighbor::sentinel());
    assert_eq!(out[2].row(0)[0].idx, 5);
}

// ---------------------------------------------------------------------
// Degenerate shapes at the serving boundary: every one of these must
// come back as a *typed* error response on a connection that keeps
// working — never a panic, never a dropped socket.
// ---------------------------------------------------------------------

mod serve_shapes {
    use gsknn::serve::wire::{
        decode_response, encode_request, read_frame, write_frame, Precision, QueryBody, Request,
        Status,
    };
    use gsknn::serve::{Client, Outcome, ServeIndex, Server, ServerConfig};
    use std::net::{SocketAddr, TcpStream};
    use std::thread;

    const N: usize = 80;
    const D: usize = 4;

    fn start() -> (SocketAddr, thread::JoinHandle<gsknn::serve::ServeReport>) {
        let refs = gsknn::data::uniform(N, D, 1);
        let index = ServeIndex::build(refs, 1, N, 7);
        let server = Server::bind(
            ServerConfig {
                k_max: 4 * N, // k > n stays reachable below k_max
                ..ServerConfig::default()
            },
            index,
        )
        .expect("bind");
        let addr = server.local_addr().expect("addr");
        (addr, thread::spawn(move || server.run()))
    }

    /// Send a raw query frame and return the response status — for
    /// shapes the typed `Client` API refuses to construct.
    fn raw_status(stream: &mut TcpStream, q: QueryBody) -> Status {
        write_frame(stream, &encode_request(&Request::Query(q))).unwrap();
        let payload = read_frame(stream).unwrap().expect("response frame");
        decode_response(&payload).unwrap().status
    }

    #[test]
    fn degenerate_serve_shapes_answer_typed_errors() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let point = vec![0.25f64; D];

        // k exceeding the reference count
        let status = raw_status(
            &mut stream,
            QueryBody {
                precision: Precision::F64,
                k: N + 3,
                deadline_ms: 100,
                trace_id: 0,
                dim: D,
                m: 1,
                coords: point.clone(),
            },
        );
        assert_eq!(status, Status::BadRequest, "k > n must be a typed error");

        // empty batch (m = 0)
        let status = raw_status(
            &mut stream,
            QueryBody {
                precision: Precision::F64,
                k: 4,
                deadline_ms: 100,
                trace_id: 0,
                dim: D,
                m: 0,
                coords: Vec::new(),
            },
        );
        assert_eq!(status, Status::BadRequest, "m = 0 must be a typed error");

        // zero-dimension query against a 4-d index
        let status = raw_status(
            &mut stream,
            QueryBody {
                precision: Precision::F64,
                k: 4,
                deadline_ms: 100,
                trace_id: 0,
                dim: 0,
                m: 1,
                coords: Vec::new(),
            },
        );
        assert_eq!(status, Status::BadRequest, "dim = 0 must be a typed error");

        // same connection still serves a healthy request afterwards
        let status = raw_status(
            &mut stream,
            QueryBody {
                precision: Precision::F64,
                k: 4,
                deadline_ms: 200,
                trace_id: 0,
                dim: D,
                m: 1,
                coords: point.clone(),
            },
        );
        assert_eq!(status, Status::Ok, "connection must survive rejections");

        // ...and the typed client maps BadRequest to Outcome::Rejected
        let mut client = Client::connect(addr).unwrap();
        let out = client.query::<f64>(&point, 1, N + 3, 100).unwrap().outcome;
        assert!(matches!(out, Outcome::Rejected(_)), "got {out:?}");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}

#[test]
fn lp_norm_extremes_behave() {
    // p very large approaches l-inf ordering; p small but positive legal
    let x = gsknn::data::uniform(40, 6, 13);
    let q: Vec<usize> = (0..5).collect();
    let r: Vec<usize> = (0..40).collect();
    let mut exec = Gsknn::new(GsknnConfig::default());
    let t_big = exec.run(&x, &q, &r, 3, DistanceKind::Lp(32.0));
    let t_inf = exec.run(&x, &q, &r, 3, DistanceKind::LInf);
    // nearest neighbor under p=32 nearly always matches l-inf
    let agree = (0..5)
        .filter(|&i| t_big.row(i)[1].idx == t_inf.row(i)[1].idx)
        .count();
    assert!(agree >= 3, "Lp(32) should approximate LInf: {agree}/5");
}
