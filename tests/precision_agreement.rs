//! Cross-precision agreement: the f32 fused kernel must reproduce the
//! f64 oracle's neighbor lists. The two precisions round differently, so
//! equality is asserted under the workspace tie rule: at every rank,
//! either the indices match, or the f32-chosen neighbor's *exact f64*
//! distance is within `f32::DIST_TOL` (relative) of the oracle's
//! distance at that rank — i.e. only genuine near-ties may reorder.

use gsknn::core::GsknnScalar;
use gsknn::reference::oracle;
use gsknn::{DistanceKind, Gsknn, GsknnConfig, NeighborTable, PointSet, Variant};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Problem {
    x: PointSet,
    q_idx: Vec<usize>,
    r_idx: Vec<usize>,
    k: usize,
}

fn problems() -> impl Strategy<Value = Problem> {
    (2usize..60, 1usize..24, 1usize..12, 0u64..1000).prop_flat_map(|(n, d, k, seed)| {
        let q = prop::collection::vec(0usize..n, 1..30);
        let r = prop::collection::vec(0usize..n, 1..n.max(2));
        (Just(n), Just(d), Just(k), Just(seed), q, r).prop_map(|(n, d, k, seed, q_idx, r_idx)| {
            Problem {
                x: gsknn::data::uniform(n, d, seed),
                q_idx,
                r_idx,
                k,
            }
        })
    })
}

/// The tie rule: f32 row vs f64 oracle row, judged in exact f64
/// distances recomputed from the original (uncast) data.
fn rows_agree(
    x64: &PointSet,
    qi: usize,
    got: &[gsknn::Neighbor<f32>],
    want: &[gsknn::Neighbor<f64>],
    kind: DistanceKind,
) -> Result<(), String> {
    let tol = <f32 as GsknnScalar>::DIST_TOL as f64;
    for (pos, (g, w)) in got.iter().zip(want).enumerate() {
        if g.idx == w.idx {
            continue;
        }
        // sentinel padding must agree exactly
        if g.idx == u32::MAX || w.idx == u32::MAX {
            return Err(format!(
                "rank {pos}: sentinel mismatch (got idx {}, want idx {})",
                g.idx, w.idx
            ));
        }
        // different neighbor: admissible only as a near-tie in f64
        let gd = kind.eval(x64.point(qi), x64.point(g.idx as usize));
        let wd = w.dist;
        if (gd - wd).abs() > tol * (1.0 + wd.abs()) {
            return Err(format!(
                "rank {pos}: idx {} (f64 dist {gd}) vs oracle idx {} (dist {wd}) — not a tie",
                g.idx, w.idx
            ));
        }
    }
    Ok(())
}

fn check_agreement(p: &Problem, kind: DistanceKind, variant: Variant) -> Result<(), String> {
    let want = oracle::exact(&p.x, &p.q_idx, &p.r_idx, p.k, kind);
    let x32 = p.x.cast::<f32>();
    let mut exec = Gsknn::<f32>::new(GsknnConfig {
        variant,
        ..GsknnConfig::for_scalar::<f32>()
    });
    let got: NeighborTable<f32> = exec.run(&x32, &p.q_idx, &p.r_idx, p.k, kind);
    for (i, &qi) in p.q_idx.iter().enumerate() {
        rows_agree(&p.x, qi, got.row(i), want.row(i), kind)
            .map_err(|e| format!("{} row {i}: {e}", variant.name()))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f32_fused_matches_f64_oracle_up_to_ties(p in problems()) {
        for variant in Variant::ALL {
            if let Err(e) = check_agreement(&p, DistanceKind::SqL2, variant) {
                prop_assert!(false, "{e}");
            }
        }
    }

    #[test]
    fn f32_fused_matches_f64_oracle_on_other_norms(p in problems()) {
        for kind in [DistanceKind::L1, DistanceKind::LInf, DistanceKind::Cosine] {
            if let Err(e) = check_agreement(&p, kind, Variant::Auto) {
                prop_assert!(false, "{}: {e}", kind.name());
            }
        }
    }

    #[test]
    fn f32_gemm_reference_matches_f64_oracle_up_to_ties(p in problems()) {
        let want = oracle::exact(&p.x, &p.q_idx, &p.r_idx, p.k, DistanceKind::SqL2);
        let x32 = p.x.cast::<f32>();
        let mut exec = gsknn::reference::GemmKnn::<f32>::new(
            gsknn::gemm::GemmParams::tiny_for::<f32>(),
            false,
        );
        let (got, _) = exec.run(&x32, &p.q_idx, &p.r_idx, p.k);
        for (i, &qi) in p.q_idx.iter().enumerate() {
            if let Err(e) = rows_agree(&p.x, qi, got.row(i), want.row(i), DistanceKind::SqL2) {
                prop_assert!(false, "gemm-ref row {i}: {e}");
            }
        }
    }
}

#[test]
fn f32_and_f64_pick_identical_indices_on_separated_data() {
    // Gaussian clusters are well separated: no near-ties, so the index
    // lists must match exactly — the tie rule has nothing to excuse.
    let x = gsknn::data::gaussian_embedded(400, 16, 4, 11);
    let q: Vec<usize> = (0..50).collect();
    let r: Vec<usize> = (0..400).collect();
    let want = Gsknn::<f64>::new(GsknnConfig::default()).run(&x, &q, &r, 8, DistanceKind::SqL2);
    let got = Gsknn::<f32>::new(GsknnConfig::for_scalar::<f32>()).run(
        &x.cast::<f32>(),
        &q,
        &r,
        8,
        DistanceKind::SqL2,
    );
    let mut exact_matches = 0usize;
    for (i, &qi) in q.iter().enumerate() {
        let gi: Vec<u32> = got.row(i).iter().map(|nb| nb.idx).collect();
        let wi: Vec<u32> = want.row(i).iter().map(|nb| nb.idx).collect();
        if gi == wi {
            exact_matches += 1;
        } else {
            // any disagreement must still satisfy the tie rule
            rows_agree(
                &x,
                qi,
                got.row(i),
                &{
                    let o = oracle::exact(&x, &[qi], &r, 8, DistanceKind::SqL2);
                    o.row(0).to_vec()
                },
                DistanceKind::SqL2,
            )
            .unwrap_or_else(|e| panic!("row {i}: {e}"));
        }
    }
    assert!(
        exact_matches >= 48,
        "only {exact_matches}/50 rows matched exactly on separated data"
    );
}
