//! End-to-end integration of the approximate all-NN solvers with both
//! kernel backends: exactness in the degenerate case, recall behaviour,
//! kernel interchangeability, determinism, and solver composition.

use gsknn::core::GsknnConfig;
use gsknn::hashing::{LshConfig, LshParams, LshSolver};
use gsknn::reference::oracle;
use gsknn::tree::{AllNnSolver, GemmLeaf, GsknnLeaf, RkdtConfig};
use gsknn::DistanceKind;

fn gsknn_leaf() -> GsknnLeaf {
    GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2)
}

#[test]
fn forest_converges_to_exact_on_clustered_data() {
    let x = gsknn::data::gaussian_embedded(600, 24, 5, 17);
    let ids: Vec<usize> = (0..600).collect();
    let exact = oracle::exact(&x, &ids, &ids, 6, DistanceKind::SqL2);
    let cfg = RkdtConfig {
        leaf_size: 128,
        iterations: 12,
        seed: 2,
        parallel_leaves: true,
        lpt_workers: None,
    };
    let (table, stats) = AllNnSolver::new(cfg).solve(&x, 6, gsknn_leaf, Some(&exact));
    let final_recall = stats.last().unwrap().recall.unwrap();
    assert!(final_recall > 0.95, "recall {final_recall}");
    assert_eq!(table.len(), 600);
}

#[test]
fn both_kernels_drive_the_forest_to_identical_tables() {
    let x = gsknn::data::uniform(350, 10, 3);
    let cfg = RkdtConfig {
        leaf_size: 64,
        iterations: 4,
        seed: 8,
        parallel_leaves: false,
        lpt_workers: None,
    };
    let solver = AllNnSolver::new(cfg);
    let (a, _) = solver.solve(&x, 4, gsknn_leaf, None);
    let (b, _) = solver.solve(&x, 4, GemmLeaf::default, None);
    for i in 0..350 {
        let ia: Vec<u32> = a.row(i).iter().map(|nb| nb.idx).collect();
        let ib: Vec<u32> = b.row(i).iter().map(|nb| nb.idx).collect();
        assert_eq!(ia, ib, "row {i}");
    }
}

#[test]
fn solver_runs_are_deterministic() {
    let x = gsknn::data::uniform(280, 8, 21);
    let cfg = RkdtConfig {
        leaf_size: 48,
        iterations: 3,
        seed: 4,
        parallel_leaves: true,
        lpt_workers: None,
    };
    let (a, _) = AllNnSolver::new(cfg.clone()).solve(&x, 5, gsknn_leaf, None);
    let (b, _) = AllNnSolver::new(cfg).solve(&x, 5, gsknn_leaf, None);
    for i in 0..280 {
        assert_eq!(a.row(i), b.row(i), "row {i}");
    }
}

#[test]
fn lsh_then_forest_beats_either_alone() {
    let x = gsknn::data::gaussian_embedded(500, 20, 4, 77);
    let ids: Vec<usize> = (0..500).collect();
    let exact = oracle::exact(&x, &ids, &ids, 5, DistanceKind::SqL2);

    let lsh_cfg = LshConfig {
        tables: 3,
        params: LshParams {
            hashes_per_table: 3,
            bucket_width: 2.0,
        },
        seed: 1,
        parallel_buckets: false,
        max_bucket: 128,
        probes: 0,
    };
    let (lsh_table, lsh_stats) = LshSolver::new(lsh_cfg).solve(&x, 5, gsknn_leaf, Some(&exact));
    let lsh_only = lsh_stats.last().unwrap().recall.unwrap();

    let tree_cfg = RkdtConfig {
        leaf_size: 100,
        iterations: 3,
        seed: 6,
        parallel_leaves: false,
        lpt_workers: None,
    };
    let (_, combo_stats) =
        AllNnSolver::new(tree_cfg.clone()).solve_from(&x, lsh_table, gsknn_leaf, Some(&exact));
    let combined = combo_stats.last().unwrap().recall.unwrap();

    let (_, tree_stats) = AllNnSolver::new(tree_cfg).solve(&x, 5, gsknn_leaf, Some(&exact));
    let tree_only = tree_stats.last().unwrap().recall.unwrap();

    assert!(combined >= lsh_only, "{combined} < {lsh_only}");
    assert!(combined >= tree_only, "{combined} < {tree_only}");
}

#[test]
fn forest_handles_k_larger_than_leaf() {
    // k > leaf size: a single tree can never fill the lists; iterating
    // must still make progress and never panic
    let x = gsknn::data::uniform(200, 6, 9);
    let cfg = RkdtConfig {
        leaf_size: 16,
        iterations: 4,
        seed: 12,
        parallel_leaves: false,
        lpt_workers: None,
    };
    let (table, _) = AllNnSolver::new(cfg).solve(&x, 32, gsknn_leaf, None);
    // rows collect candidates from multiple trees: more than one leaf's
    // worth of real neighbors must be present by iteration 4
    let real = table.row(0).iter().filter(|nb| nb.dist.is_finite()).count();
    assert!(real > 16, "only {real} real neighbors after 4 trees");
}

#[test]
fn lsh_narrow_buckets_low_coverage_wide_buckets_high() {
    let x = gsknn::data::uniform(400, 8, 31);
    let run = |w: f64| {
        let cfg = LshConfig {
            tables: 1,
            params: LshParams {
                hashes_per_table: 4,
                bucket_width: w,
            },
            seed: 2,
            parallel_buckets: false,
            max_bucket: 0,
            probes: 0,
        };
        let (_, stats) = LshSolver::new(cfg).solve(&x, 3, gsknn_leaf, None);
        stats[0].covered
    };
    assert!(run(8.0) > run(0.05), "wider buckets must cover more points");
}
