//! Thread-safety of the cross-table kernel — the invariant `gsknn-serve`
//! leans on. The server's precision lanes partition coalesced batches
//! across worker threads, each owning a private `Gsknn` executor; for the
//! service to be transparent, any such partition must be **bit-identical**
//! to one serial [`Gsknn::run_cross`] over the whole query set. Each query
//! row is computed independently inside the kernel, so chunking is purely
//! a scheduling choice — these properties pin that down under randomized
//! shapes, worker counts and both precisions.

use gsknn::core::{FusedScalar, Gsknn, GsknnConfig};
use gsknn::{DistanceKind, PointSet};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Traffic {
    queries: PointSet,
    refs: PointSet,
    k: usize,
    workers: usize,
}

fn traffic() -> impl Strategy<Value = Traffic> {
    (
        4usize..120,
        1usize..24,
        1usize..60,
        1usize..10,
        2usize..6,
        0u64..1000,
    )
        .prop_map(|(n, d, m, k, workers, seed)| Traffic {
            queries: gsknn::data::uniform(m, d, seed ^ 0x5eed),
            refs: gsknn::data::uniform(n, d, seed),
            k,
            workers,
        })
}

/// One row as comparable data: `(idx, exact distance bits)`. Bit-level
/// equality is the point — near-enough is not transparent serving.
fn rows<T: FusedScalar>(table: &knn_select::NeighborTable<T>) -> Vec<Vec<(u32, u64)>> {
    (0..table.len())
        .map(|i| {
            table
                .row(i)
                .iter()
                .map(|nb| (nb.idx, nb.dist.to_f64().to_bits()))
                .collect()
        })
        .collect()
}

/// Serial truth: one `run_cross` over every query.
fn serial<T: FusedScalar>(t: &Traffic, xq: &PointSet<T>, xr: &PointSet<T>) -> Vec<Vec<(u32, u64)>> {
    let q: Vec<usize> = (0..xq.len()).collect();
    let r: Vec<usize> = (0..xr.len()).collect();
    let table = Gsknn::<T>::new(GsknnConfig::for_scalar::<T>()).run_cross(
        xq,
        &q,
        xr,
        &r,
        t.k,
        DistanceKind::SqL2,
    );
    rows(&table)
}

/// The serve-lane shape: contiguous query chunks on `workers` threads,
/// each thread with its own executor, results reassembled in order.
fn partitioned<T: FusedScalar>(
    t: &Traffic,
    xq: &PointSet<T>,
    xr: &PointSet<T>,
) -> Vec<Vec<(u32, u64)>> {
    let r: Vec<usize> = (0..xr.len()).collect();
    let m = xq.len();
    let chunk = m.div_ceil(t.workers);
    let mut out: Vec<Vec<(u32, u64)>> = vec![Vec::new(); m];
    let mut slots: &mut [Vec<(u32, u64)>] = &mut out;
    std::thread::scope(|s| {
        let mut lo = 0;
        while lo < m {
            let hi = (lo + chunk).min(m);
            let (mine, rest) = slots.split_at_mut(hi - lo);
            slots = rest;
            let r = &r;
            s.spawn(move || {
                let q: Vec<usize> = (lo..hi).collect();
                let table = Gsknn::<T>::new(GsknnConfig::for_scalar::<T>()).run_cross(
                    xq,
                    &q,
                    xr,
                    r,
                    t.k,
                    DistanceKind::SqL2,
                );
                for (slot, row) in mine.iter_mut().zip(rows(&table)) {
                    *slot = row;
                }
            });
            lo = hi;
        }
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn worker_partition_is_bit_identical_to_serial_f64(t in traffic()) {
        let want = serial::<f64>(&t, &t.queries, &t.refs);
        let got = partitioned::<f64>(&t, &t.queries, &t.refs);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn worker_partition_is_bit_identical_to_serial_f32(t in traffic()) {
        let xq = t.queries.cast::<f32>();
        let xr = t.refs.cast::<f32>();
        let want = serial::<f32>(&t, &xq, &xr);
        let got = partitioned::<f32>(&t, &xq, &xr);
        prop_assert_eq!(got, want);
    }
}

/// The same invariant through the full service stack: concurrent clients
/// against a 2-worker-per-lane server get exactly what one serial
/// `run_cross` would have produced (exact index, 1 tree + leaf ≥ N).
#[test]
fn served_answers_equal_serial_run_cross() {
    use gsknn::serve::{Client, Outcome, ServeIndex, Server, ServerConfig};

    let n = 400;
    let d = 12;
    let k = 6;
    let refs = gsknn::data::uniform(n, d, 77);
    let queries = gsknn::data::uniform(48, d, 4242);

    let q: Vec<usize> = (0..queries.len()).collect();
    let r: Vec<usize> = (0..n).collect();
    let want = Gsknn::<f64>::new(GsknnConfig::for_scalar::<f64>()).run_cross(
        &queries,
        &q,
        &refs,
        &r,
        k,
        DistanceKind::SqL2,
    );

    let server = Server::bind(
        ServerConfig {
            workers_per_lane: 2,
            ..ServerConfig::default()
        },
        ServeIndex::build(refs, 1, n, 7),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    std::thread::scope(|s| {
        for (i, chunk) in q.chunks(12).enumerate() {
            let queries = &queries;
            let want = &want;
            let chunk = chunk.to_vec();
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for &qi in &chunk {
                    match client
                        .query::<f64>(queries.point(qi), 1, k, 500)
                        .unwrap_or_else(|e| panic!("client {i} query {qi}: {e}"))
                        .outcome
                    {
                        Outcome::Neighbors(table) => {
                            let got: Vec<u32> = table.row(0).iter().map(|nb| nb.idx).collect();
                            let exp: Vec<u32> = want.row(qi).iter().map(|nb| nb.idx).collect();
                            assert_eq!(got, exp, "query {qi}");
                        }
                        other => panic!("query {qi} answered {other:?}"),
                    }
                }
            });
        }
    });

    Client::connect(addr)
        .and_then(|mut c| c.shutdown())
        .expect("shutdown");
    handle.join().expect("server thread");
}
