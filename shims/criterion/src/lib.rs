//! Offline stand-in for `criterion`. Implements the subset of the API the
//! workspace's benches use — `Criterion`, `benchmark_group`,
//! `bench_function` (with `&str` or [`BenchmarkId`] labels), `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros — over a simple
//! warmup + median-of-samples timer. No statistics engine, no HTML
//! reports; one line per benchmark on stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder style, as in the
    /// real crate).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<D: fmt::Display, F>(&mut self, id: D, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_benchmark(&label, self.sample_size, None, f);
        self
    }
}

/// Work-per-iteration hint; used to report element throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(3);
        self
    }

    pub fn bench_function<D: fmt::Display, F>(&mut self, id: D, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Identifies a benchmark as `function_name/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the routine.
pub struct Bencher {
    /// Median seconds per iteration, filled in by [`Bencher::iter`].
    sec_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up ~10ms, then size iteration batches to ~25ms each.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(10) {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((0.025 / per.max(1e-9)) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        self.sec_per_iter = start.elapsed().as_secs_f64() / batch as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { sec_per_iter: 0.0 };
        f(&mut b);
        times.push(b.sec_per_iter);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>10.1} Melem/s", n as f64 / median / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{label:<48} {}{rate}", fmt_time(median));
}

fn fmt_time(sec: f64) -> String {
    if sec >= 1.0 {
        format!("{sec:>9.3} s ")
    } else if sec >= 1e-3 {
        format!("{:>9.3} ms", sec * 1e3)
    } else if sec >= 1e-6 {
        format!("{:>9.3} µs", sec * 1e6)
    } else {
        format!("{:>9.1} ns", sec * 1e9)
    }
}

/// Block form only (the form this workspace uses):
/// `criterion_group! { name = benches; config = ...; targets = f, g }`
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` invokes harness-less bench targets with a
            // `--bench` argument; `cargo test` does not. Skip the (slow)
            // measurement loop outside of `cargo bench`.
            if !::std::env::args().any(|a| a == "--bench") {
                println!("benchmarks skipped (run under `cargo bench`)");
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(100));
        let mut acc = 0u64;
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| {
                acc = (0..100u64).sum();
                acc
            })
        });
        group.bench_function("plain-label", |b| b.iter(|| 2 + 2));
        group.finish();
        assert_eq!(acc, 4950);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).contains("s"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-9).contains("ns"));
    }
}
