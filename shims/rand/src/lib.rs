//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Covers the subset the workspace uses: `SmallRng::seed_from_u64`,
//! `Rng::gen::<f64>()`, `Rng::gen_range(lo..hi)`, `Rng::gen_bool`, and
//! the `Distribution` trait. The generator is xoshiro256** seeded through
//! SplitMix64 — statistically solid for test data and dataset synthesis,
//! though the exact streams differ from the real `rand` crate.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values `Rng::gen` can produce.
pub trait SampleValue {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleValue for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl SampleValue for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleValue for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
signed_range!(i64, i32, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface (blanket-implemented over
/// [`RngCore`], like rand's `Rng`).
pub trait Rng: RngCore {
    fn gen<T: SampleValue>(&mut self) -> T {
        T::sample_from(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// A distribution over values of `T`, sampled with any [`Rng`].
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (uniform over a type's natural domain).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
