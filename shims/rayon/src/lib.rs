//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal parallel-iterator layer with rayon's *names* and
//! *semantics* for exactly the call patterns the workspace uses:
//!
//! * `slice.par_iter()` / `par_iter_mut()` / `par_chunks_mut(n)`
//! * `range.into_par_iter()` / `vec.into_par_iter()`
//! * adapters: `zip`, `enumerate`, `map`
//! * terminals: `for_each`, `collect::<Vec<_>>()`
//!
//! Unlike rayon there is no work-stealing pool: each call site splits its
//! items into contiguous index-order chunks and runs them on
//! `std::thread::scope` threads (one per available core, capped by item
//! count). Results are gathered back in input order, so `map().collect()`
//! is order-preserving exactly like rayon's indexed parallel iterators.

use std::ops::Range;

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `items` into at most `nt` contiguous chunks of near-equal size.
fn split<T>(mut items: Vec<T>, nt: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let nt = nt.clamp(1, n.max(1));
    let chunk = n.div_ceil(nt).max(1);
    let mut out = Vec::with_capacity(nt);
    while !items.is_empty() {
        let tail = items.split_off(chunk.min(items.len()));
        out.push(items);
        items = tail;
    }
    out
}

/// Map every item through `f` on scoped threads, preserving input order.
fn run_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 || max_threads() == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunks = split(items, max_threads());
    let mut gathered: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            gathered.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    gathered.into_iter().flatten().collect()
}

/// Like [`run_map`], but each worker thread builds one `init()` state and
/// threads it through every item it processes (rayon's `map_init`
/// contract: the state is per-worker, reused across items, never shared).
fn run_map_init<T, S, R, INIT, F>(items: Vec<T>, init: &INIT, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    if items.len() <= 1 || max_threads() == 1 {
        let mut state = init();
        return items.into_iter().map(|t| f(&mut state, t)).collect();
    }
    let chunks = split(items, max_threads());
    let mut gathered: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    let mut state = init();
                    chunk
                        .into_iter()
                        .map(|t| f(&mut state, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            gathered.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    gathered.into_iter().flatten().collect()
}

/// An eager "parallel iterator": the items are materialized up front
/// (they are references, chunk slices, or indices — cheap), and the
/// terminal operation fans them out across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair up with another parallel iterator (truncates to the shorter).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attach the input index to every item.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily record a per-item transform; executed by the terminal op.
    pub fn map<R, F>(self, f: F) -> MapIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MapIter {
            items: self.items,
            f,
        }
    }

    /// rayon's `map_init`: each worker thread creates one `init()` value
    /// and hands `f` a mutable reference to it for every item that worker
    /// processes — per-worker scratch state without per-item allocation.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> MapInitIter<T, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        MapInitIter {
            items: self.items,
            init,
            f,
        }
    }

    /// Run `f` on every item across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_map(self.items, &|t| f(t));
    }
}

/// A `ParIter` with a pending `map` transform.
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MapIter<T, F> {
    /// Execute the map across threads and collect in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_map(self.items, &self.f).into_iter().collect()
    }

    /// Execute the map across threads, discarding results.
    pub fn for_each<R, G>(self, g: G)
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        G: Fn(R) + Sync,
    {
        let f = &self.f;
        run_map(self.items, &|t| g(f(t)));
    }
}

/// A `ParIter` with a pending `map_init` transform (per-worker state).
pub struct MapInitIter<T, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

impl<T: Send, INIT, F> MapInitIter<T, INIT, F> {
    /// Execute across threads (one state per worker) and collect in
    /// input order.
    pub fn collect<C, S, R>(self) -> C
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_map_init(self.items, &self.init, &self.f)
            .into_iter()
            .collect()
    }

    /// Execute across threads, discarding results.
    pub fn for_each<S, R, G>(self, g: G)
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
        G: Fn(R) + Sync,
    {
        let f = &self.f;
        run_map_init(self.items, &self.init, &|s: &mut S, t| g(f(s, t)));
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSliceRef<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSliceRef<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// `into_par_iter` on owning collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, MapInitIter, MapIter, ParIter, ParallelSliceMut, ParallelSliceRef,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_zip_enumerate() {
        let mut c = [0usize; 12];
        let adds = [10usize, 20, 30];
        c.par_chunks_mut(4)
            .zip(adds.par_iter())
            .enumerate()
            .for_each(|(i, (chunk, &a))| {
                for v in chunk.iter_mut() {
                    *v = a + i;
                }
            });
        assert_eq!(c[0], 10);
        assert_eq!(c[4], 21);
        assert_eq!(c[8], 32);
    }

    #[test]
    fn into_par_iter_range() {
        let squares: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
        assert_eq!(squares.len(), 50);
    }

    #[test]
    fn par_iter_mut_for_each() {
        let mut v = vec![1.0f64; 64];
        v.par_iter_mut().for_each(|x| *x *= 3.0);
        assert!(v.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn map_init_reuses_state_per_worker_and_preserves_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..512).collect();
        let out: Vec<usize> = v
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::with_capacity(8)
                },
                |scratch, x| {
                    scratch.push(x); // state is genuinely mutable
                    x * 2
                },
            )
            .collect();
        assert_eq!(out, (0..512).map(|x| x * 2).collect::<Vec<_>>());
        // one init per worker thread, not per item
        assert!(inits.load(Ordering::Relaxed) <= crate::max_threads());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        (0..0usize).into_par_iter().for_each(|_| panic!("no items"));
    }
}
