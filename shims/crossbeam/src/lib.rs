//! Offline stand-in for `crossbeam`, providing `thread::scope` with the
//! crossbeam 0.8 calling convention (`scope.spawn(|scope| ...)`, scope
//! returns `Result`) implemented on `std::thread::scope`.

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`; wraps the std scope so
    /// spawned closures still receive a scope argument.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// caller. Always returns `Ok` (std scopes propagate panics on join,
    /// matching how this workspace uses the crossbeam API).
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sums: Vec<i32> = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
