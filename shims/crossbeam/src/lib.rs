//! Offline stand-in for `crossbeam`, providing `thread::scope` with the
//! crossbeam 0.8 calling convention (`scope.spawn(|scope| ...)`, scope
//! returns `Result`) implemented on `std::thread::scope`, and
//! `channel::{bounded, unbounded}` MPMC channels (clonable `Sender` and
//! `Receiver`, blocking/timed/non-blocking receive, `try_send` with a
//! `Full`/`Disconnected` split) implemented on `Mutex` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// `try_send` failure: the queue is at capacity, or no receiver is
    /// left alive (the value is handed back either way).
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    /// Blocking `send` failure: every receiver has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Blocking `recv` failure: channel empty and every sender dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// `recv_timeout` failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// `try_recv` failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// `usize::MAX` encodes "unbounded".
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clone freely (MPMC).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clone freely (MPMC — each message goes to exactly
    /// one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Channel holding at most `cap` queued messages (`cap = 0` is
    /// rounded up to 1: this shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(cap.max(1))
    }

    /// Channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(usize::MAX)
    }

    fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // last sender gone: wake blocked receivers so they can
                // observe the disconnect
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue without blocking.
        pub fn try_send(&self, v: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(v));
            }
            let mut q = self.inner.queue.lock().unwrap();
            if q.len() >= self.inner.cap {
                return Err(TrySendError::Full(v));
            }
            q.push_back(v);
            drop(q);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue, blocking while the channel is full.
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(v));
                }
                if q.len() < self.inner.cap {
                    q.push_back(v);
                    drop(q);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                // bounded waits so a receiver disconnect is never missed
                let (guard, _) = self
                    .inner
                    .not_full
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap();
                q = guard;
            }
        }

        /// Number of queued messages (racy, for telemetry only).
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }

        /// `true` when no message is queued (racy, for telemetry only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => {
                    drop(q);
                    self.inner.not_full.notify_one();
                    Ok(v)
                }
                None if self.inner.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeue, blocking until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                let (guard, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap();
                q = guard;
            }
        }

        /// Dequeue, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .unwrap();
                q = guard;
            }
        }

        /// Number of queued messages (racy, for telemetry only).
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }

        /// `true` when no message is queued (racy, for telemetry only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`; wraps the std scope so
    /// spawned closures still receive a scope argument.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// caller. Always returns `Ok` (std scopes propagate panics on join,
    /// matching how this workspace uses the crossbeam API).
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, RecvTimeoutError, TryRecvError, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_try_send_reports_full_then_drains() {
        let (tx, rx) = channel::bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_times_out_then_receives() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn drop_of_all_senders_disconnects_after_drain() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn drop_of_all_receivers_fails_send() {
        let (tx, rx) = channel::bounded::<i32>(1);
        drop(rx);
        assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn mpmc_distributes_every_message_once() {
        let (tx, rx) = channel::bounded(8);
        let received: Vec<i32> = super::thread::scope(|scope| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move |_| {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for producer in 0..2 {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    for i in 0..50 {
                        tx.send(producer * 50 + i).unwrap();
                    }
                });
            }
            drop(tx); // close: consumers exit once drained
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
        .unwrap();
        let mut sorted = received;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_send_waits_for_capacity() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        super::thread::scope(|scope| {
            let h = scope.spawn(|_| tx.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            h.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        })
        .unwrap();
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sums: Vec<i32> = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
