//! Offline stand-in for the `bytes` crate: growable write buffer
//! (`BytesMut`), frozen immutable buffer (`Bytes`), and the `Buf` /
//! `BufMut` cursor traits for the little-endian accessors the workspace's
//! binary serialization uses.

use std::ops::Deref;

/// Immutable byte buffer (a frozen [`BytesMut`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Growable byte buffer for sequential writes.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential write access.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Sequential read access with an advancing cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Skip `cnt` bytes without copying them anywhere.
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underrun");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underrun");
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR");
        w.put_u16_le(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(1 << 40);
        w.put_f32_le(0.75);
        w.put_f64_le(-2.5);
        let frozen = w.freeze();

        let mut r: &[u8] = &frozen;
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 0.75);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underrun")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
