//! Offline stand-in for `serde_json`: a JSON `Value` tree, the `json!`
//! constructor macro, `Display`-based serialization and a recursive
//! descent parser (`from_str`). Object member order is preserved
//! (insertion order), which keeps emitted reports stable for diffing.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Pretty-printed with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        s
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Value::Object(members) if !members.is_empty() => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    out.push_str(&format!("{}: ", Escaped(k)));
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
            other => {
                out.push_str(&other.to_string());
            }
        }
    }
}

struct Escaped<'a>(&'a str);

impl fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"")?;
        for c in self.0.chars() {
            match c {
                '"' => write!(f, "\\\"")?,
                '\\' => write!(f, "\\\\")?,
                '\n' => write!(f, "\\n")?,
                '\r' => write!(f, "\\r")?,
                '\t' => write!(f, "\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        write!(f, "\"")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no Inf/NaN; mirror serde_json's `null`
                    write!(f, "null")
                }
            }
            Value::String(s) => write!(f, "{}", Escaped(s)),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Escaped(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

macro_rules! value_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(v as f64) }
        }
    )*};
}
value_from_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<V: Into<Value>> From<BTreeMap<String, V>> for Value {
    fn from(m: BTreeMap<String, V>) -> Value {
        Value::Object(m.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

/// Build a [`Value`] with JSON-literal syntax. Supports nested objects,
/// arrays, `null`, and any expression convertible `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::__json_array!(__items; $($items)*);
        $crate::Value::Array(__items)
    }};
    ({ $($members:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __members: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::__json_object!(__members; $($members)*);
        $crate::Value::Object(__members)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Object-member muncher for [`json!`]: handles `null`, nested `[...]` /
/// `{...}` literals, and arbitrary expressions as values.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($vec:ident;) => {};
    ($vec:ident; ,) => {};
    ($vec:ident; $key:tt : null $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::Value::Null));
        $crate::__json_object!($vec; $($($rest)*)?);
    };
    ($vec:ident; $key:tt : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::json!([ $($arr)* ])));
        $crate::__json_object!($vec; $($($rest)*)?);
    };
    ($vec:ident; $key:tt : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::json!({ $($obj)* })));
        $crate::__json_object!($vec; $($($rest)*)?);
    };
    ($vec:ident; $key:tt : $val:expr , $($rest:tt)*) => {
        $vec.push(($key.to_string(), $crate::Value::from($val)));
        $crate::__json_object!($vec; $($rest)*);
    };
    ($vec:ident; $key:tt : $val:expr) => {
        $vec.push(($key.to_string(), $crate::Value::from($val)));
    };
}

/// Array-element muncher for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    ($vec:ident;) => {};
    ($vec:ident; ,) => {};
    ($vec:ident; null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $crate::__json_array!($vec; $($($rest)*)?);
    };
    ($vec:ident; [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($arr)* ]));
        $crate::__json_array!($vec; $($($rest)*)?);
    };
    ($vec:ident; { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($obj)* }));
        $crate::__json_array!($vec; $($($rest)*)?);
    };
    ($vec:ident; $val:expr , $($rest:tt)*) => {
        $vec.push($crate::Value::from($val));
        $crate::__json_array!($vec; $($rest)*);
    };
    ($vec:ident; $val:expr) => {
        $vec.push($crate::Value::from($val));
    };
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    pub msg: String,
    pub at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Serialize any `Into<Value>` (by value) to compact JSON text.
pub fn to_string<T: Into<Value>>(v: T) -> String {
    v.into().to_string()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
// `json!` expands to build-then-push; the lint only fires on same-crate
// expansions, so silence it here rather than complicating the macro.
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let v = json!({
            "name": "gsknn",
            "k": 16,
            "ratio": 1.5,
            "ok": true,
            "missing": null,
            "phases": [{"name": "pack", "s": 0.25}, {"name": "select", "s": 0.75}],
        });
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(16));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("gsknn"));
        assert_eq!(v.get("phases").and_then(Value::as_array).unwrap().len(), 2);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let v = json!({
            "a": [1, 2.5, "x\"y\\z", false, null],
            "nested": {"deep": [[], {}]},
        });
        let text = v.to_string();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = v.to_string_pretty();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_plain_documents() {
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str(" [1, 2] ").unwrap(), json!([1, 2]));
        assert!(from_str("{bad}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(json!(3usize).to_string(), "3");
        assert_eq!(json!(2.25).to_string(), "2.25");
        assert_eq!(json!(f64::NAN).to_string(), "null");
    }

    #[test]
    fn btreemap_values_convert() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("x".to_string(), 1.0f64);
        m.insert("y".to_string(), 2.0f64);
        let v = json!({"map": (m)});
        assert_eq!(v.get("map").unwrap().get("y").unwrap().as_f64(), Some(2.0));
    }
}
