//! Offline stand-in for `serde`. Instead of the full visitor-based data
//! model, types convert to and from a [`serde_json::Value`] tree — which is
//! the only data format this workspace serializes to. No derive macro is
//! provided; implement the two one-method traits by hand (see the
//! `impl_struct_serde!` helper).

pub use serde_json::Value;

/// Types that can render themselves as a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

macro_rules! prim_serde {
    ($($t:ty => $as:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                v.$as()
                    .map(|x| x as $t)
                    .ok_or_else(|| format!("expected {}, got {v}", stringify!($t)))
            }
        }
    )*};
}
prim_serde!(
    f64 => as_f64,
    f32 => as_f64,
    u64 => as_u64,
    u32 => as_u64,
    u16 => as_u64,
    usize => as_u64,
    i64 => as_f64,
    i32 => as_f64,
);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v}"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v}"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Implement [`Serialize`] and [`Deserialize`] for a struct by listing its
/// fields. Each field's type must itself implement both traits.
///
/// ```
/// use serde::impl_struct_serde;
/// #[derive(Debug, PartialEq, Default)]
/// struct Stats { hits: u64, rate: f64 }
/// impl_struct_serde!(Stats { hits, rate });
/// ```
#[macro_export]
macro_rules! impl_struct_serde {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $( (stringify!($field).to_string(), $crate::Serialize::to_value(&self.$field)) ),+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, String> {
                Ok($ty {
                    $( $field: $crate::Deserialize::from_value(
                        v.get(stringify!($field))
                            .ok_or_else(|| format!("missing field `{}`", stringify!($field)))?
                    )? ),+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        count: u64,
        ratio: f64,
        tags: Vec<String>,
    }
    impl_struct_serde!(Demo { count, ratio, tags });

    #[test]
    fn struct_round_trip() {
        let d = Demo {
            count: 9,
            ratio: 0.5,
            tags: vec!["a".into(), "b".into()],
        };
        let v = d.to_value();
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(9));
        let back = Demo::from_value(&v).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn missing_field_errors() {
        let v = serde_json::json!({"count": 1});
        assert!(Demo::from_value(&v).is_err());
    }
}
