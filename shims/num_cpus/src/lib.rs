//! Offline stand-in for `num_cpus` on top of
//! `std::thread::available_parallelism`.

/// Number of logical CPUs available to this process (at least 1).
pub fn get() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count is not exposed by std; report the logical count.
pub fn get_physical() -> usize {
    get()
}

#[cfg(test)]
mod tests {
    #[test]
    fn at_least_one() {
        assert!(super::get() >= 1);
        assert!(super::get_physical() >= 1);
    }
}
