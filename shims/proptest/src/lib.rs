//! Offline stand-in for `proptest`. Provides the [`strategy::Strategy`]
//! trait with the combinators this workspace uses (`prop_map`,
//! `prop_flat_map`, tuples, `Just`, `collection::vec`, `sample::select`,
//! integer/float ranges) plus the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name) so failures
//! reproduce; there is no shrinking — the failing case's values are
//! reported via `Debug` in the panic message instead.

pub mod test_runner {
    /// Subset of proptest's config: just the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite fast while
            // still exercising a meaningful spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 — deterministic, seeded from the test's name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty strategy range {}..{}", self.start, self.end
                    );
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty strategy range {}..{}", self.start, self.end
                    );
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i64, i32, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniformly selects one of the given items.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written explicitly, as in real
/// proptest) that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let __values = __strats.generate(&mut __rng);
                let __debug = format!("{:?}", &__values);
                let ($($pat,)+) = __values;
                let __outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })();
                if let Err(__msg) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}\n  input: {}\n  {}",
                        stringify!($name), __case + 1, __cfg.cases, __debug, __msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body. Operands are evaluated
/// exactly once (they may be moved values).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return Err(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return Err(format!(
                "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if *__l == *__r {
            return Err(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l
            ));
        }
    }};
}

/// Skip cases that don't satisfy a precondition. (The real crate retries;
/// here the case simply counts as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Pair {
        a: usize,
        b: usize,
    }

    fn pairs() -> impl Strategy<Value = Pair> {
        (1usize..10, 0u64..5)
            .prop_flat_map(|(a, _seed)| (Just(a), 0usize..10).prop_map(|(a, b)| Pair { a, b }))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..5, f in 0.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..2.0).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u32..100, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for x in &v {
                prop_assert!(*x < 100);
            }
        }

        #[test]
        fn select_draws_from_items(beta in prop::sample::select(vec![0.0f64, 1.0, 0.5])) {
            prop_assert!(beta == 0.0 || beta == 1.0 || beta == 0.5);
        }

        #[test]
        fn flat_map_composes(p in pairs()) {
            prop_assert!(p.a >= 1 && p.a < 10);
            prop_assert_eq!(p.clone(), p);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    mod failing {
        proptest! {
            // no #[test] here on purpose: invoked manually below so the
            // panic can be asserted on
            #[allow(dead_code)]
            fn must_fail(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }

        #[test]
        #[should_panic(expected = "proptest must_fail failed at case 1/64")]
        fn failure_panics_with_input() {
            must_fail();
        }
    }
}
