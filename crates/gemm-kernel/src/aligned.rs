//! 64-byte-aligned, reusable element buffers for packed panels.
//!
//! Packing (§2.3 of the paper) exists precisely so the micro-kernel can
//! stream aligned, contiguous panels; a `Vec<T>` only guarantees
//! element-size alignment, so we allocate with an explicit 64-byte
//! (cache-line / AVX-512-friendly) layout. Generic over [`GsknnScalar`]
//! with `f64` as the default, so the pre-existing f64 call sites compile
//! unchanged.

use gsknn_scalar::GsknnScalar;
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};

/// Cache-line alignment for packed panels.
pub const ALIGN: usize = 64;

/// An owned, 64-byte-aligned scalar buffer that can be resized (grow-only)
/// without reallocating when capacity suffices — the per-thread packing
/// workspace is reused across kernel invocations so the hot path never
/// allocates.
pub struct AlignedBuf<T: GsknnScalar = f64> {
    ptr: *mut T,
    len: usize,
    cap: usize,
}

// SAFETY: AlignedBuf owns its allocation exclusively (no aliasing), so
// transferring it across threads is sound, as is sharing &AlignedBuf.
unsafe impl<T: GsknnScalar> Send for AlignedBuf<T> {}
unsafe impl<T: GsknnScalar> Sync for AlignedBuf<T> {}

impl<T: GsknnScalar> AlignedBuf<T> {
    /// Empty buffer (no allocation until first `resize`).
    pub fn new() -> Self {
        AlignedBuf {
            ptr: std::ptr::null_mut(),
            len: 0,
            cap: 0,
        }
    }

    /// Buffer of `len` zeroed elements.
    pub fn zeroed(len: usize) -> Self {
        let mut b = Self::new();
        b.resize(len);
        b
    }

    /// Set the logical length, reallocating (zeroed) only when `len`
    /// exceeds the current capacity. Contents after a growing resize are
    /// unspecified-but-initialized (zero for fresh memory); packing always
    /// overwrites the region it uses.
    pub fn resize(&mut self, len: usize) {
        if len > self.cap {
            let new_cap = len.next_power_of_two().max(1024);
            let layout = Layout::from_size_align(new_cap * size_of::<T>(), ALIGN).expect("layout");
            // SAFETY: layout has non-zero size (new_cap >= 1024).
            let ptr = unsafe { alloc_zeroed(layout) } as *mut T;
            if ptr.is_null() {
                handle_alloc_error(layout);
            }
            self.free();
            self.ptr = ptr;
            self.cap = new_cap;
        }
        self.len = len;
    }

    /// Current logical length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the logical length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr valid for cap >= len elements, properly aligned,
        // initialized (alloc_zeroed + only all-bits-valid float writes).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutable view.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: as above, plus exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    fn free(&mut self) {
        if !self.ptr.is_null() {
            let layout = Layout::from_size_align(self.cap * size_of::<T>(), ALIGN).expect("layout");
            // SAFETY: ptr was allocated with exactly this layout.
            unsafe { dealloc(self.ptr as *mut u8, layout) };
            self.ptr = std::ptr::null_mut();
            self.cap = 0;
        }
    }
}

impl<T: GsknnScalar> Default for AlignedBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: GsknnScalar> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        self.free();
    }
}

impl<T: GsknnScalar> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("elem", &T::NAME)
            .field("len", &self.len)
            .field("cap", &self.cap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_64_bytes() {
        let b = AlignedBuf::<f64>::zeroed(17);
        assert_eq!(b.as_slice().as_ptr() as usize % ALIGN, 0);
        assert_eq!(b.len(), 17);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn f32_buffer_is_aligned_too() {
        let b = AlignedBuf::<f32>::zeroed(33);
        assert_eq!(b.as_slice().as_ptr() as usize % ALIGN, 0);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn grow_preserves_alignment_and_shrink_keeps_alloc() {
        let mut b = AlignedBuf::<f64>::new();
        assert!(b.is_empty());
        b.resize(4000);
        let p1 = b.as_slice().as_ptr();
        b.resize(100); // shrink: no realloc
        assert_eq!(b.as_slice().as_ptr(), p1);
        b.resize(3000); // within cap: no realloc
        assert_eq!(b.as_slice().as_ptr(), p1);
        b.resize(10_000); // grow: realloc, still aligned
        assert_eq!(b.as_slice().as_ptr() as usize % ALIGN, 0);
        assert_eq!(b.len(), 10_000);
    }

    #[test]
    fn writes_round_trip() {
        let mut b = AlignedBuf::<f64>::zeroed(8);
        b.as_mut_slice()[3] = 42.0;
        assert_eq!(b.as_slice()[3], 42.0);
    }
}
