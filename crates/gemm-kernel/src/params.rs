//! Cache-blocking parameters (§2.4 "Selecting parameters").
//!
//! `mr × nr` is fixed at compile time by the micro-kernel (8×4 doubles, the
//! paper's Ivy Bridge choice); `dc`, `mc`, `nc` partition the d, m and n
//! loops so the packed panels land in L1 / L2 / L3 respectively.

use crate::microkernel::{MR, NR};
use gsknn_scalar::GsknnScalar;

/// Blocking parameters for the five-loop nest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmParams {
    /// 5th-loop block in the `d` dimension: micro-panels `mr×dc` + `nr×dc`
    /// fill ~3/4 of L1 (paper: dc = 256).
    pub dc: usize,
    /// 4th-loop block in the `m` dimension: the packed `Qc` (`mc×dc`)
    /// fills ~3/4 of L2 (paper: mc = 104, a multiple of mr = 8).
    pub mc: usize,
    /// 6th-loop block in the `n` dimension: the packed `Rc` (`dc×nc`)
    /// fills L3 (paper: nc = 4096).
    pub nc: usize,
}

/// Cache sizes in bytes, for analytical parameter selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheSizes {
    /// Per-core L1 data cache.
    pub l1d: usize,
    /// Per-core L2.
    pub l2: usize,
    /// Shared L3 (whole socket).
    pub l3: usize,
}

impl CacheSizes {
    /// Ivy Bridge E5-2680 v2 (the paper's machine): 32 KB L1d, 256 KB
    /// L2, 25.6 MB L3.
    pub const fn ivy_bridge() -> Self {
        CacheSizes {
            l1d: 32 * 1024,
            l2: 256 * 1024,
            l3: 25 * 1024 * 1024,
        }
    }

    /// Read the running CPU's caches from sysfs (Linux); `None` when the
    /// hierarchy cannot be determined (fall back to
    /// [`CacheSizes::ivy_bridge`]).
    pub fn detect() -> Option<Self> {
        fn read_kb(path: &str) -> Option<usize> {
            let s = std::fs::read_to_string(path).ok()?;
            let t = s.trim();
            let kb: usize = t.strip_suffix('K')?.parse().ok()?;
            Some(kb * 1024)
        }
        let base = "/sys/devices/system/cpu/cpu0/cache";
        let mut l1d = None;
        let mut l2 = None;
        let mut l3 = None;
        for idx in 0..8 {
            let level = std::fs::read_to_string(format!("{base}/index{idx}/level")).ok();
            let ctype = std::fs::read_to_string(format!("{base}/index{idx}/type")).ok();
            let size = read_kb(&format!("{base}/index{idx}/size"));
            match (
                level.as_deref().map(str::trim),
                ctype.as_deref().map(str::trim),
            ) {
                (Some("1"), Some("Data")) => l1d = size,
                (Some("2"), _) => l2 = size,
                (Some("3"), _) => l3 = size,
                _ => {}
            }
        }
        Some(CacheSizes {
            l1d: l1d?,
            l2: l2?,
            l3: l3.or(l2)?, // parts without L3: treat L2 as last level
        })
    }
}

impl GemmParams {
    /// The paper's Ivy Bridge parameters (§3 "GSKNN parameters"):
    /// mr=8, nr=4, dc=256, mc=104, nc=4096.
    pub const fn ivy_bridge() -> Self {
        GemmParams {
            dc: 256,
            mc: 104,
            nc: 4096,
        }
    }

    /// Analytical parameter selection (§2.4 "Selecting parameters",
    /// following Low et al.'s model-driven BLIS tuning):
    ///
    /// * `dc` so the `mr×dc` and `nr×dc` micro-panels fill ~3/4 of L1
    ///   (`(MR + NR)·dc·8 = ¾·L1`), keeping a quarter free for streaming;
    /// * `mc` so the packed `Qc` (`mc×dc`) fills ~3/4 of L2, rounded to a
    ///   multiple of `MR`;
    /// * `nc` so the packed `Rc` (`dc×nc`) fills ~1/3 of L3 (the paper's
    ///   8 MB `Rc` in a 25.6 MB L3), rounded to a multiple of `NR`.
    ///
    /// On the paper's cache sizes this reproduces `dc = 256` exactly and
    /// `mc = 96` (their single-core choice; the shipped `mc = 104` adds
    /// one more `MR` row for load balance).
    pub fn for_caches(c: &CacheSizes) -> Self {
        Self::for_caches_of::<f64>(c)
    }

    /// [`GemmParams::for_caches`] for an arbitrary element type: the same
    /// capacity formulas with `size_of::<T>()` in place of 8 bytes and the
    /// type's own `MR`/`NR` tile. Halving the element size doubles `dc`
    /// (twice the rank-update depth fits in L1), which is exactly the f32
    /// blocking the paper's model predicts.
    pub fn for_caches_of<T: GsknnScalar>(c: &CacheSizes) -> Self {
        let (mr, nr, sz) = (T::MR, T::NR, T::BYTES);
        let dc = ((3 * c.l1d / 4) / (sz * (mr + nr))).max(8);
        let mc = (((3 * c.l2 / 4) / (sz * dc)) / mr * mr).max(mr);
        let nc = (((c.l3 / 3) / (sz * dc)) / nr * nr).max(nr);
        GemmParams { dc, mc, nc }
    }

    /// Parameters for the running machine: detected caches, or the
    /// paper's Ivy Bridge values when detection fails.
    pub fn native() -> Self {
        match CacheSizes::detect() {
            Some(c) => Self::for_caches(&c),
            None => Self::ivy_bridge(),
        }
    }

    /// [`GemmParams::native`] for an arbitrary element type: the generic
    /// capacity formulas applied to the detected caches (or the paper's
    /// Ivy Bridge sizes when detection fails).
    pub fn native_for<T: GsknnScalar>() -> Self {
        let c = CacheSizes::detect().unwrap_or_else(CacheSizes::ivy_bridge);
        Self::for_caches_of::<T>(&c)
    }

    /// Small blocks for tests: force many partial/edge iterations of every
    /// loop even on tiny inputs.
    pub const fn tiny() -> Self {
        GemmParams {
            dc: 8,
            mc: MR * 2,
            nc: NR * 3,
        }
    }

    /// [`GemmParams::tiny`] for an arbitrary element type (`nc` must be a
    /// multiple of the type's own `NR`, which differs between f64 and
    /// f32).
    pub fn tiny_for<T: GsknnScalar>() -> Self {
        GemmParams {
            dc: 8,
            mc: T::MR * 2,
            nc: T::NR * 3,
        }
    }

    /// Validate invariants: positive blocks, `mc` a multiple of `mr` and
    /// `nc` a multiple of `nr` (keeps macro-kernel edge handling to the
    /// final fringe only).
    pub fn validate(&self) -> Result<(), String> {
        self.validate_for::<f64>()
    }

    /// [`GemmParams::validate`] against an arbitrary element type's micro
    /// tile.
    pub fn validate_for<T: GsknnScalar>(&self) -> Result<(), String> {
        if self.dc == 0 || self.mc == 0 || self.nc == 0 {
            return Err("block sizes must be positive".into());
        }
        if !self.mc.is_multiple_of(T::MR) {
            return Err(format!(
                "mc={} must be a multiple of mr={} ({})",
                self.mc,
                T::MR,
                T::NAME
            ));
        }
        if !self.nc.is_multiple_of(T::NR) {
            return Err(format!(
                "nc={} must be a multiple of nr={} ({})",
                self.nc,
                T::NR,
                T::NAME
            ));
        }
        Ok(())
    }
}

impl Default for GemmParams {
    fn default() -> Self {
        Self::ivy_bridge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_validate() {
        assert!(GemmParams::ivy_bridge().validate().is_ok());
        assert!(GemmParams::tiny().validate().is_ok());
    }

    #[test]
    fn cache_formula_reproduces_paper_parameters() {
        let p = GemmParams::for_caches(&CacheSizes::ivy_bridge());
        // §2.4: dc = 256 on Ivy Bridge; mc = 96 in the single-core
        // derivation (the shipped 104 adds one MR row).
        assert_eq!(p.dc, 256);
        assert_eq!(p.mc, 96);
        // Rc = dc·nc·8 ≈ 8 MB in the 25.6 MB L3 (paper: nc = 4096)
        assert!((3500..=4400).contains(&p.nc), "nc = {}", p.nc);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn native_params_validate_and_are_sane() {
        let p = GemmParams::native();
        assert!(p.validate().is_ok());
        assert!(p.dc >= 8 && p.mc >= MR && p.nc >= NR);
    }

    #[test]
    fn tiny_caches_clamp_to_micro_tile() {
        let p = GemmParams::for_caches(&CacheSizes {
            l1d: 128,
            l2: 256,
            l3: 512,
        });
        assert!(p.validate().is_ok());
        assert_eq!(p.mc % MR, 0);
        assert_eq!(p.nc % NR, 0);
    }

    #[test]
    fn f32_blocking_doubles_dc() {
        let c = CacheSizes::ivy_bridge();
        let p64 = GemmParams::for_caches_of::<f64>(&c);
        let p32 = GemmParams::for_caches_of::<f32>(&c);
        // Half-size elements deepen the L1 rank-update: the f64 tile's
        // micro-panels cost (8+4)·8 = 96 bytes per unit of dc, the f32
        // 8×8 tile's cost (8+8)·4 = 64, so dc grows by exactly 3/2
        // (384 vs the paper's 256 on Ivy Bridge caches).
        assert_eq!(p64.dc, 256);
        assert_eq!(p32.dc, 384);
        assert_eq!(p32.dc * 2, 3 * p64.dc);
        assert!(p32.validate_for::<f32>().is_ok());
        assert!(p64.validate_for::<f64>().is_ok());
    }

    #[test]
    fn tiny_for_respects_each_tile() {
        assert!(GemmParams::tiny_for::<f64>().validate_for::<f64>().is_ok());
        assert!(GemmParams::tiny_for::<f32>().validate_for::<f32>().is_ok());
        // the f64 tiny nc=12 is NOT valid for the f32 NR=8 tile
        assert!(GemmParams::tiny().validate_for::<f32>().is_err());
    }

    #[test]
    fn bad_params_rejected() {
        let mut p = GemmParams::ivy_bridge();
        p.mc = MR + 1;
        assert!(p.validate().is_err());
        p = GemmParams::ivy_bridge();
        p.nc = NR + 1;
        assert!(p.validate().is_err());
        p = GemmParams::ivy_bridge();
        p.dc = 0;
        assert!(p.validate().is_err());
    }
}
