//! A from-scratch Goto-algorithm GEMM for `f64`, specialized to the
//! transpose-first product the kNN kernel needs:
//!
//! ```text
//! C (m×n, row-major) = alpha · Aᵀ (m×d) · B (d×n) + beta · C
//! ```
//!
//! with `A` and `B` stored column-major `d×m` / `d×n` (each point
//! contiguous), exactly the `C = −2·QᵀR` call of Algorithm 2.1 in the
//! GSKNN paper. Row-major `C` corresponds to the paper's `Cᵀ = RᵀQ` trick
//! that makes the per-query neighbor scan contiguous.
//!
//! Structure follows Goto & van de Geijn (2008) / the BLIS framework:
//! five loops around a register-blocked micro-kernel, with `A` and `B`
//! gather-packed into cache-resident "Z-shape" panels. The same packing
//! and micro-kernel design is reused (and extended with the fused
//! epilogue) by the `gsknn-core` crate; this crate is the unfused baseline
//! substrate.

mod aligned;
mod blocked;
mod microkernel;
mod packing;
mod params;

pub use aligned::AlignedBuf;
pub use blocked::{gemm_tn, gemm_tn_parallel, GemmWorkspace};
pub use microkernel::{
    microkernel_dispatch, microkernel_dispatch_f32, GemmScalar, MicroKernelFn, MicroKernelFnT, MR,
    MR_F32, NR, NR_F32,
};
pub use packing::{pack_a_panel, pack_b_panel};
pub use params::{CacheSizes, GemmParams};

pub use gsknn_scalar::GsknnScalar;

/// Reference triple-loop implementation of the same operation; the oracle
/// for every test in this crate. O(mnd), no blocking, no vectorization.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS dgemm argument list
pub fn gemm_tn_naive<T: GsknnScalar>(
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
    d: usize,
    m: usize,
    n: usize,
) {
    assert_eq!(a.len(), d * m, "A must be d×m column-major");
    assert_eq!(b.len(), d * n, "B must be d×n column-major");
    assert_eq!(c.len(), m * n, "C must be m×n row-major");
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for p in 0..d {
                acc += a[i * d + p] * b[j * d + p];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_identity_times_identity() {
        // A = B = I (2×2), so C = alpha * I
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = a.clone();
        let mut c = vec![0.0; 4];
        gemm_tn_naive(3.0, &a, &b, 0.0, &mut c, 2, 2, 2);
        assert_eq!(c, vec![3.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn naive_beta_accumulates() {
        let a = vec![2.0]; // d=1, m=1
        let b = vec![5.0]; // d=1, n=1
        let mut c = vec![100.0];
        gemm_tn_naive(1.0, &a, &b, 0.5, &mut c, 1, 1, 1);
        assert_eq!(c, vec![60.0]);
    }
}
