//! Panel packing (§2.3 "Packing"): copy a `dcb`-deep slab of A or B into a
//! contiguous, zero-padded "Z-shape" buffer whose layout matches exactly
//! the order the micro-kernel streams it in. Full micro-tiles then need no
//! edge checks — fringe columns are padded with zeros, which contribute
//! nothing to the inner products.

use gsknn_scalar::GsknnScalar;

/// Pack the A-side (query-side) panel.
///
/// `src` is column-major with leading dimension `ld` (point `i` at
/// `src[i*ld ..]`). The packed output covers points `col0 .. col0+mcb` and
/// coordinates `p0 .. p0+dcb`, laid out as consecutive `T::MR`-wide
/// micro-panels: element `(i, p)` of micro-panel `ib` lands at
/// `ib*MR*dcb + p*MR + i`.
///
/// `out` must have length `ceil(mcb/MR)*MR*dcb`.
pub fn pack_a_panel<T: GsknnScalar>(
    src: &[T],
    ld: usize,
    col0: usize,
    mcb: usize,
    p0: usize,
    dcb: usize,
    out: &mut [T],
) {
    pack_panel(T::MR, src, ld, col0, mcb, p0, dcb, out)
}

/// Pack the B-side (reference-side) panel: identical scheme with
/// `T::NR`-wide micro-panels; element `(j, p)` of micro-panel `jb` lands
/// at `jb*NR*dcb + p*NR + j`.
pub fn pack_b_panel<T: GsknnScalar>(
    src: &[T],
    ld: usize,
    col0: usize,
    ncb: usize,
    p0: usize,
    dcb: usize,
    out: &mut [T],
) {
    pack_panel(T::NR, src, ld, col0, ncb, p0, dcb, out)
}

#[allow(clippy::too_many_arguments)] // internal helper shared by both panel shapes
fn pack_panel<T: GsknnScalar>(
    w: usize,
    src: &[T],
    ld: usize,
    col0: usize,
    cols: usize,
    p0: usize,
    dcb: usize,
    out: &mut [T],
) {
    let blocks = cols.div_ceil(w);
    assert_eq!(out.len(), blocks * w * dcb, "packed buffer size mismatch");
    debug_assert!(p0 + dcb <= ld);
    for ib in 0..blocks {
        let base = ib * w * dcb;
        let width = (cols - ib * w).min(w);
        for p in 0..dcb {
            let row = &mut out[base + p * w..base + p * w + w];
            for (i, slot) in row.iter_mut().enumerate().take(width) {
                *slot = src[(col0 + ib * w + i) * ld + p0 + p];
            }
            for slot in row.iter_mut().skip(width) {
                *slot = T::ZERO; // fringe padding
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microkernel::{MR, NR};

    /// 3 coordinates × 5 points, column-major: point j = [10j, 10j+1, 10j+2]
    fn sample() -> Vec<f64> {
        (0..5)
            .flat_map(|j| (0..3).map(move |p| (10 * j + p) as f64))
            .collect()
    }

    #[test]
    fn a_panel_layout_full_tile() {
        // mcb = MR exactly => one block, no padding (need 8 points)
        let src: Vec<f64> = (0..MR as u64 * 2).map(|x| x as f64).collect(); // d=2, m=MR
        let mut out = vec![f64::NAN; MR * 2];
        pack_a_panel(&src, 2, 0, MR, 0, 2, &mut out);
        // element (i, p) at p*MR + i must equal src[i*2 + p]
        for p in 0..2 {
            for i in 0..MR {
                assert_eq!(out[p * MR + i], src[i * 2 + p]);
            }
        }
    }

    #[test]
    fn b_panel_pads_fringe_with_zeros() {
        let src = sample(); // d=3, 5 points
        let ncb = 5usize; // 5 points, NR=4 => 2 blocks, second block half empty
        let dcb = 2;
        let blocks = ncb.div_ceil(NR);
        let mut out = vec![f64::NAN; blocks * NR * dcb];
        pack_b_panel(&src, 3, 0, ncb, 1, dcb, &mut out);
        // block 0, p=0 row: points 0..4, coordinate p0+0 = 1
        assert_eq!(&out[0..4], &[1.0, 11.0, 21.0, 31.0]);
        // block 1, p=1 row: point 4 then zeros
        let base = NR * dcb;
        assert_eq!(&out[base + NR..base + 2 * NR], &[42.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn offsets_select_the_right_slab() {
        let src = sample();
        let mut out = vec![f64::NAN; NR];
        pack_b_panel(&src, 3, 2, 3, 2, 1, &mut out);
        // points 2..5, coordinate 2 => [22, 32, 42], padded
        assert_eq!(out, vec![22.0, 32.0, 42.0, 0.0]);
    }

    #[test]
    fn f32_panels_use_the_wider_tile() {
        // 2 coordinates × 9 points of f32: NR = 8 so 9 points need 2 blocks
        let src: Vec<f32> = (0..18).map(|x| x as f32).collect();
        let nr32 = <f32 as GsknnScalar>::NR;
        assert_eq!(nr32, 8);
        let blocks = 9usize.div_ceil(nr32);
        let mut out = vec![f32::NAN; blocks * nr32 * 2];
        pack_b_panel(&src, 2, 0, 9, 0, 2, &mut out);
        // block 0, p=0: coordinate 0 of points 0..8
        let want: Vec<f32> = (0..8).map(|j| (2 * j) as f32).collect();
        assert_eq!(&out[..8], &want[..]);
        // block 1, p=1 row starts at 16 + 8 = 24: point 8's coordinate 1
        // then zero padding
        assert_eq!(out[24], 17.0);
        assert!(out[25..32].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_out_len_panics() {
        let src = sample();
        let mut out = vec![0.0; 3];
        pack_a_panel(&src, 3, 0, 2, 0, 1, &mut out);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every source element within the packed window appears at
            /// exactly the position the micro-kernel will read it from,
            /// and every pad slot is zero.
            #[test]
            fn layout_is_total_and_padded(
                ld in 1usize..12,
                npts in 1usize..20,
                col0 in 0usize..4,
                p0 in 0usize..4,
            ) {
                let cols = npts; // pack all points starting at col0
                prop_assume!(col0 + cols <= npts + col0); // trivially true
                let total = npts + col0;
                let src: Vec<f64> = (0..total * ld).map(|x| x as f64 + 1.0).collect();
                let dcb = ld - p0.min(ld - 1);
                let blocks = cols.div_ceil(NR);
                let mut out = vec![f64::NAN; blocks * NR * dcb];
                pack_b_panel(&src, ld, col0, cols, p0.min(ld - 1), dcb, &mut out);
                for jb in 0..blocks {
                    let width = (cols - jb * NR).min(NR);
                    for p in 0..dcb {
                        for j in 0..NR {
                            let got = out[jb * NR * dcb + p * NR + j];
                            if j < width {
                                let want =
                                    src[(col0 + jb * NR + j) * ld + p0.min(ld - 1) + p];
                                prop_assert_eq!(got, want);
                            } else {
                                prop_assert_eq!(got, 0.0);
                            }
                        }
                    }
                }
            }
        }
    }
}
