//! The five-loop blocked GEMM (Goto algorithm): loops 6→2 in C around the
//! micro-kernel, with packed panels sized by [`GemmParams`]. Generic over
//! the element type ([`GemmScalar`]): `f64` runs the paper's 8×4 kernel,
//! `f32` the 8×8 one, with the same loop structure and per-type blocking.

use crate::aligned::AlignedBuf;
use crate::microkernel::{GemmScalar, MicroKernelFnT};
use crate::packing::{pack_a_panel, pack_b_panel};
use crate::params::GemmParams;
use gsknn_scalar::{GsknnScalar, MAX_TILE};

/// Reusable packing buffers so repeated GEMM calls never allocate.
#[derive(Default, Debug)]
pub struct GemmWorkspace<T: GsknnScalar = f64> {
    a_pack: AlignedBuf<T>,
    b_pack: AlignedBuf<T>,
}

impl<T: GsknnScalar> GemmWorkspace<T> {
    /// Fresh (empty) workspace.
    pub fn new() -> Self {
        GemmWorkspace {
            a_pack: AlignedBuf::new(),
            b_pack: AlignedBuf::new(),
        }
    }
}

/// `C (m×n, row-major) = alpha · Aᵀ·B + beta · C` with `A` (`d×m`) and `B`
/// (`d×n`) column-major.
///
/// This is Algorithm 2.1's GEMM building block. `beta` is applied in one
/// pass up front (the explicit `C` traffic the performance model charges
/// the GEMM approach for), then every `pc` iteration accumulates its
/// rank-`dc` update into `C`.
///
/// ```
/// use gemm_kernel::{gemm_tn, GemmParams, GemmWorkspace};
/// // A = B = 2x2 identity (column-major), so C = -2·I
/// let a = vec![1.0, 0.0, 0.0, 1.0];
/// let mut c = vec![0.0; 4];
/// let mut ws = GemmWorkspace::new();
/// gemm_tn(-2.0, &a, &a, 0.0, &mut c, 2, 2, 2, &GemmParams::tiny(), &mut ws);
/// assert_eq!(c, vec![-2.0, 0.0, 0.0, -2.0]);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn<T: GemmScalar>(
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
    d: usize,
    m: usize,
    n: usize,
    params: &GemmParams,
    ws: &mut GemmWorkspace<T>,
) {
    assert_eq!(a.len(), d * m, "A must be d×m column-major");
    assert_eq!(b.len(), d * n, "B must be d×n column-major");
    assert_eq!(c.len(), m * n, "C must be m×n row-major");
    params
        .validate_for::<T>()
        .expect("invalid blocking parameters");

    // beta pass
    if beta == T::ZERO {
        c.fill(T::ZERO);
    } else if beta != T::ONE {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
    if m == 0 || n == 0 {
        return;
    }
    if d == 0 {
        return; // C = beta*C only
    }

    let kernel = T::microkernel();
    let (mr, nr) = (T::MR, T::NR);
    let ldc = n;

    // 6th loop: partition n
    for jc in (0..n).step_by(params.nc) {
        let ncb = (n - jc).min(params.nc);
        // 5th loop: partition d
        for pc in (0..d).step_by(params.dc) {
            let dcb = (d - pc).min(params.dc);
            let nblocks = ncb.div_ceil(nr);
            ws.b_pack.resize(nblocks * nr * dcb);
            pack_b_panel(b, d, jc, ncb, pc, dcb, ws.b_pack.as_mut_slice());
            // 4th loop: partition m
            for ic in (0..m).step_by(params.mc) {
                let mcb = (m - ic).min(params.mc);
                let mblocks = mcb.div_ceil(mr);
                ws.a_pack.resize(mblocks * mr * dcb);
                pack_a_panel(a, d, ic, mcb, pc, dcb, ws.a_pack.as_mut_slice());
                // macro-kernel: 3rd and 2nd loops
                macrokernel(
                    kernel,
                    dcb,
                    alpha,
                    ws.a_pack.as_slice(),
                    ws.b_pack.as_slice(),
                    c,
                    ldc,
                    ic,
                    mcb,
                    jc,
                    ncb,
                );
            }
        }
    }
}

/// 3rd/2nd loops: sweep micro-tiles of the packed panels. Full tiles write
/// straight into `C`; fringe tiles go through a scratch tile so the
/// micro-kernel itself never needs bounds checks.
#[allow(clippy::too_many_arguments)]
fn macrokernel<T: GemmScalar>(
    kernel: MicroKernelFnT<T>,
    dcb: usize,
    alpha: T,
    a_pack: &[T],
    b_pack: &[T],
    c: &mut [T],
    ldc: usize,
    ic: usize,
    mcb: usize,
    jc: usize,
    ncb: usize,
) {
    let (mr, nr) = (T::MR, T::NR);
    let mut scratch = [T::ZERO; MAX_TILE];
    for jr in (0..ncb).step_by(nr) {
        let nre = (ncb - jr).min(nr);
        let bp = &b_pack[(jr / nr) * nr * dcb..];
        for ir in (0..mcb).step_by(mr) {
            let mre = (mcb - ir).min(mr);
            let ap = &a_pack[(ir / mr) * mr * dcb..];
            let full = mre == mr && nre == nr;
            if full {
                let cptr = &mut c[(ic + ir) * ldc + jc + jr] as *mut T;
                // SAFETY: the tile (MR rows × NR cols at row stride ldc)
                // lies inside c because ic+ir+MR <= m and jc+jr+NR <= n;
                // packed panels hold dcb*MR / dcb*NR elements; bp rows are
                // 32B-aligned (AlignedBuf + NR-multiple offsets).
                unsafe { kernel(dcb, alpha, ap.as_ptr(), bp.as_ptr(), cptr, ldc) };
            } else {
                scratch[..mr * nr].fill(T::ZERO);
                // SAFETY: scratch is a full MR×NR tile; panels as above
                // (fringe entries are zero-padded by packing).
                unsafe {
                    kernel(
                        dcb,
                        alpha,
                        ap.as_ptr(),
                        bp.as_ptr(),
                        scratch.as_mut_ptr(),
                        nr,
                    )
                };
                for i in 0..mre {
                    for j in 0..nre {
                        c[(ic + ir + i) * ldc + jc + jr + j] += scratch[i * nr + j];
                    }
                }
            }
        }
    }
}

/// Parallel `gemm_tn`: the 4th (`ic`) loop runs on the rayon pool — the
/// same loop the paper's data-parallel GSKNN scheme targets, with each
/// worker packing its private A panel against the shared packed B panel.
/// `C` row blocks are disjoint per worker, so no synchronization is
/// needed. Bit-identical to the serial version (same tile order per
/// element).
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn_parallel<T: GemmScalar>(
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
    d: usize,
    m: usize,
    n: usize,
    params: &GemmParams,
) {
    use rayon::prelude::*;

    assert_eq!(a.len(), d * m, "A must be d×m column-major");
    assert_eq!(b.len(), d * n, "B must be d×n column-major");
    assert_eq!(c.len(), m * n, "C must be m×n row-major");
    params
        .validate_for::<T>()
        .expect("invalid blocking parameters");

    if beta == T::ZERO {
        c.fill(T::ZERO);
    } else if beta != T::ONE {
        c.par_iter_mut().for_each(|v| *v *= beta);
    }
    if m == 0 || n == 0 || d == 0 {
        return;
    }

    let kernel = T::microkernel();
    let (mr, nr) = (T::MR, T::NR);
    let ldc = n;
    let mut b_pack = AlignedBuf::<T>::new();

    for jc in (0..n).step_by(params.nc) {
        let ncb = (n - jc).min(params.nc);
        for pc in (0..d).step_by(params.dc) {
            let dcb = (d - pc).min(params.dc);
            let nblocks = ncb.div_ceil(nr);
            b_pack.resize(nblocks * nr * dcb);
            pack_b_panel(b, d, jc, ncb, pc, dcb, b_pack.as_mut_slice());
            let bp_shared = b_pack.as_slice();

            c.par_chunks_mut(params.mc * ldc)
                .enumerate()
                .for_each(|(ci, c_rows)| {
                    let ic = ci * params.mc;
                    let mcb = (m - ic).min(params.mc);
                    let mblocks = mcb.div_ceil(mr);
                    let mut a_pack = AlignedBuf::<T>::zeroed(mblocks * mr * dcb);
                    pack_a_panel(a, d, ic, mcb, pc, dcb, a_pack.as_mut_slice());
                    // rows are chunk-local: macro-kernel runs at ic = 0
                    macrokernel(
                        kernel,
                        dcb,
                        alpha,
                        a_pack.as_slice(),
                        bp_shared,
                        c_rows,
                        ldc,
                        0,
                        mcb,
                        jc,
                        ncb,
                    );
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_tn_naive;
    use crate::microkernel::{MR, NR};
    use proptest::prelude::*;

    fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    fn check(d: usize, m: usize, n: usize, alpha: f64, beta: f64, params: &GemmParams) {
        let a = rand_vec(d * m, 1);
        let b = rand_vec(d * n, 2);
        let c0 = rand_vec(m * n, 3);
        let mut got = c0.clone();
        let mut want = c0.clone();
        let mut ws = GemmWorkspace::new();
        gemm_tn(alpha, &a, &b, beta, &mut got, d, m, n, params, &mut ws);
        gemm_tn_naive(alpha, &a, &b, beta, &mut want, d, m, n);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-10 * (1.0 + w.abs()),
                "({d},{m},{n}) elt {i}: {g} vs {w}"
            );
        }
    }

    fn check_f32(d: usize, m: usize, n: usize, alpha: f32, beta: f32, params: &GemmParams) {
        let a: Vec<f32> = rand_vec(d * m, 11).iter().map(|&v| v as f32).collect();
        let b: Vec<f32> = rand_vec(d * n, 12).iter().map(|&v| v as f32).collect();
        let c0: Vec<f32> = rand_vec(m * n, 13).iter().map(|&v| v as f32).collect();
        let mut got = c0.clone();
        let mut want = c0.clone();
        let mut ws = GemmWorkspace::<f32>::new();
        gemm_tn(alpha, &a, &b, beta, &mut got, d, m, n, params, &mut ws);
        gemm_tn_naive(alpha, &a, &b, beta, &mut want, d, m, n);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-4 * (1.0 + w.abs()),
                "f32 ({d},{m},{n}) elt {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn exact_multiples_of_blocks() {
        let p = GemmParams::tiny();
        check(8, MR * 2, NR * 3, 1.0, 0.0, &p);
    }

    #[test]
    fn fringe_in_every_dimension() {
        let p = GemmParams::tiny();
        check(13, MR * 2 + 3, NR * 3 + 1, -2.0, 0.0, &p);
    }

    #[test]
    fn beta_one_accumulates() {
        check(5, 9, 7, 1.0, 1.0, &GemmParams::tiny());
    }

    #[test]
    fn beta_fraction_scales() {
        check(5, 9, 7, 2.0, 0.25, &GemmParams::tiny());
    }

    #[test]
    fn degenerate_shapes() {
        let p = GemmParams::tiny();
        check(0, 4, 4, 1.0, 0.5, &p); // d = 0: pure beta scaling
        check(4, 0, 4, 1.0, 0.0, &p); // empty C
        check(4, 4, 0, 1.0, 0.0, &p);
        check(1, 1, 1, -2.0, 0.0, &p);
    }

    #[test]
    fn paper_params_on_medium_problem() {
        check(300, 200, 150, -2.0, 0.0, &GemmParams::ivy_bridge());
    }

    #[test]
    fn f32_path_matches_naive() {
        let p = GemmParams::tiny_for::<f32>();
        check_f32(8, 16, 24, 1.0, 0.0, &p); // exact block multiples
        check_f32(13, 19, 25, -2.0, 0.0, &p); // fringe in every dimension
        check_f32(5, 9, 7, 1.0, 1.0, &p); // beta accumulation
        check_f32(0, 4, 4, 1.0, 0.5, &p); // d = 0
        check_f32(
            40,
            60,
            33,
            -2.0,
            0.0,
            &GemmParams::for_caches_of::<f32>(&crate::CacheSizes::ivy_bridge()),
        );
    }

    #[test]
    #[should_panic(expected = "invalid blocking")]
    fn f32_rejects_f64_tiny_blocking() {
        // tiny() has nc = 12, not a multiple of the f32 NR = 8
        let mut ws = GemmWorkspace::<f32>::new();
        let a = vec![0.0f32; 4];
        let mut c = vec![0.0f32; 4];
        gemm_tn(
            1.0f32,
            &a,
            &a.clone(),
            0.0,
            &mut c,
            2,
            2,
            2,
            &GemmParams::tiny(),
            &mut ws,
        );
    }

    #[test]
    fn workspace_reuse_across_shapes() {
        let p = GemmParams::tiny();
        let mut ws = GemmWorkspace::new();
        for (d, m, n) in [(9, 17, 5), (3, 2, 31), (20, 40, 11)] {
            let a = rand_vec(d * m, d as u64);
            let b = rand_vec(d * n, n as u64);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            gemm_tn(1.0, &a, &b, 0.0, &mut got, d, m, n, &p, &mut ws);
            gemm_tn_naive(1.0, &a, &b, 0.0, &mut want, d, m, n);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        for (d, m, n) in [(13usize, 50usize, 37usize), (7, 8, 4), (40, 120, 90)] {
            let a = rand_vec(d * m, 5);
            let b = rand_vec(d * n, 6);
            let c0 = rand_vec(m * n, 7);
            let params = GemmParams::tiny();
            let mut serial = c0.clone();
            let mut par = c0;
            let mut ws = GemmWorkspace::new();
            gemm_tn(-2.0, &a, &b, 0.5, &mut serial, d, m, n, &params, &mut ws);
            gemm_tn_parallel(-2.0, &a, &b, 0.5, &mut par, d, m, n, &params);
            assert_eq!(serial, par, "({d},{m},{n})");
        }
    }

    #[test]
    fn f32_parallel_matches_serial_bitwise() {
        for (d, m, n) in [(13usize, 50usize, 37usize), (9, 8, 8)] {
            let a: Vec<f32> = rand_vec(d * m, 5).iter().map(|&v| v as f32).collect();
            let b: Vec<f32> = rand_vec(d * n, 6).iter().map(|&v| v as f32).collect();
            let c0: Vec<f32> = rand_vec(m * n, 7).iter().map(|&v| v as f32).collect();
            let params = GemmParams::tiny_for::<f32>();
            let mut serial = c0.clone();
            let mut par = c0;
            let mut ws = GemmWorkspace::<f32>::new();
            gemm_tn(-2.0f32, &a, &b, 0.5, &mut serial, d, m, n, &params, &mut ws);
            gemm_tn_parallel(-2.0f32, &a, &b, 0.5, &mut par, d, m, n, &params);
            assert_eq!(serial, par, "f32 ({d},{m},{n})");
        }
    }

    #[test]
    fn parallel_degenerate_shapes() {
        let params = GemmParams::tiny();
        let mut c = vec![1.0, 2.0];
        gemm_tn_parallel(1.0, &[], &[], 0.5, &mut c, 0, 1, 2, &params);
        assert_eq!(c, vec![0.5, 1.0]); // pure beta pass when d = 0
        let mut empty: Vec<f64> = vec![];
        gemm_tn_parallel(1.0, &[], &[], 0.0, &mut empty, 3, 0, 0, &params);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn matches_naive(
            d in 1usize..40,
            m in 1usize..50,
            n in 1usize..50,
            alpha in -2.0f64..2.0,
            beta in prop::sample::select(vec![0.0f64, 1.0, 0.5]),
        ) {
            let a = rand_vec(d * m, (d + m) as u64);
            let b = rand_vec(d * n, (d + n) as u64);
            let c0 = rand_vec(m * n, 7);
            let mut got = c0.clone();
            let mut want = c0;
            let mut ws = GemmWorkspace::new();
            gemm_tn(alpha, &a, &b, beta, &mut got, d, m, n, &GemmParams::tiny(), &mut ws);
            gemm_tn_naive(alpha, &a, &b, beta, &mut want, d, m, n);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-10 * (1.0 + w.abs()));
            }
        }

        #[test]
        fn f32_matches_naive(
            d in 1usize..32,
            m in 1usize..40,
            n in 1usize..40,
        ) {
            let a: Vec<f32> = rand_vec(d * m, (d + m) as u64).iter().map(|&v| v as f32).collect();
            let b: Vec<f32> = rand_vec(d * n, (d + n) as u64).iter().map(|&v| v as f32).collect();
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            let mut ws = GemmWorkspace::<f32>::new();
            gemm_tn(-2.0f32, &a, &b, 0.0, &mut got, d, m, n, &GemmParams::tiny_for::<f32>(), &mut ws);
            gemm_tn_naive(-2.0f32, &a, &b, 0.0, &mut want, d, m, n);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-4 * (1.0 + w.abs()));
            }
        }
    }
}
