//! The register-blocked micro-kernel (1st loop): an `MR × NR` rank-`dcb`
//! update streamed from packed panels, the only architecture-dependent
//! code in the GEMM (the BLIS design the paper follows, §2.4).
//!
//! `MR = 8`, `NR = 4` doubles mirrors the paper's Ivy Bridge kernel: the
//! 8×4 tile needs eight 256-bit accumulators plus one broadcast and one
//! load register, leaving headroom in the 16 `ymm` registers for the
//! double-buffering the hardware's out-of-order engine performs for us.
//! On FMA-capable parts the shuffle dance of the paper's Figure 3 (AVX
//! without FMA) is replaced by broadcast-FMA, which is how BLIS writes the
//! same kernel on Haswell+.

//! The f32 kernels double the lane count at the same register budget:
//! `MR = 8`, `NR = 8` singles is an 8×8 tile held in eight `f32x8`
//! accumulators (AVX2), or four `zmm` registers of two adjacent rows each
//! (AVX-512F) — the same register-pairing trick as the f64 512-bit
//! kernel, so both precisions share one packing layout per type.

use gsknn_scalar::GsknnScalar;

/// Micro-tile rows (m-dimension) — f64 kernel (`<f64 as GsknnScalar>::MR`).
pub const MR: usize = 8;
/// Micro-tile columns (n-dimension) — f64 kernel (`<f64 as GsknnScalar>::NR`).
pub const NR: usize = 4;

/// Micro-tile rows of the f32 kernel.
pub const MR_F32: usize = 8;
/// Micro-tile columns of the f32 kernel (one 256-bit register of 8
/// lanes).
pub const NR_F32: usize = 8;

/// Signature of a rank-`dcb` micro-kernel:
/// `C[i][j] += alpha * Σ_p ap[p*MR+i] * bp[p*NR+j]` for the full tile,
/// where `c` points at `C(0,0)` and rows are `ldc` elements apart.
///
/// # Safety
/// `ap`/`bp` must be valid for `dcb*MR` / `dcb*NR` reads; `c` must be valid
/// for writes at `i*ldc + j` for all `i < MR`, `j < NR`; the AVX2 variant
/// additionally requires AVX2+FMA support (guaranteed by
/// [`microkernel_dispatch`]).
pub type MicroKernelFn =
    unsafe fn(dcb: usize, alpha: f64, ap: *const f64, bp: *const f64, c: *mut f64, ldc: usize);

/// [`MicroKernelFn`] for an arbitrary element type; the tile is
/// `T::MR × T::NR`.
pub type MicroKernelFnT<T> =
    unsafe fn(dcb: usize, alpha: T, ap: *const T, bp: *const T, c: *mut T, ldc: usize);

/// Element types the GEMM substrate has micro-kernels for: adds the
/// per-type kernel dispatch on top of [`GsknnScalar`].
pub trait GemmScalar: GsknnScalar {
    /// Best rank-update micro-kernel for the running CPU (decided once
    /// per type).
    fn microkernel() -> MicroKernelFnT<Self>;
}

impl GemmScalar for f64 {
    fn microkernel() -> MicroKernelFnT<f64> {
        microkernel_dispatch()
    }
}

impl GemmScalar for f32 {
    fn microkernel() -> MicroKernelFnT<f32> {
        microkernel_dispatch_f32()
    }
}

/// Portable scalar micro-kernel; also the "edge-case kernel" the paper
/// pairs with the optimized one.
///
/// # Safety
/// See [`MicroKernelFn`].
pub unsafe fn kernel_8x4_scalar(
    dcb: usize,
    alpha: f64,
    ap: *const f64,
    bp: *const f64,
    c: *mut f64,
    ldc: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for p in 0..dcb {
        let a = std::slice::from_raw_parts(ap.add(p * MR), MR);
        let b = std::slice::from_raw_parts(bp.add(p * NR), NR);
        for i in 0..MR {
            for j in 0..NR {
                acc[i][j] += a[i] * b[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            *c.add(i * ldc + j) += alpha * v;
        }
    }
}

/// AVX2+FMA micro-kernel: eight `f64x4` accumulators, one broadcast per
/// row per `p`.
///
/// # Safety
/// See [`MicroKernelFn`]; caller must ensure AVX2 and FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn kernel_8x4_avx2(
    dcb: usize,
    alpha: f64,
    ap: *const f64,
    bp: *const f64,
    c: *mut f64,
    ldc: usize,
) {
    use std::arch::x86_64::*;
    let mut acc = [_mm256_setzero_pd(); MR];
    for p in 0..dcb {
        let b = _mm256_load_pd(bp.add(p * NR)); // packed, 32B-aligned rows
        let a_row = ap.add(p * MR);
        // Fixed-count loop: unrolled by the compiler into 8 broadcast+FMA.
        for (i, acc_i) in acc.iter_mut().enumerate() {
            let a = _mm256_broadcast_sd(&*a_row.add(i));
            *acc_i = _mm256_fmadd_pd(a, b, *acc_i);
        }
    }
    let va = _mm256_set1_pd(alpha);
    for (i, &a) in acc.iter().enumerate() {
        let dst = c.add(i * ldc);
        let cur = _mm256_loadu_pd(dst);
        _mm256_storeu_pd(dst, _mm256_fmadd_pd(va, a, cur));
    }
}

/// AVX-512F micro-kernel: four 512-bit accumulators, each covering two
/// adjacent tile rows (rows `2j`/`2j+1`), so one FMA feeds eight C
/// entries — half the instruction count of the AVX2 kernel at the same
/// 8×4 tile shape (and hence the same packing layout).
///
/// # Safety
/// See [`MicroKernelFn`]; caller must ensure AVX-512F is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
pub unsafe fn kernel_8x4_avx512(
    dcb: usize,
    alpha: f64,
    ap: *const f64,
    bp: *const f64,
    c: *mut f64,
    ldc: usize,
) {
    use std::arch::x86_64::*;
    let spread = _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0);
    let mut acc = [_mm512_setzero_pd(); MR / 2];
    for p in 0..dcb {
        let b = _mm512_broadcast_f64x4(_mm256_loadu_pd(bp.add(p * NR)));
        let a_row = ap.add(p * MR);
        for (j, accj) in acc.iter_mut().enumerate() {
            // lanes 0..4 = a(2j), lanes 4..8 = a(2j+1)
            let pair = _mm512_castpd128_pd512(_mm_loadu_pd(a_row.add(2 * j)));
            let a = _mm512_permutexvar_pd(spread, pair);
            *accj = _mm512_fmadd_pd(a, b, *accj);
        }
    }
    let va = _mm512_set1_pd(alpha);
    for (j, &a) in acc.iter().enumerate() {
        // C rows are ldc apart: split the zmm back into two ymm stores
        let lo = _mm512_castpd512_pd256(a);
        let hi = _mm512_extractf64x4_pd(a, 1);
        let d0 = c.add(2 * j * ldc);
        let d1 = c.add((2 * j + 1) * ldc);
        let va4 = _mm512_castpd512_pd256(va);
        _mm256_storeu_pd(d0, _mm256_fmadd_pd(va4, lo, _mm256_loadu_pd(d0)));
        _mm256_storeu_pd(d1, _mm256_fmadd_pd(va4, hi, _mm256_loadu_pd(d1)));
    }
}

/// Pick the best micro-kernel for the running CPU (decided once).
pub fn microkernel_dispatch() -> MicroKernelFn {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static CHOICE: OnceLock<MicroKernelFn> = OnceLock::new();
        *CHOICE.get_or_init(|| {
            // AVX2 preferred over AVX-512 (matching gsknn-core's fused
            // kernel): on the target Xeons the 512-bit path measures a
            // few percent slower — see the `simd_ablation` harness.
            // `GSKNN_GEMM_AVX512=1` opts in for wide-vector parts.
            let want_512 = std::env::var_os("GSKNN_GEMM_AVX512").is_some();
            if want_512
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("fma")
            {
                kernel_8x4_avx512
            } else if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                kernel_8x4_avx2
            } else {
                kernel_8x4_scalar
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        kernel_8x4_scalar
    }
}

/// Portable scalar f32 micro-kernel (8×8 tile); the edge-case kernel and
/// the oracle for the SIMD variants.
///
/// # Safety
/// See [`MicroKernelFn`], with `MR_F32`/`NR_F32` tile bounds.
pub unsafe fn kernel_8x8_f32_scalar(
    dcb: usize,
    alpha: f32,
    ap: *const f32,
    bp: *const f32,
    c: *mut f32,
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR_F32]; MR_F32];
    for p in 0..dcb {
        let a = std::slice::from_raw_parts(ap.add(p * MR_F32), MR_F32);
        let b = std::slice::from_raw_parts(bp.add(p * NR_F32), NR_F32);
        for i in 0..MR_F32 {
            for j in 0..NR_F32 {
                acc[i][j] += a[i] * b[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            *c.add(i * ldc + j) += alpha * v;
        }
    }
}

/// AVX2+FMA f32 micro-kernel: eight `f32x8` accumulators (one full tile
/// row each), one broadcast per row per `p` — twice the FLOPs of the f64
/// kernel per instruction at the identical register budget.
///
/// # Safety
/// See [`MicroKernelFn`]; caller must ensure AVX2 and FMA are available,
/// and `bp` rows must be 32-byte aligned (packing into [`crate::AlignedBuf`]
/// guarantees this).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn kernel_8x8_f32_avx2(
    dcb: usize,
    alpha: f32,
    ap: *const f32,
    bp: *const f32,
    c: *mut f32,
    ldc: usize,
) {
    use std::arch::x86_64::*;
    let mut acc = [_mm256_setzero_ps(); MR_F32];
    for p in 0..dcb {
        let b = _mm256_load_ps(bp.add(p * NR_F32)); // packed, 32B-aligned rows
        let a_row = ap.add(p * MR_F32);
        for (i, acc_i) in acc.iter_mut().enumerate() {
            let a = _mm256_broadcast_ss(&*a_row.add(i));
            *acc_i = _mm256_fmadd_ps(a, b, *acc_i);
        }
    }
    let va = _mm256_set1_ps(alpha);
    for (i, &a) in acc.iter().enumerate() {
        let dst = c.add(i * ldc);
        let cur = _mm256_loadu_ps(dst);
        _mm256_storeu_ps(dst, _mm256_fmadd_ps(va, a, cur));
    }
}

/// AVX-512F f32 micro-kernel: four 512-bit accumulators, each covering
/// two adjacent 8-wide tile rows — the same two-rows-per-register pairing
/// as the f64 AVX-512 kernel, now with 16 lanes per FMA.
///
/// # Safety
/// See [`MicroKernelFn`]; caller must ensure AVX-512F is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
pub unsafe fn kernel_8x8_f32_avx512(
    dcb: usize,
    alpha: f32,
    ap: *const f32,
    bp: *const f32,
    c: *mut f32,
    ldc: usize,
) {
    use std::arch::x86_64::*;
    let spread = _mm512_set_epi32(1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0);
    let mut acc = [_mm512_setzero_ps(); MR_F32 / 2];
    for p in 0..dcb {
        // duplicate the 8-lane B row into both 256-bit halves
        let b256 = _mm512_castps256_ps512(_mm256_loadu_ps(bp.add(p * NR_F32)));
        let b = _mm512_shuffle_f32x4(b256, b256, 0b0100_0100);
        let a_row = ap.add(p * MR_F32);
        for (j, accj) in acc.iter_mut().enumerate() {
            // lanes 0..8 = a(2j), lanes 8..16 = a(2j+1); 8-byte load only
            let two = _mm_castsi128_ps(_mm_loadl_epi64(a_row.add(2 * j) as *const __m128i));
            let a = _mm512_permutexvar_ps(spread, _mm512_castps128_ps512(two));
            *accj = _mm512_fmadd_ps(a, b, *accj);
        }
    }
    let va = _mm256_set1_ps(alpha);
    for (j, &a) in acc.iter().enumerate() {
        // split the zmm back into two 8-wide row stores (avx512f-only
        // extraction via the f64x4 view)
        let lo = _mm512_castps512_ps256(a);
        let hi = _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(a), 1));
        let d0 = c.add(2 * j * ldc);
        let d1 = c.add((2 * j + 1) * ldc);
        _mm256_storeu_ps(d0, _mm256_fmadd_ps(va, lo, _mm256_loadu_ps(d0)));
        _mm256_storeu_ps(d1, _mm256_fmadd_ps(va, hi, _mm256_loadu_ps(d1)));
    }
}

/// Pick the best f32 micro-kernel for the running CPU (decided once).
/// Mirrors [`microkernel_dispatch`]: AVX2 by default,
/// `GSKNN_GEMM_AVX512=1` opts into the 512-bit kernel.
pub fn microkernel_dispatch_f32() -> MicroKernelFnT<f32> {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static CHOICE: OnceLock<MicroKernelFnT<f32>> = OnceLock::new();
        *CHOICE.get_or_init(|| {
            let want_512 = std::env::var_os("GSKNN_GEMM_AVX512").is_some();
            if want_512
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("fma")
            {
                kernel_8x8_f32_avx512
            } else if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                kernel_8x8_f32_avx2
            } else {
                kernel_8x8_f32_scalar
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        kernel_8x8_f32_scalar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build packed panels for an MR×NR×depth toy problem with
    /// deterministic pseudo-random contents.
    fn panels(depth: usize) -> (Vec<f64>, Vec<f64>) {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let ap: Vec<f64> = (0..depth * MR).map(|_| next()).collect();
        let bp: Vec<f64> = (0..depth * NR).map(|_| next()).collect();
        (ap, bp)
    }

    fn reference(dcb: usize, alpha: f64, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize) {
        for i in 0..MR {
            for j in 0..NR {
                let mut acc = 0.0;
                for p in 0..dcb {
                    acc += ap[p * MR + i] * bp[p * NR + j];
                }
                c[i * ldc + j] += alpha * acc;
            }
        }
    }

    #[test]
    fn scalar_matches_reference() {
        for depth in [0usize, 1, 3, 17, 64] {
            let (ap, bp) = panels(depth.max(1));
            let ldc = NR + 3;
            let mut got = vec![1.0; MR * ldc];
            let mut want = got.clone();
            unsafe {
                kernel_8x4_scalar(depth, -2.0, ap.as_ptr(), bp.as_ptr(), got.as_mut_ptr(), ldc)
            };
            reference(depth, -2.0, &ap, &bp, &mut want, ldc);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "depth {depth}: {g} vs {w}");
            }
        }
    }

    #[test]
    #[cfg_attr(not(target_arch = "x86_64"), ignore)]
    fn avx2_matches_scalar() {
        if !std::arch::is_x86_feature_detected!("avx2")
            || !std::arch::is_x86_feature_detected!("fma")
        {
            return;
        }
        for depth in [1usize, 2, 7, 31, 256] {
            // AVX2 kernel loads bp with aligned loads: allocate aligned.
            let (ap, bp_v) = panels(depth);
            let mut bp = crate::AlignedBuf::zeroed(bp_v.len());
            bp.as_mut_slice().copy_from_slice(&bp_v);
            let ldc = NR;
            let mut got = vec![0.5; MR * ldc];
            let mut want = got.clone();
            unsafe {
                kernel_8x4_avx2(
                    depth,
                    1.5,
                    ap.as_ptr(),
                    bp.as_slice().as_ptr(),
                    got.as_mut_ptr(),
                    ldc,
                );
                kernel_8x4_scalar(
                    depth,
                    1.5,
                    ap.as_ptr(),
                    bp.as_slice().as_ptr(),
                    want.as_mut_ptr(),
                    ldc,
                );
            }
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-10, "depth {depth}: {g} vs {w}");
            }
        }
    }

    #[test]
    #[cfg_attr(not(target_arch = "x86_64"), ignore)]
    fn avx512_matches_scalar() {
        if !std::arch::is_x86_feature_detected!("avx512f")
            || !std::arch::is_x86_feature_detected!("fma")
        {
            return;
        }
        for depth in [1usize, 2, 7, 31, 256] {
            let (ap, bp_v) = panels(depth);
            let mut bp = crate::AlignedBuf::zeroed(bp_v.len());
            bp.as_mut_slice().copy_from_slice(&bp_v);
            let ldc = NR + 2; // strided C to exercise the two-row stores
            let mut got = vec![0.25; MR * ldc];
            let mut want = got.clone();
            unsafe {
                kernel_8x4_avx512(
                    depth,
                    -2.0,
                    ap.as_ptr(),
                    bp.as_slice().as_ptr(),
                    got.as_mut_ptr(),
                    ldc,
                );
                kernel_8x4_scalar(
                    depth,
                    -2.0,
                    ap.as_ptr(),
                    bp.as_slice().as_ptr(),
                    want.as_mut_ptr(),
                    ldc,
                );
            }
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-10, "depth {depth}: {g} vs {w}");
            }
        }
    }

    /// Packed f32 panels with deterministic pseudo-random contents.
    fn panels_f32(depth: usize) -> (Vec<f32>, Vec<f32>) {
        let mut state = 0xD1B54A32D192ED03u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5) as f32
        };
        let ap: Vec<f32> = (0..depth * MR_F32).map(|_| next()).collect();
        let bp: Vec<f32> = (0..depth * NR_F32).map(|_| next()).collect();
        (ap, bp)
    }

    fn reference_f32(dcb: usize, alpha: f32, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
        for i in 0..MR_F32 {
            for j in 0..NR_F32 {
                let mut acc = 0.0f32;
                for p in 0..dcb {
                    acc += ap[p * MR_F32 + i] * bp[p * NR_F32 + j];
                }
                c[i * ldc + j] += alpha * acc;
            }
        }
    }

    #[test]
    fn f32_scalar_matches_reference() {
        for depth in [0usize, 1, 3, 17, 64] {
            let (ap, bp) = panels_f32(depth.max(1));
            let ldc = NR_F32 + 3;
            let mut got = vec![1.0f32; MR_F32 * ldc];
            let mut want = got.clone();
            unsafe {
                kernel_8x8_f32_scalar(depth, -2.0, ap.as_ptr(), bp.as_ptr(), got.as_mut_ptr(), ldc)
            };
            reference_f32(depth, -2.0, &ap, &bp, &mut want, ldc);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-5, "depth {depth}: {g} vs {w}");
            }
        }
    }

    #[test]
    #[cfg_attr(not(target_arch = "x86_64"), ignore)]
    fn f32_avx2_matches_scalar() {
        if !std::arch::is_x86_feature_detected!("avx2")
            || !std::arch::is_x86_feature_detected!("fma")
        {
            return;
        }
        for depth in [1usize, 2, 7, 31, 256] {
            let (ap, bp_v) = panels_f32(depth);
            let mut bp = crate::AlignedBuf::<f32>::zeroed(bp_v.len());
            bp.as_mut_slice().copy_from_slice(&bp_v);
            let ldc = NR_F32;
            let mut got = vec![0.5f32; MR_F32 * ldc];
            let mut want = got.clone();
            unsafe {
                kernel_8x8_f32_avx2(
                    depth,
                    1.5,
                    ap.as_ptr(),
                    bp.as_slice().as_ptr(),
                    got.as_mut_ptr(),
                    ldc,
                );
                kernel_8x8_f32_scalar(
                    depth,
                    1.5,
                    ap.as_ptr(),
                    bp.as_slice().as_ptr(),
                    want.as_mut_ptr(),
                    ldc,
                );
            }
            for (g, w) in got.iter().zip(&want) {
                // FMA contracts the multiply-add, scalar does not: allow
                // a few ulps over the f32 epsilon per accumulated term
                assert!(
                    (g - w).abs() < 1e-4 * depth as f32,
                    "depth {depth}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    #[cfg_attr(not(target_arch = "x86_64"), ignore)]
    fn f32_avx512_matches_scalar() {
        if !std::arch::is_x86_feature_detected!("avx512f")
            || !std::arch::is_x86_feature_detected!("fma")
        {
            return;
        }
        for depth in [1usize, 2, 7, 31, 256] {
            let (ap, bp_v) = panels_f32(depth);
            let mut bp = crate::AlignedBuf::<f32>::zeroed(bp_v.len());
            bp.as_mut_slice().copy_from_slice(&bp_v);
            let ldc = NR_F32 + 2; // strided C to exercise the two-row stores
            let mut got = vec![0.25f32; MR_F32 * ldc];
            let mut want = got.clone();
            unsafe {
                kernel_8x8_f32_avx512(
                    depth,
                    -2.0,
                    ap.as_ptr(),
                    bp.as_slice().as_ptr(),
                    got.as_mut_ptr(),
                    ldc,
                );
                kernel_8x8_f32_scalar(
                    depth,
                    -2.0,
                    ap.as_ptr(),
                    bp.as_slice().as_ptr(),
                    want.as_mut_ptr(),
                    ldc,
                );
            }
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() < 1e-4 * depth as f32,
                    "depth {depth}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn f32_dispatch_returns_a_working_kernel() {
        let k = <f32 as GemmScalar>::microkernel();
        let (ap, bp_v) = panels_f32(4);
        let mut bp = crate::AlignedBuf::<f32>::zeroed(bp_v.len());
        bp.as_mut_slice().copy_from_slice(&bp_v);
        let mut got = vec![0.0f32; MR_F32 * NR_F32];
        let mut want = vec![0.0f32; MR_F32 * NR_F32];
        unsafe {
            k(
                4,
                1.0,
                ap.as_ptr(),
                bp.as_slice().as_ptr(),
                got.as_mut_ptr(),
                NR_F32,
            )
        };
        reference_f32(4, 1.0, &ap, bp.as_slice(), &mut want, NR_F32);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn dispatch_returns_a_working_kernel() {
        let k = microkernel_dispatch();
        let (ap, bp_v) = panels(4);
        let mut bp = crate::AlignedBuf::zeroed(bp_v.len());
        bp.as_mut_slice().copy_from_slice(&bp_v);
        let mut got = vec![0.0; MR * NR];
        let mut want = vec![0.0; MR * NR];
        unsafe {
            k(
                4,
                1.0,
                ap.as_ptr(),
                bp.as_slice().as_ptr(),
                got.as_mut_ptr(),
                NR,
            )
        };
        reference(4, 1.0, &ap, bp.as_slice(), &mut want, NR);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }
}
