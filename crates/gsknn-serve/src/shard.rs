//! Thread-per-core shards: the serving hot path.
//!
//! Each shard thread owns **everything** a query touches — its slice of
//! connections, both precision lanes' parked batches, and a core-pinnable
//! reusable workspace (pack buffers, heaps, reply scratch) — so the
//! steady-state query cycle crosses no locks, no channels, and performs
//! no heap allocation (guarded by
//! `steady_state_query_cycle_performs_no_heap_allocation` below, under a
//! counting global allocator).
//!
//! One iteration of the shard loop:
//!
//! 1. **Intake** — adopt freshly accepted sockets the acceptor
//!    round-robined onto this shard; set them nonblocking.
//! 2. **Poll** — one `poll(2)` call ([`crate::mux`]) over the whole
//!    connection slab, timing out at the nearest parked batch's coalesce
//!    deadline (clamped to a few ms). A connection costs a slab slot and
//!    a pollfd, not a thread.
//! 3. **IO** — drain readable sockets into per-connection input buffers
//!    and parse frames. Query coordinates land **zero-copy**: the decoder
//!    borrows the coordinate bytes still in the receive buffer
//!    ([`crate::wire::decode_request_raw`]) and
//!    [`dataset::PointSet::append_from_f64`] streams them straight into
//!    the lane's pack-buffer layout — no intermediate `Vec<f64>`.
//! 4. **Service** — per lane, decide whether the parked batch should
//!    flush ([`flush_reason`]: model target `m ≥ m*`, the **oldest**
//!    parked job's half-budget deadline, the adaptive §2.6 wait-vs-save
//!    tradeoff, drain, or an injected fault) and run the kernel *inline*
//!    under `catch_unwind`. A panicking batch answers its live jobs
//!    `InternalError`, the workspace is discarded as poisoned and
//!    rebuilt, and the shard keeps serving.
//! 5. **Flush** — push buffered replies; partially written frames resume
//!    on the next `POLLOUT`.
//!
//! Parked batches are *state*, not blocked threads: the legacy design
//! parked a connection-handler thread per in-flight query, so a
//! deadline-half coalescing wait burned a thread and its wakeup latency
//! per query. Here a parked query is a row in the lane's pack buffer
//! plus a [`PendingJob`] entry, and the reply travels back through the
//! same connection slab slot (guarded by a generation counter, so a
//! reply for a vacated-and-reused slot is dropped, never misdelivered).

use crate::coalesce::{adaptive_should_flush, predict_batch_cost_into, ArrivalRate, FlushReason};
use crate::degrade::degraded_target;
use crate::metrics::{ShardStat, LANES, STATUS_LABELS};
use crate::mux::{poll_fds, raw_fd, PollFd, POLLIN, POLLOUT};
use crate::server::{ServeIndex, Shared};
use crate::trace::ReqTrace;
use crate::wire::{
    begin_response_frame, deadline_duration, decode_request_raw, finish_frame, PartialHeader,
    Precision, RawQuery, RawRequest, Status, MAX_FRAME, PARTIAL_FLAG_SPAN_ANNEX,
};
use crossbeam::channel::Receiver;
use dataset::{DistanceKind, PointSet};
use gsknn_core::{BatchScratch, FusedScalar, Gsknn, GsknnConfig, MachineParams, Model};
use gsknn_obs::chrome_trace_json;
use knn_select::{Neighbor, NeighborTable};
use rkdt::Forest;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// One admitted query parked in a lane, waiting for its batch to flush.
/// The coordinates already live in the lane's pack buffer
/// (`PendingBatch::queries`, rows `row0 .. row0 + m`); this is the
/// bookkeeping that travels back to the connection with the reply.
pub(crate) struct PendingJob {
    /// Connection slab slot to deliver the reply to.
    pub(crate) conn: usize,
    /// Slot generation at admission; a mismatch at delivery means the
    /// connection died and the slot was reissued — drop the reply.
    pub(crate) gen: u64,
    pub(crate) m: usize,
    pub(crate) k: usize,
    /// First row of this job's queries in the lane's pack buffer.
    pub(crate) row0: usize,
    /// Swept by the timeout pass: already answered, skip in writeback.
    pub(crate) dead: bool,
    /// Coalesce bound: flush a batch containing this job by here.
    pub(crate) flush_by: Instant,
    /// Full latency budget: a kernel start after this answers `Timeout`.
    pub(crate) timeout_at: Instant,
    /// An f64 request routed to the f32 lane under overload: answer with
    /// `Status::OkDegraded` so the client knows the precision dropped.
    pub(crate) degraded: bool,
    /// Lane index into [`LANES`] the client *requested* (latency
    /// histograms are labeled by requested lane even when degraded).
    pub(crate) lane: usize,
    /// Span recorder (zero-sized without the `obs` feature).
    pub(crate) trace: ReqTrace,
    pub(crate) trace_id: u64,
    /// Frame receive time, for the end-to-end latency histogram.
    pub(crate) t_recv: Instant,
}

/// A lane's parked batch: query points already in pack-buffer layout
/// plus the jobs they belong to.
pub(crate) struct PendingBatch<T: FusedScalar> {
    /// Parked query points, landed wire → pack layout by
    /// [`dataset::PointSet::append_from_f64`]. Cleared (capacity kept)
    /// after every flush.
    pub(crate) queries: PointSet<T>,
    pub(crate) jobs: Vec<PendingJob>,
    /// Query points held (sum of job `m`s).
    pub(crate) m: usize,
    /// Largest `k` among held jobs.
    pub(crate) k_max: usize,
    /// The **oldest** held job's coalesce deadline. Pushing a fresh job
    /// with a laxer budget must never extend an already-parked job's
    /// wait, so this is the min across jobs (regression:
    /// `staggered_enqueues_flush_on_the_oldest_budget` below).
    pub(crate) flush_by: Option<Instant>,
}

impl<T: FusedScalar> PendingBatch<T> {
    pub(crate) fn new(d: usize) -> Self {
        PendingBatch {
            queries: PointSet::from_vec(d, 0, Vec::new()),
            jobs: Vec::new(),
            m: 0,
            k_max: 0,
            flush_by: None,
        }
    }

    pub(crate) fn push(&mut self, job: PendingJob) {
        self.m += job.m;
        self.k_max = self.k_max.max(job.k);
        self.flush_by = Some(match self.flush_by {
            Some(t) => t.min(job.flush_by),
            None => job.flush_by,
        });
        self.jobs.push(job);
    }

    pub(crate) fn clear(&mut self) {
        self.queries.clear();
        self.jobs.clear();
        self.m = 0;
        self.k_max = 0;
        self.flush_by = None;
    }
}

/// What a flushed job is answered with. Borrows the lane's reusable
/// reply table, so delivery encodes straight into the connection's
/// output buffer without an owned intermediate.
pub(crate) enum Reply<'t, T: FusedScalar> {
    /// Neighbors for the job, already truncated to its own `k`.
    Table(&'t NeighborTable<T>, Status),
    /// A bodyless terminal status (`Timeout`).
    Empty(Status),
    /// A typed failure with a message body (`InternalError`).
    Message(Status, &'static str),
}

impl<T: FusedScalar> Reply<'_, T> {
    pub(crate) fn status(&self) -> Status {
        match self {
            Reply::Table(_, s) | Reply::Empty(s) | Reply::Message(s, _) => *s,
        }
    }
}

/// One precision lane owned by a shard: the reference view, the parked
/// batch, and every reusable piece of kernel workspace. Nothing here is
/// shared — the shard thread is the only toucher.
pub(crate) struct Lane<'a, T: FusedScalar> {
    /// Index into [`LANES`] (0 = f64, 1 = f32).
    lane: usize,
    refs: &'a PointSet<T>,
    forest: &'a Forest,
    n_trees: usize,
    leaf_size: usize,
    kind: DistanceKind,
    /// Model batch target `m*` for this lane.
    pub(crate) target: usize,
    model: Model,
    /// Use the adaptive (§2.6 wait-vs-save) flush policy instead of the
    /// fixed deadline-half wait.
    adaptive: bool,
    /// Single-leaf index (`n_trees <= 1` and the leaf covers the table):
    /// skip the forest and run the whole reference table through the
    /// reusable cross-kernel path — no per-call allocation.
    flat: bool,
    kernel_cfg: GsknnConfig,
    exec: Gsknn<T>,
    scratch: BatchScratch<T>,
    /// Flat-path result table, reused across batches.
    table: NeighborTable<T>,
    /// Per-job reply table, reused across jobs.
    reply_table: NeighborTable<T>,
    /// Row scratch for sentinel-filtered truncation to a job's `k`.
    row: Vec<Neighbor<T>>,
    /// Identity index maps for the flat path, grown once.
    q_idx: Vec<usize>,
    r_idx: Vec<usize>,
    /// Retained cost-term buffer for [`predict_batch_cost_into`].
    terms: Vec<(&'static str, f64)>,
    /// Timeout-sweep compaction target, reused (swapped with `queries`).
    compact: PointSet<T>,
    pub(crate) pending: PendingBatch<T>,
    pub(crate) arrival: ArrivalRate,
}

impl<'a, T: FusedScalar> Lane<'a, T> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        lane: usize,
        refs: &'a PointSet<T>,
        forest: &'a Forest,
        n_trees: usize,
        leaf_size: usize,
        kind: DistanceKind,
        target: usize,
        adaptive: bool,
    ) -> Self {
        let kernel_cfg = GsknnConfig::for_scalar::<T>();
        let d = refs.dim();
        Lane {
            lane,
            refs,
            forest,
            n_trees,
            leaf_size,
            kind,
            target,
            model: Model::new(MachineParams::ivy_bridge_1core().for_scalar::<T>()),
            adaptive,
            flat: n_trees <= 1 && leaf_size >= refs.len(),
            exec: Gsknn::new(kernel_cfg.clone()),
            kernel_cfg,
            scratch: BatchScratch::new(),
            table: NeighborTable::new(0, 1),
            reply_table: NeighborTable::new(0, 1),
            row: Vec::new(),
            q_idx: Vec::new(),
            r_idx: Vec::new(),
            terms: Vec::new(),
            compact: PointSet::from_vec(d, 0, Vec::new()),
            pending: PendingBatch::new(d),
            arrival: ArrivalRate::new(),
        }
    }

    /// Park an admitted query: stream its wire coordinates straight into
    /// the pack buffer (zero-copy decode path) and record the arrival
    /// for the adaptive coalescer's rate estimate.
    pub(crate) fn enqueue(&mut self, mut job: PendingJob, q: &RawQuery<'_>, now_s: f64) {
        let range = self.pending.queries.append_from_f64(q.m, q.coords());
        job.row0 = range.start;
        self.arrival.observe(q.m, now_s);
        self.pending.push(job);
    }

    /// The oldest parked job's coalesce deadline, if any job is parked.
    pub(crate) fn next_flush_by(&self) -> Option<Instant> {
        self.pending.flush_by
    }
}

/// Decide whether a lane's parked batch should flush right now, and why.
/// `None` means keep coalescing (or nothing is parked).
pub(crate) fn flush_reason<T: FusedScalar>(
    lane: &Lane<'_, T>,
    shared: &Shared,
    now: Instant,
) -> Option<FlushReason> {
    if lane.pending.jobs.is_empty() {
        return None;
    }
    // overload shrinks the coalescing bar for the whole batch
    let target = if shared.degraded.load(Ordering::SeqCst) {
        degraded_target(lane.target)
    } else {
        lane.target
    };
    if lane.pending.m >= target {
        return Some(FlushReason::Model);
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return Some(FlushReason::Drain);
    }
    // Injected premature flush: the batch goes out undersized,
    // exercising the deadline path without a slow clock.
    #[cfg(feature = "faults")]
    if gsknn_faults::armed(gsknn_faults::FaultPoint::CoalesceFlush) {
        return Some(FlushReason::Deadline);
    }
    let flush_by = lane
        .pending
        .flush_by
        .expect("non-empty batch has a deadline");
    if now >= flush_by {
        return Some(FlushReason::Deadline);
    }
    if lane.adaptive {
        let remaining_s = flush_by.duration_since(now).as_secs_f64();
        let leaf_n = lane.leaf_size.min(lane.refs.len());
        if adaptive_should_flush(
            &lane.model,
            lane.n_trees,
            leaf_n,
            lane.refs.dim(),
            lane.pending.k_max.max(1),
            lane.pending.m,
            target,
            lane.arrival.qps(),
            remaining_s,
        ) {
            // an under-target adaptive flush is a latency call, not the
            // model's efficient-regime trigger — count it as Deadline
            return Some(FlushReason::Deadline);
        }
    }
    None
}

/// Grow an identity index map (`0, 1, 2, ...`) to at least `n` entries.
fn grow_identity(v: &mut Vec<usize>, n: usize) {
    while v.len() < n {
        v.push(v.len());
    }
}

/// Flush a lane's parked batch through the kernel and hand every job's
/// reply to `sink` (delivery is the caller's — the server routes through
/// the connection slab, tests capture directly).
///
/// Mirrors the legacy worker's semantics exactly: a timeout sweep
/// answers budget-blown jobs `Timeout` without computing (survivor rows
/// are compacted so results stay bit-identical to a fresh pack), the
/// kernel runs under `catch_unwind`, and a panic answers live jobs
/// `InternalError` then discards the executor and scratch as poisoned —
/// the rebuilt workspace is provably clean.
pub(crate) fn flush_lane<T: FusedScalar>(
    lane: &mut Lane<'_, T>,
    shared: &Shared,
    stat: &ShardStat,
    reason: FlushReason,
    sink: &mut dyn FnMut(&mut PendingJob, Reply<'_, T>),
) {
    let start = Instant::now();
    let Lane {
        refs,
        forest,
        n_trees,
        leaf_size,
        kind,
        target,
        model,
        lane: lane_idx,
        kernel_cfg,
        exec,
        scratch,
        table,
        reply_table,
        row,
        q_idx,
        r_idx,
        terms,
        compact,
        pending,
        flat,
        ..
    } = lane;
    let refs: &PointSet<T> = refs;
    let forest: &Forest = forest;
    let (n_trees, leaf_size, kind, target, lane_idx, flat) =
        (*n_trees, *leaf_size, *kind, *target, *lane_idx, *flat);
    let dim = refs.dim();

    // sweep jobs whose full budget elapsed before the kernel started
    for job in pending.jobs.iter_mut() {
        if !job.dead && start > job.timeout_at {
            job.dead = true;
            shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            shared.metrics.release(job.m);
            job.trace.coalesce_end(start);
            sink(job, Reply::Empty(Status::Timeout));
        }
    }
    let m_live: usize = pending.jobs.iter().filter(|j| !j.dead).map(|j| j.m).sum();
    if m_live == 0 {
        shared.metrics.record_flush(reason, 0, 0.0, 0.0, &[]);
        shared
            .sampler
            .record_flush(reason, 0, &gsknn_core::obs::PhaseSet::default());
        pending.clear();
        return;
    }
    // Compact swept rows out of the pack buffer so live jobs' rows are
    // contiguous again. `append` folds sqnorms in the same order as
    // `append_from_f64`, so a compacted survivor computes bit-identical
    // results to an uncompacted one. Allocation here is fine — a
    // timeout sweep is not the steady state.
    if pending.jobs.iter().any(|j| j.dead) {
        compact.clear();
        for job in pending.jobs.iter_mut().filter(|j| !j.dead) {
            let src = &pending.queries.as_slice()[job.row0 * dim..(job.row0 + job.m) * dim];
            let range = compact.append(src);
            job.row0 = range.start;
        }
        std::mem::swap(&mut pending.queries, compact);
        compact.clear();
    }
    let k_batch = pending
        .jobs
        .iter()
        .filter(|j| !j.dead)
        .map(|j| j.k)
        .max()
        .unwrap_or(1);
    // drop phase times a previous (panicked) batch may have left behind,
    // so this batch's jobs only see their own kernel
    let _ = exec.take_phase_accum();
    let k_start = Instant::now();
    let queries = &pending.queries;
    let result = catch_unwind(AssertUnwindSafe(|| {
        gsknn_faults::fail_point!(gsknn_faults::FaultPoint::BatchExec);
        if flat {
            grow_identity(q_idx, m_live);
            grow_identity(r_idx, refs.len());
            table.reset(m_live, k_batch);
            exec.update_cross_reusing(
                queries,
                &q_idx[..m_live],
                refs,
                &r_idx[..refs.len()],
                kind,
                table,
                scratch,
            );
            None
        } else {
            Some(forest.query_with(exec, refs, queries, k_batch, kind))
        }
    }));
    let forest_table = match result {
        Ok(t) => t,
        Err(_) => {
            shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            stat.worker_panics.fetch_add(1, Ordering::Relaxed);
            for job in pending.jobs.iter_mut().filter(|j| !j.dead) {
                shared.metrics.release(job.m);
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                job.trace.coalesce_end(k_start);
                sink(
                    job,
                    Reply::Message(Status::InternalError, "worker panicked executing the batch"),
                );
            }
            // The panic may have left the executor's packing workspace
            // half-written — discard it as poisoned and rebuild. Counted
            // exactly like a legacy worker respawn.
            *exec = Gsknn::new(kernel_cfg.clone());
            *scratch = BatchScratch::new();
            shared
                .metrics
                .worker_respawns
                .fetch_add(1, Ordering::Relaxed);
            stat.worker_respawns.fetch_add(1, Ordering::Relaxed);
            pending.clear();
            return;
        }
    };
    let phases = exec.take_phase_accum();
    let measured = start.elapsed().as_secs_f64();
    let leaf_n = leaf_size.min(refs.len());
    let predicted = predict_batch_cost_into(model, n_trees, leaf_n, m_live, dim, k_batch, terms);
    shared
        .metrics
        .record_flush(reason, m_live, predicted, measured, terms);
    // roofline attribution + time-series feed (no-ops without `obs`);
    // backlog = query points still admitted beyond this batch
    let backlog = shared.metrics.in_flight().saturating_sub(m_live as u64) as usize;
    shared.metrics.roofline.record_batch(
        lane_idx,
        T::BYTES,
        model,
        n_trees,
        leaf_n,
        m_live,
        dim,
        k_batch,
        target,
        reason,
        measured,
        &phases,
        backlog,
    );
    stat.roofline.record_batch(
        lane_idx,
        T::BYTES,
        model,
        n_trees,
        leaf_n,
        m_live,
        dim,
        k_batch,
        target,
        reason,
        measured,
        &phases,
        backlog,
    );
    shared.sampler.record_flush(reason, m_live, &phases);
    stat.batches.fetch_add(1, Ordering::Relaxed);
    stat.queries.fetch_add(m_live as u64, Ordering::Relaxed);

    let full: &NeighborTable<T> = forest_table.as_ref().unwrap_or(table);
    for job in pending.jobs.iter_mut().filter(|j| !j.dead) {
        reply_table.reset(job.m, job.k);
        for r in 0..job.m {
            row.clear();
            row.extend(
                full.row(job.row0 + r)
                    .iter()
                    .filter(|nb| nb.idx != u32::MAX)
                    .take(job.k)
                    .copied(),
            );
            reply_table.set_row(r, row);
        }
        shared.metrics.release(job.m);
        let status = if job.degraded {
            shared
                .metrics
                .degraded
                .fetch_add(job.m as u64, Ordering::Relaxed);
            Status::OkDegraded
        } else {
            Status::Ok
        };
        let share = job.m as f64 / m_live as f64;
        job.trace.coalesce_end(k_start);
        job.trace.add_phases(k_start, &phases, share);
        sink(job, Reply::Table(reply_table, status));
    }
    pending.clear();
}

/// One multiplexed connection in a shard's slab.
struct Conn {
    stream: TcpStream,
    fd: i32,
    /// Slot-reuse guard; see [`PendingJob::gen`].
    gen: u64,
    inbuf: Vec<u8>,
    /// Bytes of `inbuf` already consumed by the frame parser.
    instart: usize,
    outbuf: Vec<u8>,
    /// Bytes of `outbuf` already written to the socket.
    outpos: usize,
    /// Queries parked in a lane on behalf of this connection. Frame
    /// parsing pauses while nonzero, keeping replies in request order
    /// (the wire protocol is strictly serial per connection).
    pending: u32,
    /// Close once `outbuf` drains (shutdown reply sent).
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Self {
        let fd = raw_fd(&stream);
        Conn {
            stream,
            fd,
            gen,
            inbuf: Vec::new(),
            instart: 0,
            outbuf: Vec::new(),
            outpos: 0,
            pending: 0,
            closing: false,
        }
    }

    /// Drain the socket into `inbuf`. Returns `false` when the peer is
    /// gone. Stops reading while a full frame's worth is already
    /// buffered, leaving backpressure to the kernel's socket buffer.
    fn fill(&mut self, rdbuf: &mut [u8]) -> bool {
        loop {
            if self.inbuf.len() - self.instart > MAX_FRAME + 8 {
                return true;
            }
            match self.stream.read(rdbuf) {
                Ok(0) => return false,
                Ok(n) => self.inbuf.extend_from_slice(&rdbuf[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Push buffered output. Returns `false` when the peer is gone.
    fn try_write(&mut self) -> bool {
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return false,
                Ok(n) => self.outpos += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        self.outbuf.clear();
        self.outpos = 0;
        true
    }
}

/// Everything a shard thread needs, borrowed for the server scope.
pub(crate) struct ShardCtx<'a> {
    pub id: usize,
    pub shared: &'a Shared,
    pub index: &'a ServeIndex,
    pub kind: DistanceKind,
    pub target64: usize,
    pub target32: usize,
    pub adaptive: bool,
    pub pin_core: Option<usize>,
    pub conn_rx: Receiver<TcpStream>,
}

/// A shard thread's whole life; see the module docs for the loop shape.
pub(crate) fn shard_main(ctx: ShardCtx<'_>) {
    if let Some(core) = ctx.pin_core {
        pin_to_core(core);
    }
    let shared = ctx.shared;
    let stat = &shared.metrics.shards[ctx.id];
    let index = ctx.index;
    let mut lane64 = Lane::<f64>::new(
        0,
        &index.refs64,
        &index.forest,
        index.n_trees,
        index.leaf_size,
        ctx.kind,
        ctx.target64,
        ctx.adaptive,
    );
    let mut lane32 = Lane::<f32>::new(
        1,
        &index.refs32,
        &index.forest,
        index.n_trees,
        index.leaf_size,
        ctx.kind,
        ctx.target32,
        ctx.adaptive,
    );
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen: u64 = 1;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_slots: Vec<usize> = Vec::new();
    let mut rdbuf = vec![0u8; 64 * 1024];
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // intake: the acceptor round-robins fresh connections over shards
        while let Ok(stream) = ctx.conn_rx.try_recv() {
            let _ = stream.set_nonblocking(true);
            let _ = stream.set_nodelay(true);
            let slot = free.pop().unwrap_or_else(|| {
                conns.push(None);
                conns.len() - 1
            });
            conns[slot] = Some(Conn::new(stream, next_gen));
            next_gen += 1;
            stat.conns.fetch_add(1, Ordering::Relaxed);
        }
        let draining = shared.shutdown.load(Ordering::SeqCst);
        if draining && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + Duration::from_secs(5));
        }
        // readiness poll over the whole connection slab
        fds.clear();
        fd_slots.clear();
        for (i, c) in conns.iter().enumerate() {
            if let Some(c) = c {
                let mut events = POLLIN;
                if c.outpos < c.outbuf.len() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(c.fd, events));
                fd_slots.push(i);
            }
        }
        let timeout = poll_timeout_ms(&lane64, &lane32, draining, Instant::now());
        if fds.is_empty() {
            std::thread::sleep(Duration::from_millis(timeout.max(1) as u64));
        } else if poll_fds(&mut fds, timeout).is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }
        for (pi, &slot) in fd_slots.iter().enumerate() {
            if !fds[pi].ready() {
                continue;
            }
            let mut dead = false;
            if let Some(conn) = conns[slot].as_mut() {
                if fds[pi].writable() {
                    dead = !conn.try_write();
                }
                if !dead && fds[pi].readable() {
                    dead = !conn.fill(&mut rdbuf);
                }
            }
            if !dead {
                dead = !parse_frames(slot, &mut conns, shared, &mut lane64, &mut lane32);
            }
            if dead {
                close_conn(&mut conns, &mut free, slot);
            }
        }
        // service both lanes: flush decisions + inline kernel execution
        if let Some(reason) = flush_reason(&lane64, shared, Instant::now()) {
            let mut sink = |job: &mut PendingJob, reply: Reply<'_, f64>| {
                deliver(&mut conns, shared, job, reply)
            };
            flush_lane(&mut lane64, shared, stat, reason, &mut sink);
        }
        if let Some(reason) = flush_reason(&lane32, shared, Instant::now()) {
            let mut sink = |job: &mut PendingJob, reply: Reply<'_, f32>| {
                deliver(&mut conns, shared, job, reply)
            };
            flush_lane(&mut lane32, shared, stat, reason, &mut sink);
        }
        // opportunistic writes + retire closing conns whose output drained
        for slot in 0..conns.len() {
            let mut dead = false;
            if let Some(conn) = conns[slot].as_mut() {
                if conn.outpos < conn.outbuf.len() {
                    dead = !conn.try_write();
                }
                if !dead && conn.closing && conn.outpos >= conn.outbuf.len() {
                    dead = true;
                }
            }
            if dead {
                close_conn(&mut conns, &mut free, slot);
            }
        }
        if draining {
            let parked = !lane64.pending.jobs.is_empty() || !lane32.pending.jobs.is_empty();
            let unsent = conns.iter().flatten().any(|c| c.outpos < c.outbuf.len());
            let past = drain_deadline.is_some_and(|t| Instant::now() >= t);
            if (!parked && !unsent) || past {
                break;
            }
        }
    }
}

/// Next poll timeout: wake at the nearest parked batch's coalesce
/// deadline (clamped to [1, 5] ms so adaptive decisions and drain checks
/// stay responsive), 5 ms when idle, 1 ms while draining.
fn poll_timeout_ms(
    lane64: &Lane<'_, f64>,
    lane32: &Lane<'_, f32>,
    draining: bool,
    now: Instant,
) -> i32 {
    if draining {
        return 1;
    }
    let next = match (lane64.next_flush_by(), lane32.next_flush_by()) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    match next {
        None => 5,
        Some(t) if t <= now => 0,
        Some(t) => ((t.duration_since(now).as_micros() / 1000) as i32 + 1).clamp(1, 5),
    }
}

fn close_conn(conns: &mut [Option<Conn>], free: &mut Vec<usize>, slot: usize) {
    if conns[slot].take().is_some() {
        free.push(slot);
    }
}

/// Deliver a flushed job's reply through the connection slab: encode the
/// response frame straight into the connection's output buffer. A
/// generation mismatch means the connection died while the job was
/// parked (its admission slot was already released by the flush path) —
/// the reply is dropped, never misdelivered.
fn deliver<T: FusedScalar>(
    conns: &mut [Option<Conn>],
    shared: &Shared,
    job: &mut PendingJob,
    reply: Reply<'_, T>,
) {
    let conn = match conns.get_mut(job.conn) {
        Some(Some(c)) if c.gen == job.gen => c,
        _ => return,
    };
    conn.pending = conn.pending.saturating_sub(1);
    let status = reply.status();
    // In partition mode every table reply ships as a GSPK partial: the
    // router needs the partition id/epoch to merge and the ids must be
    // global. Encoding applies the row offset in-place — no extra pass,
    // no allocation. A degraded lane answer keeps its signal in the
    // envelope's flags bit so `OkDegraded` semantics survive the wrap.
    let wire_status = match (&reply, shared.partition) {
        (Reply::Table(..), Some(_)) => Status::PartialTopK,
        _ => status,
    };
    let t_reply = Instant::now();
    let mark = begin_response_frame(&mut conn.outbuf, wire_status, job.trace_id);
    match reply {
        Reply::Table(t, _) => match shared.partition {
            Some(p) => {
                // Ship the backend's span fragments inline when tracing
                // is live: the router stitches them into its own span
                // tree without a second round trip. The annex carries
                // everything up to this point (decode, coalesce wait,
                // kernel phases); the reply write itself falls inside
                // the router's bracket.
                let annex = job.trace.is_active();
                PartialHeader {
                    partition_id: p.id as u32,
                    epoch: p.epoch,
                    contributed: 1,
                    total: p.total,
                    flags: (status == Status::OkDegraded) as u8
                        | if annex { PARTIAL_FLAG_SPAN_ANNEX } else { 0 },
                    replica_id: p.replica,
                    replicas: p.replicas,
                }
                .encode_into(&mut conn.outbuf);
                t.encode_into_with_offset(&mut conn.outbuf, p.offset);
                if annex {
                    job.trace.encode_annex(&mut conn.outbuf);
                }
            }
            None => t.encode_into(&mut conn.outbuf),
        },
        Reply::Empty(_) => {}
        Reply::Message(_, msg) => conn.outbuf.extend_from_slice(msg.as_bytes()),
    }
    finish_frame(&mut conn.outbuf, mark);
    let t_done = Instant::now();
    let total = t_done - job.t_recv;
    shared
        .metrics
        .record_latency(job.lane, status, total, job.trace_id);
    let mut trace = std::mem::take(&mut job.trace);
    trace.add_span("reply write", t_reply, t_done);
    finish_query_trace(shared, trace, job.trace_id, job.lane, status, total);
}

/// Parse and handle every complete frame buffered on a connection.
/// Returns `false` when the connection must be closed (oversized frame).
fn parse_frames(
    slot: usize,
    conns: &mut [Option<Conn>],
    shared: &Shared,
    lane64: &mut Lane<'_, f64>,
    lane32: &mut Lane<'_, f32>,
) -> bool {
    loop {
        let conn = match conns[slot].as_mut() {
            Some(c) => c,
            None => return false,
        };
        if conn.closing || conn.pending > 0 {
            break;
        }
        let avail = conn.inbuf.len() - conn.instart;
        if avail < 4 {
            break;
        }
        let len = u32::from_le_bytes(
            conn.inbuf[conn.instart..conn.instart + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        if len > MAX_FRAME {
            return false;
        }
        if avail < 4 + len {
            break;
        }
        let range = conn.instart + 4..conn.instart + 4 + len;
        conn.instart += 4 + len;
        handle_frame(conn, slot, range, shared, lane64, lane32);
    }
    // reclaim consumed prefix; full consumption is the common case and
    // keeps the buffer allocation-free at steady state
    if let Some(conn) = conns[slot].as_mut() {
        if conn.instart == conn.inbuf.len() {
            conn.inbuf.clear();
            conn.instart = 0;
        } else if conn.instart >= 4096 {
            conn.inbuf.copy_within(conn.instart.., 0);
            let keep = conn.inbuf.len() - conn.instart;
            conn.inbuf.truncate(keep);
            conn.instart = 0;
        }
    }
    true
}

/// Encode one complete response frame into an output buffer.
fn reply_frame(outbuf: &mut Vec<u8>, status: Status, trace_id: u64, body: &[u8]) {
    let mark = begin_response_frame(outbuf, status, trace_id);
    outbuf.extend_from_slice(body);
    finish_frame(outbuf, mark);
}

/// Decode and dispatch one frame. Control ops answer immediately into
/// the connection's output buffer; queries validate, admit, and park in
/// a lane.
fn handle_frame(
    conn: &mut Conn,
    slot: usize,
    range: Range<usize>,
    shared: &Shared,
    lane64: &mut Lane<'_, f64>,
    lane32: &mut Lane<'_, f32>,
) {
    // Injected frame corruption: flip a byte of the received payload so
    // the hardened decoder (not the network) is what's under test. The
    // connection must answer a typed error and keep serving.
    #[cfg(feature = "faults")]
    if gsknn_faults::armed(gsknn_faults::FaultPoint::FrameDecode) && !range.is_empty() {
        let mid = range.start + range.len() / 2;
        conn.inbuf[mid] ^= 0xff;
    }
    let t_recv = Instant::now();
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let Conn {
        inbuf,
        outbuf,
        pending,
        gen,
        closing,
        ..
    } = conn;
    let decoded = decode_request_raw(&inbuf[range]);
    let t_dec = Instant::now();
    match decoded {
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            reply_frame(outbuf, Status::Error, 0, e.to_string().as_bytes());
        }
        Ok(RawRequest::Ping) => reply_frame(outbuf, Status::Ok, 0, &[]),
        Ok(RawRequest::Stats) => {
            let body = shared.report().to_json().to_string();
            reply_frame(outbuf, Status::Ok, 0, body.as_bytes());
        }
        Ok(RawRequest::Metrics) => {
            let body = shared.report().render_prometheus();
            reply_frame(outbuf, Status::Ok, 0, body.as_bytes());
        }
        Ok(RawRequest::Traces) => {
            let body = chrome_trace_json(&shared.traces.snapshot()).to_string();
            reply_frame(outbuf, Status::Ok, 0, body.as_bytes());
        }
        Ok(RawRequest::TimeSeries) => {
            let body = shared.sampler.to_json().to_string();
            reply_frame(outbuf, Status::Ok, 0, body.as_bytes());
        }
        Ok(RawRequest::TraceFetch(id)) => {
            // Raw GSTA annex bytes for a recently finished request, or an
            // empty body when the id has aged out of the fragment ring
            // (or tracing is compiled out).
            let body = shared.frags.get(id).unwrap_or_default();
            reply_frame(outbuf, Status::Ok, id, &body);
        }
        Ok(RawRequest::Shutdown) => {
            reply_frame(outbuf, Status::Ok, 0, &[]);
            shared.shutdown.store(true, Ordering::SeqCst);
            *closing = true;
        }
        Ok(RawRequest::Query(q)) => {
            handle_query(
                q, slot, *gen, outbuf, pending, shared, lane64, lane32, t_recv, t_dec,
            );
        }
    }
}

/// Validate, admit, and park one query — the legacy validation order and
/// messages, verbatim (the e2e suite asserts them).
#[allow(clippy::too_many_arguments)]
fn handle_query(
    q: RawQuery<'_>,
    slot: usize,
    gen: u64,
    outbuf: &mut Vec<u8>,
    conn_pending: &mut u32,
    shared: &Shared,
    lane64: &mut Lane<'_, f64>,
    lane32: &mut Lane<'_, f32>,
    t_recv: Instant,
    t_dec: Instant,
) {
    // histograms are labeled by the *requested* lane; degraded f64
    // routing shows up as status ok_degraded, not lane f32
    let lane_idx = match q.precision {
        Precision::F64 => 0,
        Precision::F32 => 1,
    };
    let trace_id = if q.trace_id != 0 {
        q.trace_id
    } else {
        shared.next_trace.fetch_add(1, Ordering::Relaxed)
    };
    shared.sampler.record_arrival(q.m);
    shared.sampler.observe_depth(shared.metrics.in_flight());
    let mut trace = ReqTrace::start(shared.epoch, t_recv);
    trace.set_shape(q.m, q.k);
    trace.add_span("decode", t_recv, t_dec);
    let t_val = Instant::now();
    if shared.shutdown.load(Ordering::SeqCst) {
        return reply_query_now(
            outbuf,
            shared,
            lane_idx,
            trace_id,
            trace,
            Status::ShuttingDown,
            "",
            t_recv,
        );
    }
    if q.dim != shared.dim {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        let msg = format!(
            "dimension mismatch: index is {}-d, request is {}-d",
            shared.dim, q.dim
        );
        return reply_query_now(
            outbuf,
            shared,
            lane_idx,
            trace_id,
            trace,
            Status::BadRequest,
            &msg,
            t_recv,
        );
    }
    if q.m == 0 || q.k == 0 || q.k > shared.k_max {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        let msg = format!(
            "need m >= 1 and 1 <= k <= {} (got m = {}, k = {})",
            shared.k_max, q.m, q.k
        );
        return reply_query_now(
            outbuf,
            shared,
            lane_idx,
            trace_id,
            trace,
            Status::BadRequest,
            &msg,
            t_recv,
        );
    }
    if q.k > shared.n_refs {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        let msg = format!(
            "k = {} exceeds the index's {} reference points",
            q.k, shared.n_refs
        );
        return reply_query_now(
            outbuf,
            shared,
            lane_idx,
            trace_id,
            trace,
            Status::BadRequest,
            &msg,
            t_recv,
        );
    }
    if q.coords().any(|v| !v.is_finite()) {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        return reply_query_now(
            outbuf,
            shared,
            lane_idx,
            trace_id,
            trace,
            Status::BadRequest,
            "non-finite coordinate in query",
            t_recv,
        );
    }
    // Under overload (and opt-in), answer f64 traffic from the f32 lane:
    // same neighbor ids at reduced distance precision, flagged
    // `OkDegraded` on the wire.
    let degraded = shared.degrade_precision
        && q.precision == Precision::F64
        && shared.degraded.load(Ordering::SeqCst);
    // Anything narrowed to f32 — native f32 requests or degraded f64
    // routing — must stay finite at that width too, or the lane's pack
    // buffer would panic on an overflow-to-inf value.
    if (degraded || q.precision == Precision::F32) && q.coords().any(|v| !(v as f32).is_finite()) {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        return reply_query_now(
            outbuf,
            shared,
            lane_idx,
            trace_id,
            trace,
            Status::BadRequest,
            "coordinate overflows f32 (the serving precision)",
            t_recv,
        );
    }
    if !shared.metrics.admit(q.m, shared.queue_cap) {
        shared.metrics.busy.fetch_add(1, Ordering::Relaxed);
        return reply_query_now(
            outbuf,
            shared,
            lane_idx,
            trace_id,
            trace,
            Status::Busy,
            "",
            t_recv,
        );
    }
    let now = Instant::now();
    trace.add_span("admission", t_val, now);
    trace.mark_enqueued();
    let budget = deadline_duration(q.deadline_ms);
    let job = PendingJob {
        conn: slot,
        gen,
        m: q.m,
        k: q.k,
        row0: 0,
        dead: false,
        flush_by: now + budget / 2,
        timeout_at: now + budget,
        degraded,
        lane: lane_idx,
        trace,
        trace_id,
        t_recv,
    };
    let now_s = now.duration_since(shared.epoch).as_secs_f64();
    if degraded || q.precision == Precision::F32 {
        lane32.enqueue(job, &q, now_s);
    } else {
        lane64.enqueue(job, &q, now_s);
    }
    *conn_pending += 1;
}

/// Answer a query immediately (validation failure, busy, shutting down):
/// encode the frame, record latency, finish the trace.
#[allow(clippy::too_many_arguments)]
fn reply_query_now(
    outbuf: &mut Vec<u8>,
    shared: &Shared,
    lane_idx: usize,
    trace_id: u64,
    mut trace: ReqTrace,
    status: Status,
    msg: &str,
    t_recv: Instant,
) {
    let t_reply = Instant::now();
    reply_frame(outbuf, status, trace_id, msg.as_bytes());
    let t_done = Instant::now();
    let total = t_done - t_recv;
    shared
        .metrics
        .record_latency(lane_idx, status, total, trace_id);
    trace.add_span("reply write", t_reply, t_done);
    finish_query_trace(shared, trace, trace_id, lane_idx, status, total);
}

/// Close out a finished query's trace: slow-query log line (same format
/// as the legacy connection handler) and the slowest-traces ring.
fn finish_query_trace(
    shared: &Shared,
    trace: ReqTrace,
    trace_id: u64,
    lane_idx: usize,
    status: Status,
    total: Duration,
) {
    let lane = LANES[lane_idx];
    let status_label = STATUS_LABELS[status as usize];
    let slow = shared
        .slow_query_ms
        .is_some_and(|ms| total >= Duration::from_millis(ms));
    match trace.finish(trace_id, lane, status_label, total) {
        Some(t) => {
            // Deposit the complete fragment (including "reply write") in
            // the ring so a router's later `TraceFetch` can still pull
            // this backend's side of the timeline.
            #[cfg(feature = "obs")]
            shared
                .frags
                .put(trace_id, crate::trace::annex_from_trace(&t));
            if slow {
                let spans: Vec<String> = t
                    .spans
                    .iter()
                    .map(|s| format!("{} {:.1}us", s.name, s.dur_us))
                    .collect();
                eprintln!(
                    "gsknn-serve: slow query trace_id={:016x} lane={} status={} \
                     m={} k={} total={:.1}us [{}]",
                    t.trace_id,
                    t.lane,
                    t.status,
                    t.m,
                    t.k,
                    t.total_us,
                    spans.join(", ")
                );
            }
            shared.traces.offer(t);
        }
        None => {
            if slow {
                eprintln!(
                    "gsknn-serve: slow query trace_id={:016x} lane={lane} \
                     status={status_label} total={:.1}us (tracing compiled out)",
                    trace_id,
                    total.as_secs_f64() * 1e6
                );
            }
        }
    }
}

/// Pin the calling thread to `core` (best effort; linux only). Raw
/// `sched_setaffinity` binding, the same no-libc discipline as
/// [`crate::mux::poll_fds`] and the server's SIGTERM handler.
fn pin_to_core(core: usize) {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct CpuSet {
            bits: [u64; 16],
        }
        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
        }
        let mut set = CpuSet { bits: [0; 16] };
        let idx = core % 1024;
        set.bits[idx / 64] = 1u64 << (idx % 64);
        unsafe {
            // pid 0 = the calling thread; failure just means no pinning
            let _ = sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set);
        }
    }
    #[cfg(not(target_os = "linux"))]
    let _ = core;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, Shared};
    use proptest::prelude::*;
    use std::sync::Mutex;

    /// Fault points are process-global; flush-running tests serialize on
    /// this so an armed `BatchExec` injection never leaks into a
    /// neighboring test's kernel call.
    static FLUSH_TESTS: Mutex<()> = Mutex::new(());

    fn lock_flushes() -> std::sync::MutexGuard<'static, ()> {
        FLUSH_TESTS.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn test_shared(dim: usize, n_refs: usize) -> Shared {
        Shared::new(
            &ServerConfig::default(),
            dim,
            n_refs,
            vec![("f64".to_string(), 64), ("f32".to_string(), 64)],
            1,
        )
    }

    fn test_job(m: usize, k: usize, flush_by: Instant, timeout_at: Instant) -> PendingJob {
        PendingJob {
            conn: 0,
            gen: 0,
            m,
            k,
            row0: 0,
            dead: false,
            flush_by,
            timeout_at,
            degraded: false,
            lane: 0,
            trace: ReqTrace::off(),
            trace_id: 0,
            t_recv: Instant::now(),
        }
    }

    fn coord_bytes(coords: &[f64]) -> Vec<u8> {
        coords.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn raw_query(bytes: &[u8], m: usize, d: usize, k: usize) -> RawQuery<'_> {
        RawQuery {
            precision: Precision::F64,
            k,
            deadline_ms: 100,
            trace_id: 0,
            dim: d,
            m,
            coord_bytes: bytes,
        }
    }

    /// A deterministic coordinate stream whose values carry at most 24
    /// significant bits, so f64 → f32 narrowing is lossless and
    /// fresh-vs-recycled comparisons are meaningful at the bit level in
    /// both precisions.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn coord(state: &mut u64) -> f64 {
        let bits = splitmix(state) >> 40; // 24 bits
        (bits as f64 / (1u64 << 24) as f64) * 2.0 - 1.0
    }

    fn gen_refs(n: usize, d: usize, state: &mut u64) -> PointSet<f64> {
        let data: Vec<f64> = (0..n * d).map(|_| coord(state)).collect();
        PointSet::from_vec(d, n, data)
    }

    #[test]
    fn oldest_job_owns_the_batch_deadline() {
        let now = Instant::now();
        let mut batch = PendingBatch::<f64>::new(4);
        batch.push(test_job(
            1,
            2,
            now + Duration::from_millis(50),
            now + Duration::from_secs(1),
        ));
        assert_eq!(batch.flush_by, Some(now + Duration::from_millis(50)));
        // a laxer later job must not extend the parked one's wait
        batch.push(test_job(
            1,
            2,
            now + Duration::from_secs(5),
            now + Duration::from_secs(10),
        ));
        assert_eq!(batch.flush_by, Some(now + Duration::from_millis(50)));
        // a tighter later job pulls the deadline in
        batch.push(test_job(
            1,
            2,
            now + Duration::from_millis(5),
            now + Duration::from_secs(1),
        ));
        assert_eq!(batch.flush_by, Some(now + Duration::from_millis(5)));
        assert_eq!(batch.m, 3);
        batch.clear();
        assert_eq!(batch.flush_by, None);
        assert_eq!(batch.m, 0);
    }

    #[test]
    fn staggered_enqueues_flush_on_the_oldest_budget() {
        let mut state = 7u64;
        let refs = gen_refs(32, 3, &mut state);
        let forest = Forest::build(&refs, 1, 32, 7);
        let shared = test_shared(3, 32);
        let mut lane = Lane::<f64>::new(0, &refs, &forest, 1, 32, DistanceKind::SqL2, 64, false);

        let now = Instant::now();
        let coords: Vec<f64> = (0..3).map(|_| coord(&mut state)).collect();
        let bytes = coord_bytes(&coords);
        let q = raw_query(&bytes, 1, 3, 2);
        // the *young* job (long budget) arrives first, the *old* one
        // (budget already spent) second — the regression this guards is
        // a coalescer that tracked only the first or the latest arrival
        lane.enqueue(
            test_job(
                1,
                2,
                now + Duration::from_secs(30),
                now + Duration::from_secs(60),
            ),
            &q,
            0.0,
        );
        assert_eq!(
            flush_reason(&lane, &shared, now),
            None,
            "a lone fresh job keeps coalescing"
        );
        lane.enqueue(
            test_job(1, 2, now, now + Duration::from_secs(60)),
            &q,
            0.001,
        );
        assert_eq!(
            flush_reason(&lane, &shared, now),
            Some(FlushReason::Deadline),
            "the oldest queued request's exhausted budget must force the flush"
        );
    }

    #[test]
    fn flush_answers_each_job_with_its_own_k() {
        let _guard = lock_flushes();
        let mut state = 11u64;
        let n = 40;
        let d = 4;
        let refs = gen_refs(n, d, &mut state);
        let forest = Forest::build(&refs, 1, n, 7);
        let shared = test_shared(d, n);
        let stat = ShardStat::default();
        let mut lane = Lane::<f64>::new(0, &refs, &forest, 1, n, DistanceKind::SqL2, 64, false);

        let now = Instant::now();
        let far = now + Duration::from_secs(60);
        let coords_a: Vec<f64> = (0..2 * d).map(|_| coord(&mut state)).collect();
        let coords_b: Vec<f64> = (0..d).map(|_| coord(&mut state)).collect();
        let bytes_a = coord_bytes(&coords_a);
        let bytes_b = coord_bytes(&coords_b);
        lane.enqueue(test_job(2, 2, now, far), &raw_query(&bytes_a, 2, d, 2), 0.0);
        lane.enqueue(
            test_job(1, 4, now, far),
            &raw_query(&bytes_b, 1, d, 4),
            0.001,
        );
        assert!(shared.metrics.admit(3, 1024));

        // (job m, job k, status, neighbor rows) per answered job
        type Recorded = (usize, usize, Status, Vec<Vec<Neighbor<f64>>>);
        let mut replies: Vec<Recorded> = Vec::new();
        let mut sink = |job: &mut PendingJob, reply: Reply<'_, f64>| match reply {
            Reply::Table(t, s) => {
                let rows: Vec<Vec<Neighbor<f64>>> =
                    (0..t.len()).map(|r| t.row(r).to_vec()).collect();
                replies.push((job.m, t.k(), s, rows));
            }
            other => panic!("unexpected reply status {:?}", other.status()),
        };
        flush_lane(&mut lane, &shared, &stat, FlushReason::Model, &mut sink);

        assert_eq!(replies.len(), 2);
        assert_eq!(
            (replies[0].0, replies[0].1),
            (2, 2),
            "job A: m=2, its own k=2"
        );
        assert_eq!(
            (replies[1].0, replies[1].1),
            (1, 4),
            "job B: m=1, its own k=4"
        );
        assert!(replies.iter().all(|r| r.2 == Status::Ok));
        assert_eq!(shared.metrics.in_flight(), 0, "admission released");

        // reference: the same three queries through a fresh workspace at
        // the batch k, truncated per job
        let mut fresh = Gsknn::<f64>::new(GsknnConfig::for_scalar::<f64>());
        let mut fresh_scratch = BatchScratch::new();
        let mut fresh_table = NeighborTable::<f64>::new(3, 4);
        let mut queries = PointSet::<f64>::from_vec(d, 0, Vec::new());
        queries.append_from_f64(2, coords_a.iter().copied());
        queries.append_from_f64(1, coords_b.iter().copied());
        let q_idx: Vec<usize> = (0..3).collect();
        let r_idx: Vec<usize> = (0..n).collect();
        fresh.update_cross_reusing(
            &queries,
            &q_idx,
            &refs,
            &r_idx,
            DistanceKind::SqL2,
            &mut fresh_table,
            &mut fresh_scratch,
        );
        for (r, row) in replies[0].3.iter().enumerate() {
            assert_eq!(row.as_slice(), &fresh_table.row(r)[..2]);
        }
        assert_eq!(replies[1].3[0].as_slice(), &fresh_table.row(2)[..4]);
    }

    #[test]
    fn timeout_sweep_compacts_and_answers_survivors_identically() {
        let _guard = lock_flushes();
        let mut state = 13u64;
        let n = 36;
        let d = 5;
        let refs = gen_refs(n, d, &mut state);
        let forest = Forest::build(&refs, 1, n, 7);
        let shared = test_shared(d, n);
        let stat = ShardStat::default();
        let mut lane = Lane::<f64>::new(0, &refs, &forest, 1, n, DistanceKind::SqL2, 64, false);

        let now = Instant::now();
        let coords_dead: Vec<f64> = (0..2 * d).map(|_| coord(&mut state)).collect();
        let coords_live: Vec<f64> = (0..d).map(|_| coord(&mut state)).collect();
        let bytes_dead = coord_bytes(&coords_dead);
        let bytes_live = coord_bytes(&coords_live);
        // job A's full budget is already spent; job B is fresh
        lane.enqueue(
            test_job(2, 3, now, now),
            &raw_query(&bytes_dead, 2, d, 3),
            0.0,
        );
        lane.enqueue(
            test_job(1, 3, now, now + Duration::from_secs(60)),
            &raw_query(&bytes_live, 1, d, 3),
            0.001,
        );
        assert!(shared.metrics.admit(3, 1024));

        let mut statuses = Vec::new();
        let mut live_rows: Vec<Vec<Neighbor<f64>>> = Vec::new();
        let mut sink = |_job: &mut PendingJob, reply: Reply<'_, f64>| {
            statuses.push(reply.status());
            if let Reply::Table(t, _) = reply {
                live_rows = (0..t.len()).map(|r| t.row(r).to_vec()).collect();
            }
        };
        flush_lane(&mut lane, &shared, &stat, FlushReason::Deadline, &mut sink);

        assert_eq!(statuses, vec![Status::Timeout, Status::Ok]);
        assert_eq!(shared.metrics.timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(shared.metrics.in_flight(), 0);

        // the survivor, compacted to row 0, must match a fresh lone run
        let mut fresh = Gsknn::<f64>::new(GsknnConfig::for_scalar::<f64>());
        let mut fresh_scratch = BatchScratch::new();
        let mut fresh_table = NeighborTable::<f64>::new(1, 3);
        let mut queries = PointSet::<f64>::from_vec(d, 0, Vec::new());
        queries.append_from_f64(1, coords_live.iter().copied());
        let q_idx = [0usize];
        let r_idx: Vec<usize> = (0..n).collect();
        fresh.update_cross_reusing(
            &queries,
            &q_idx,
            &refs,
            &r_idx,
            DistanceKind::SqL2,
            &mut fresh_table,
            &mut fresh_scratch,
        );
        assert_eq!(live_rows.len(), 1);
        assert_eq!(live_rows[0].as_slice(), fresh_table.row(0));
    }

    /// The tentpole's core guarantee: with observability compiled out, a
    /// steady-state query cycle — zero-copy decode into the pack buffer,
    /// admission, flush through the reusable workspace, reply encode —
    /// performs **zero** heap allocations. Counted by the crate's
    /// test-only global allocator ([`crate::test_alloc`]).
    #[cfg(not(feature = "obs"))]
    #[test]
    fn steady_state_query_cycle_performs_no_heap_allocation() {
        let _guard = lock_flushes();
        let mut state = 17u64;
        let n = 256;
        let d = 8;
        let refs = gen_refs(n, d, &mut state);
        let forest = Forest::build(&refs, 1, n, 7);
        let shared = test_shared(d, n);
        let stat = ShardStat::default();
        let mut lane = Lane::<f64>::new(0, &refs, &forest, 1, n, DistanceKind::SqL2, 4, false);

        let coords: Vec<f64> = (0..2 * d).map(|_| coord(&mut state)).collect();
        let bytes = coord_bytes(&coords);
        let mut out: Vec<u8> = Vec::new();
        let mut cycle = |out: &mut Vec<u8>| {
            let q = raw_query(&bytes, 2, d, 4);
            assert!(shared.metrics.admit(2, 1024));
            let now = Instant::now();
            lane.enqueue(test_job(2, 4, now, now + Duration::from_secs(1)), &q, 0.0);
            let mut sink = |job: &mut PendingJob, reply: Reply<'_, f64>| {
                out.clear();
                let mark = begin_response_frame(out, reply.status(), job.trace_id);
                if let Reply::Table(t, _) = reply {
                    t.encode_into(out);
                }
                finish_frame(out, mark);
            };
            flush_lane(&mut lane, &shared, &stat, FlushReason::Deadline, &mut sink);
        };
        for _ in 0..50 {
            cycle(&mut out); // warmup: buffers grow to their steady size
        }
        let before = crate::test_alloc::alloc_count();
        for _ in 0..100 {
            cycle(&mut out);
        }
        let after = crate::test_alloc::alloc_count();
        assert_eq!(
            after - before,
            0,
            "steady-state query cycle must not allocate (obs off)"
        );
    }

    /// Satellite regression: the 1000th query through a recycled shard
    /// workspace is bit-identical to the same query through a fresh
    /// workspace — for both precisions, with injected `BatchExec` panics
    /// interleaved when the `faults` feature is on (the workspace is
    /// poisoned-and-rebuilt on panic, and must come back clean).
    fn recycled_matches_fresh<T: FusedScalar>(seed: u64) {
        let _guard = lock_flushes();
        let n = 48;
        let d = 5;
        let k = 3;
        let mut state = seed | 1;
        let refs64 = gen_refs(n, d, &mut state);
        let refs: PointSet<T> = refs64.cast();
        let forest = Forest::build(&refs64, 1, n, 7);
        let shared = test_shared(d, n);
        let stat = ShardStat::default();
        let mut lane = Lane::<T>::new(0, &refs, &forest, 1, n, DistanceKind::SqL2, 64, false);

        for i in 0..1000usize {
            let m = 1 + (splitmix(&mut state) % 3) as usize;
            let coords: Vec<f64> = (0..m * d).map(|_| coord(&mut state)).collect();
            let bytes = coord_bytes(&coords);
            let q = raw_query(&bytes, m, d, k);
            #[cfg(feature = "faults")]
            let inject = i % 97 == 13;
            #[cfg(not(feature = "faults"))]
            let inject = false;
            #[cfg(feature = "faults")]
            if inject {
                gsknn_faults::configure(gsknn_faults::FaultPlan::new(1).with(
                    gsknn_faults::FaultPoint::BatchExec,
                    gsknn_faults::Mode::Nth(1),
                ));
            }
            assert!(shared.metrics.admit(m, 1 << 20));
            let now = Instant::now();
            lane.enqueue(test_job(m, k, now, now + Duration::from_secs(5)), &q, 0.0);
            let mut reply_bytes: Option<Vec<u8>> = None;
            let mut got_internal = false;
            {
                let mut sink = |_job: &mut PendingJob, reply: Reply<'_, T>| match reply {
                    Reply::Table(t, Status::Ok) => {
                        let mut b = Vec::new();
                        t.encode_into(&mut b);
                        reply_bytes = Some(b);
                    }
                    Reply::Message(Status::InternalError, _) => got_internal = true,
                    other => panic!("unexpected reply status {:?}", other.status()),
                };
                flush_lane(&mut lane, &shared, &stat, FlushReason::Deadline, &mut sink);
            }
            if inject {
                #[cfg(feature = "faults")]
                gsknn_faults::clear();
                assert!(
                    got_internal,
                    "injected batch panic must answer InternalError"
                );
                continue;
            }
            let _ = got_internal;
            let reply_bytes = reply_bytes.expect("live batch answers Ok");
            if i % 250 == 0 || i == 999 {
                // fresh-workspace reference: same coords through a
                // brand-new kernel, table, and scratch
                let mut fresh = Gsknn::<T>::new(GsknnConfig::for_scalar::<T>());
                let mut fresh_scratch = BatchScratch::new();
                let mut fresh_table = NeighborTable::<T>::new(m, k);
                let mut queries = PointSet::<T>::from_vec(d, 0, Vec::new());
                queries.append_from_f64(m, coords.iter().copied());
                let q_idx: Vec<usize> = (0..m).collect();
                let r_idx: Vec<usize> = (0..n).collect();
                fresh.update_cross_reusing(
                    &queries,
                    &q_idx,
                    &refs,
                    &r_idx,
                    DistanceKind::SqL2,
                    &mut fresh_table,
                    &mut fresh_scratch,
                );
                let mut fresh_bytes = Vec::new();
                fresh_table.encode_into(&mut fresh_bytes);
                assert_eq!(
                    reply_bytes, fresh_bytes,
                    "cycle {i}: recycled workspace diverged from fresh"
                );
            }
        }
        assert_eq!(shared.metrics.in_flight(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]

        #[test]
        fn recycled_workspace_matches_fresh_f64(seed in 0u64..u64::MAX) {
            recycled_matches_fresh::<f64>(seed);
        }

        #[test]
        fn recycled_workspace_matches_fresh_f32(seed in 0u64..u64::MAX) {
            recycled_matches_fresh::<f32>(seed);
        }
    }
}
