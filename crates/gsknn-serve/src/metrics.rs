//! Shared server counters: lock-free atomics on the request path,
//! a mutex only on the per-batch cost sums (a few updates per flush).
//! Snapshots render as a [`gsknn_obs::ServeReport`].

use crate::coalesce::FlushReason;
use crate::sampler::RooflineRecorder;
use crate::wire::Status;
#[cfg(feature = "obs")]
use gsknn_obs::hist::Exemplars;
use gsknn_obs::hist::LatencyHistogram;
use gsknn_obs::serve::{
    batch_bucket, FlushCounts, LatencyRow, ServeReport, ShardRow, BATCH_BUCKETS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Lane labels, indexed by lane (0 = f64, 1 = f32).
pub const LANES: [&str; 2] = ["f64", "f32"];

/// Terminal-status labels, indexed by the wire status discriminant.
pub const STATUS_LABELS: [&str; 9] = [
    "ok",
    "busy",
    "timeout",
    "shutting_down",
    "error",
    "bad_request",
    "internal_error",
    "ok_degraded",
    "partial_topk",
];

#[derive(Default)]
struct CostSums {
    predicted_s: f64,
    measured_s: f64,
    /// Term name -> summed predicted seconds across batches.
    terms: Vec<(String, f64)>,
}

/// Per-shard counters. Each shard thread bumps only its own entry, so
/// the cache line never bounces between cores; the report reader sums
/// them lazily. The per-shard roofline recorder keys its rows by shard
/// (`"s0/f64"`) so a single hot shard is visible in the merged report.
#[derive(Default)]
pub struct ShardStat {
    /// Kernel batches this shard executed.
    pub batches: AtomicU64,
    /// Query points this shard answered.
    pub queries: AtomicU64,
    /// Batches that panicked in this shard's kernel.
    pub worker_panics: AtomicU64,
    /// Workspace rebuilds after a panic (the shard keeps serving).
    pub worker_respawns: AtomicU64,
    /// Connections the acceptor round-robined onto this shard (counter,
    /// not a gauge: total adopted over the run).
    pub conns: AtomicU64,
    /// Per-batch roofline classification, keyed by shard in the report.
    pub roofline: RooflineRecorder,
}

/// Counters shared by the acceptor, connection handlers and lane workers.
#[derive(Default)]
pub struct Metrics {
    pub requests: AtomicU64,
    pub queries: AtomicU64,
    pub busy: AtomicU64,
    pub timeouts: AtomicU64,
    pub errors: AtomicU64,
    pub batches: AtomicU64,
    /// Worker batches that panicked (injected or organic); each one
    /// answered its in-flight requests with `InternalError`.
    pub worker_panics: AtomicU64,
    /// Workers rebuilt with a fresh executor after a panic.
    pub worker_respawns: AtomicU64,
    /// Queries answered from the f32 lane on behalf of f64 clients while
    /// the server was shedding load (`Status::OkDegraded`).
    pub degraded: AtomicU64,
    /// Overload episodes: transitions into the degraded state.
    pub overload_events: AtomicU64,
    flush_model: AtomicU64,
    flush_deadline: AtomicU64,
    flush_drain: AtomicU64,
    hist: [AtomicU64; BATCH_BUCKETS.len()],
    /// End-to-end request latency (frame received → reply written),
    /// log-bucketed, one histogram per lane × terminal status. Lock-free
    /// on the record path; rows with zero samples are skipped in reports.
    latency: [[LatencyHistogram; STATUS_LABELS.len()]; LANES.len()],
    /// Slowest trace id seen per latency bucket, per lane × status —
    /// surfaced as OpenMetrics exemplars so a histogram tail links
    /// straight to a fetchable distributed trace. Compiled out (and the
    /// record path a no-op) without `obs`.
    #[cfg(feature = "obs")]
    exemplars: [[Exemplars; STATUS_LABELS.len()]; LANES.len()],
    in_flight: AtomicU64,
    queue_high_water: AtomicU64,
    cost: Mutex<CostSums>,
    /// Per-batch roofline classification counters (lane × bound class
    /// plus the headroom gauge); a zero-sized no-op without `obs`.
    pub roofline: RooflineRecorder,
    /// One entry per shard; empty until [`Metrics::for_shards`].
    pub shards: Vec<ShardStat>,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for a server running `n` shards.
    pub fn for_shards(n: usize) -> Self {
        Metrics {
            shards: (0..n).map(|_| ShardStat::default()).collect(),
            ..Self::default()
        }
    }

    /// Admit `m` queries against the bound, all-or-nothing: either the
    /// whole request fits under `cap` in-flight queries and the counter
    /// advances, or nothing is admitted (→ `Busy`). CAS keeps this exact
    /// under concurrent connection handlers.
    pub fn admit(&self, m: usize, cap: usize) -> bool {
        let m = m as u64;
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur + m > cap as u64 {
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + m,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let depth = cur + m;
        let mut high = self.queue_high_water.load(Ordering::Relaxed);
        while depth > high {
            match self.queue_high_water.compare_exchange_weak(
                high,
                depth,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => high = actual,
            }
        }
        true
    }

    /// Release `m` previously admitted queries (reply sent or enqueue
    /// failed).
    pub fn release(&self, m: usize) {
        self.in_flight.fetch_sub(m as u64, Ordering::AcqRel);
    }

    /// Current in-flight query count (telemetry only).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Record one flush decision; `batch_m` is the query count that
    /// actually ran (0 when every held request had already timed out, in
    /// which case no kernel ran and only the flush reason is counted).
    pub fn record_flush(
        &self,
        reason: FlushReason,
        batch_m: usize,
        predicted_s: f64,
        measured_s: f64,
        terms: &[(&'static str, f64)],
    ) {
        match reason {
            FlushReason::Model => &self.flush_model,
            FlushReason::Deadline => &self.flush_deadline,
            FlushReason::Drain => &self.flush_drain,
        }
        .fetch_add(1, Ordering::Relaxed);
        if batch_m == 0 {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(batch_m as u64, Ordering::Relaxed);
        self.hist[batch_bucket(batch_m)].fetch_add(1, Ordering::Relaxed);
        let mut cost = self.cost.lock().unwrap();
        cost.predicted_s += predicted_s;
        cost.measured_s += measured_s;
        for &(name, s) in terms {
            match cost.terms.iter_mut().find(|(n, _)| n == name) {
                Some((_, sum)) => *sum += s,
                None => cost.terms.push((name.to_string(), s)),
            }
        }
    }

    /// Record one finished request's round-trip latency under its lane
    /// and terminal status. `trace_id` feeds the bucket's exemplar: the
    /// slowest request per bucket keeps its id visible in the exposition.
    pub fn record_latency(&self, lane: usize, status: Status, rtt: Duration, trace_id: u64) {
        self.latency[lane][status as usize].record(rtt);
        #[cfg(feature = "obs")]
        self.exemplars[lane][status as usize].record(rtt.as_nanos() as u64, trace_id);
        #[cfg(not(feature = "obs"))]
        let _ = trace_id;
    }

    /// Snapshot of one lane × status latency histogram (tests, slow-query
    /// threshold checks).
    pub fn latency_count(&self, lane: usize, status: Status) -> u64 {
        self.latency[lane][status as usize].count()
    }

    /// Snapshot as a report. `batch_targets` are the per-lane `m*`
    /// constants and `overloaded` the degradation flag (both live with
    /// the server, not the counters).
    pub fn report(&self, batch_targets: Vec<(String, usize)>, overloaded: bool) -> ServeReport {
        let cost = self.cost.lock().unwrap();
        // the global per-lane rows first, then per-shard rows keyed
        // "s<idx>/<lane>" (skipping shards that ran nothing)
        let mut roofline = self.roofline.rows();
        for (i, s) in self.shards.iter().enumerate() {
            roofline.extend(
                s.roofline
                    .rows_keyed(&format!("s{i}"))
                    .into_iter()
                    .filter(|r| r.total() > 0),
            );
        }
        ServeReport {
            precisions: batch_targets.iter().map(|(p, _)| p.clone()).collect(),
            requests: self.requests.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            degraded_queries: self.degraded.load(Ordering::Relaxed),
            overload_events: self.overload_events.load(Ordering::Relaxed),
            flushes: FlushCounts {
                model: self.flush_model.load(Ordering::Relaxed),
                deadline: self.flush_deadline.load(Ordering::Relaxed),
                drain: self.flush_drain.load(Ordering::Relaxed),
            },
            roofline,
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardRow {
                    shard: i,
                    batches: s.batches.load(Ordering::Relaxed),
                    queries: s.queries.load(Ordering::Relaxed),
                    worker_panics: s.worker_panics.load(Ordering::Relaxed),
                    worker_respawns: s.worker_respawns.load(Ordering::Relaxed),
                    conns: s.conns.load(Ordering::Relaxed),
                })
                .collect(),
            batch_hist: self
                .hist
                .iter()
                .map(|h| h.load(Ordering::Relaxed))
                .collect(),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            overloaded,
            latency: self.latency_rows(),
            batch_targets,
            predicted_s: cost.predicted_s,
            measured_s: cost.measured_s,
            predicted_terms: cost.terms.clone(),
        }
    }

    /// Non-empty latency histograms as report rows, lane-major.
    fn latency_rows(&self) -> Vec<LatencyRow> {
        let mut rows = Vec::new();
        for (li, lane) in LANES.iter().enumerate() {
            for (si, status) in STATUS_LABELS.iter().enumerate() {
                let hist = self.latency[li][si].snapshot();
                if hist.count() > 0 {
                    rows.push(LatencyRow {
                        lane: lane.to_string(),
                        status: status.to_string(),
                        hist,
                        #[cfg(feature = "obs")]
                        exemplars: self.exemplars[li][si].snapshot(),
                        #[cfg(not(feature = "obs"))]
                        exemplars: Vec::new(),
                    });
                }
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_all_or_nothing() {
        let m = Metrics::new();
        assert!(m.admit(6, 8));
        assert!(!m.admit(3, 8), "6 + 3 > 8 must be rejected whole");
        assert!(m.admit(2, 8));
        assert_eq!(m.in_flight(), 8);
        m.release(6);
        assert!(m.admit(3, 8));
        assert_eq!(m.queue_high_water.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn oversized_batch_never_admits() {
        let m = Metrics::new();
        assert!(!m.admit(9, 8));
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn flushes_aggregate_into_the_report() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.record_flush(
            FlushReason::Model,
            32,
            0.002,
            0.003,
            &[("pack Rc + R2c", 0.001)],
        );
        m.record_flush(
            FlushReason::Deadline,
            1,
            0.001,
            0.001,
            &[("pack Rc + R2c", 0.0005)],
        );
        m.record_flush(FlushReason::Drain, 0, 0.0, 0.0, &[]); // all timed out

        let r = m.report(vec![("f64".into(), 32)], false);
        assert_eq!(r.batches, 2);
        assert_eq!(r.queries, 33);
        assert_eq!(r.flushes.model, 1);
        assert_eq!(r.flushes.deadline, 1);
        assert_eq!(r.flushes.drain, 1);
        assert_eq!(r.batch_hist[batch_bucket(32)], 1);
        assert_eq!(r.batch_hist[batch_bucket(1)], 1);
        assert!((r.predicted_s - 0.003).abs() < 1e-15);
        assert!((r.measured_s - 0.004).abs() < 1e-15);
        assert_eq!(r.predicted_terms.len(), 1);
        assert!((r.predicted_terms[0].1 - 0.0015).abs() < 1e-15);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn roofline_rows_reach_the_report() {
        use gsknn_core::{MachineParams, Model};
        let m = Metrics::new();
        let model = Model::new(MachineParams::ivy_bridge_1core());
        m.roofline.record_batch(
            0,
            8,
            &model,
            4,
            512,
            2,
            16,
            8,
            64,
            FlushReason::Deadline,
            0.004,
            &gsknn_core::obs::PhaseSet::default(),
            0,
        );
        let r = m.report(vec![("f64".into(), 64)], false);
        assert_eq!(r.roofline.len(), 2);
        assert_eq!(r.roofline[0].lane, "f64");
        assert_eq!(r.roofline[0].total(), 1);
        assert_eq!(
            r.roofline[0].counts[gsknn_obs::BoundClass::Coalesce.index()],
            1
        );
        assert_eq!(r.roofline[1].total(), 0, "f32 lane saw no batches");
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn roofline_rows_are_empty_without_obs() {
        let m = Metrics::new();
        assert!(m
            .report(vec![("f64".into(), 64)], false)
            .roofline
            .is_empty());
    }

    #[test]
    fn latency_rows_cover_only_populated_cells() {
        let m = Metrics::new();
        m.record_latency(0, Status::Ok, Duration::from_micros(900), 0xA1);
        m.record_latency(0, Status::Ok, Duration::from_micros(1_100), 0xA2);
        m.record_latency(1, Status::Timeout, Duration::from_millis(55), 0xA3);
        assert_eq!(m.latency_count(0, Status::Ok), 2);
        assert_eq!(m.latency_count(1, Status::Ok), 0);

        let r = m.report(vec![("f64".into(), 32), ("f32".into(), 48)], true);
        assert!(r.overloaded);
        assert_eq!(r.latency.len(), 2, "empty lane × status cells skipped");
        assert_eq!(
            (r.latency[0].lane.as_str(), r.latency[0].status.as_str()),
            ("f64", "ok")
        );
        assert_eq!(r.latency[0].hist.count(), 2);
        assert_eq!(
            (r.latency[1].lane.as_str(), r.latency[1].status.as_str()),
            ("f32", "timeout")
        );
        let p50 = r.latency[1].hist.p50_ns().expect("non-empty histogram");
        assert!(
            (40_000_000..=70_000_000).contains(&p50),
            "p50 {p50} near 55 ms"
        );
    }

    /// Exemplars ride the latency rows: each populated bucket keeps the
    /// slowest request's trace id so the exposition can link to it.
    #[cfg(feature = "obs")]
    #[test]
    fn latency_rows_carry_bucket_exemplars() {
        let m = Metrics::new();
        m.record_latency(0, Status::Ok, Duration::from_micros(900), 0xBEEF);
        m.record_latency(1, Status::Timeout, Duration::from_millis(55), 0xCAFE);
        let rows = m.latency_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].exemplars.len(), 1);
        assert_eq!(rows[0].exemplars[0].trace_id, 0xBEEF);
        assert_eq!(rows[0].exemplars[0].ns, 900_000);
        assert_eq!(rows[1].exemplars[0].trace_id, 0xCAFE);
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn latency_rows_have_no_exemplars_without_obs() {
        let m = Metrics::new();
        m.record_latency(0, Status::Ok, Duration::from_micros(900), 0xBEEF);
        let rows = m.latency_rows();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].exemplars.is_empty());
    }

    #[test]
    fn shard_stats_reach_the_report_keyed_by_shard() {
        let m = Metrics::for_shards(2);
        m.shards[0].batches.fetch_add(3, Ordering::Relaxed);
        m.shards[0].queries.fetch_add(9, Ordering::Relaxed);
        m.shards[1].worker_panics.fetch_add(1, Ordering::Relaxed);
        m.shards[1].worker_respawns.fetch_add(1, Ordering::Relaxed);
        m.shards[1].conns.fetch_add(4, Ordering::Relaxed);
        let r = m.report(vec![("f64".into(), 32)], false);
        assert_eq!(r.shards.len(), 2);
        assert_eq!(
            (r.shards[0].shard, r.shards[0].batches, r.shards[0].queries),
            (0, 3, 9)
        );
        assert_eq!(
            (
                r.shards[1].worker_panics,
                r.shards[1].worker_respawns,
                r.shards[1].conns
            ),
            (1, 1, 4)
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn shard_roofline_rows_are_keyed_and_sparse() {
        use gsknn_core::{MachineParams, Model};
        let m = Metrics::for_shards(2);
        let model = Model::new(MachineParams::ivy_bridge_1core());
        m.shards[1].roofline.record_batch(
            1,
            4,
            &model,
            4,
            512,
            2,
            16,
            8,
            64,
            FlushReason::Deadline,
            0.004,
            &gsknn_core::obs::PhaseSet::default(),
            0,
        );
        let r = m.report(vec![("f64".into(), 64)], false);
        // 2 global lane rows + only shard 1's non-empty f32 row
        assert_eq!(r.roofline.len(), 3);
        assert_eq!(r.roofline[2].lane, "s1/f32");
        assert_eq!(r.roofline[2].total(), 1);
    }

    #[test]
    fn concurrent_admission_respects_the_cap() {
        let m = std::sync::Arc::new(Metrics::new());
        let cap = 64usize;
        let admitted: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let m = m.clone();
                    s.spawn(move || (0..100).filter(|_| m.admit(1, cap)).count() as u64)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(admitted, cap as u64);
        assert_eq!(m.in_flight(), cap as u64);
    }
}
