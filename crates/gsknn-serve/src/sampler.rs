//! The windowed load sampler and per-batch roofline recorder.
//!
//! Both follow the [`crate::trace::ReqTrace`] discipline: **zero-sized
//! no-ops without the `obs` cargo feature** (the guard tests below check
//! the size structurally), so the serve hot path pays nothing when
//! observability is compiled out.
//!
//! [`LoadSampler`] keeps a fixed ring of [`WINDOW_S`] per-second slots,
//! each a bundle of atomics: arrival counts, flushed batches and their
//! sizes, flush reasons, the in-flight gauge, and the batch kernels'
//! per-phase nanoseconds summed across *all* requests in that second.
//! The write path is lock-free — writers tag a slot with its absolute
//! second via CAS and `fetch_add` into it; at a second boundary
//! concurrent writers may race the reset and drop a handful of events,
//! which is acceptable for telemetry (the tag CAS guarantees a slot is
//! never attributed to two different seconds for longer than the race
//! window).
//!
//! [`RooflineRecorder`] classifies every executed batch against the
//! §2.6 machine asymptotes ([`gsknn_obs::roofline`]) and aggregates per
//! (lane × bound-class) counters plus the headroom gauge, surfaced as
//! [`gsknn_obs::RooflineRow`]s in the [`gsknn_obs::ServeReport`].

use crate::coalesce::FlushReason;
use gsknn_core::obs::PhaseSet;
use serde_json::Value;

#[cfg(feature = "obs")]
use crate::metrics::LANES;
#[cfg(feature = "obs")]
use gsknn_core::obs::{Phase, PHASE_COUNT};
#[cfg(feature = "obs")]
use gsknn_core::Model;
#[cfg(feature = "obs")]
use gsknn_obs::roofline::{classify, RooflineInputs};
use gsknn_obs::timeseries::timeseries_json;
#[cfg(feature = "obs")]
use gsknn_obs::timeseries::LoadSample;
use gsknn_obs::RooflineRow;
#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "obs")]
use std::time::Instant;

/// Ring length: seconds of history the time-series keeps.
pub const WINDOW_S: u64 = 120;

#[cfg(feature = "obs")]
#[derive(Default)]
struct Slot {
    /// Absolute second + 1 this slot currently holds (0 = never used).
    tag: AtomicU64,
    arrivals: AtomicU64,
    points: AtomicU64,
    batches: AtomicU64,
    batch_points: AtomicU64,
    flush_model: AtomicU64,
    flush_deadline: AtomicU64,
    flush_drain: AtomicU64,
    queue_depth_max: AtomicU64,
    in_flight: AtomicU64,
    phase_ns: [AtomicU64; PHASE_COUNT],
}

#[cfg(feature = "obs")]
impl Slot {
    /// Reset every counter (the tag has already been claimed).
    fn clear(&self) {
        self.arrivals.store(0, Ordering::Relaxed);
        self.points.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batch_points.store(0, Ordering::Relaxed);
        self.flush_model.store(0, Ordering::Relaxed);
        self.flush_deadline.store(0, Ordering::Relaxed);
        self.flush_drain.store(0, Ordering::Relaxed);
        self.queue_depth_max.store(0, Ordering::Relaxed);
        self.in_flight.store(0, Ordering::Relaxed);
        for p in &self.phase_ns {
            p.store(0, Ordering::Relaxed);
        }
    }

    fn max_store(field: &AtomicU64, v: u64) {
        let mut cur = field.load(Ordering::Relaxed);
        while v > cur {
            match field.compare_exchange_weak(cur, v, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(feature = "obs")]
struct SamplerInner {
    epoch: Instant,
    slots: Vec<Slot>,
}

/// Lock-free per-second load sampler; see the module docs. Zero-sized
/// and inert without the `obs` feature.
#[derive(Default)]
pub struct LoadSampler {
    #[cfg(feature = "obs")]
    inner: Option<Box<SamplerInner>>,
}

impl LoadSampler {
    /// A live sampler whose window starts now.
    #[inline]
    pub fn new() -> Self {
        #[cfg(feature = "obs")]
        {
            LoadSampler {
                inner: Some(Box::new(SamplerInner {
                    epoch: Instant::now(),
                    slots: (0..WINDOW_S).map(|_| Slot::default()).collect(),
                })),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            LoadSampler::default()
        }
    }

    /// Claim the slot for the current second, resetting it if its tag is
    /// stale (CAS winner clears; losers write into the fresh slot).
    #[cfg(feature = "obs")]
    fn slot(&self) -> Option<(&Slot, u64)> {
        let inner = self.inner.as_deref()?;
        let sec = inner.epoch.elapsed().as_secs();
        let slot = &inner.slots[(sec % WINDOW_S) as usize];
        let tag = sec + 1;
        let cur = slot.tag.load(Ordering::Acquire);
        if cur != tag
            && slot
                .tag
                .compare_exchange(cur, tag, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            slot.clear();
        }
        Some((slot, sec))
    }

    /// A query request of `m` points arrived (counted before admission).
    #[inline]
    pub fn record_arrival(&self, m: usize) {
        #[cfg(feature = "obs")]
        if let Some((slot, _)) = self.slot() {
            slot.arrivals.fetch_add(1, Ordering::Relaxed);
            slot.points.fetch_add(m as u64, Ordering::Relaxed);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = m;
        }
    }

    /// A batch flushed: count the reason, and for a non-empty batch the
    /// size and the kernel's per-phase nanoseconds.
    #[inline]
    pub fn record_flush(&self, reason: FlushReason, batch_m: usize, phases: &PhaseSet) {
        #[cfg(feature = "obs")]
        if let Some((slot, _)) = self.slot() {
            match reason {
                FlushReason::Model => &slot.flush_model,
                FlushReason::Deadline => &slot.flush_deadline,
                FlushReason::Drain => &slot.flush_drain,
            }
            .fetch_add(1, Ordering::Relaxed);
            if batch_m == 0 {
                return;
            }
            slot.batches.fetch_add(1, Ordering::Relaxed);
            slot.batch_points
                .fetch_add(batch_m as u64, Ordering::Relaxed);
            for (phase, seconds, _spans) in phases.rows() {
                let idx = Phase::ALL
                    .iter()
                    .position(|&p| p == phase)
                    .expect("phase enumerated in ALL");
                slot.phase_ns[idx].fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (reason, batch_m, phases);
        }
    }

    /// Observe the in-flight gauge (called by the monitor tick and on
    /// arrivals): keeps the per-second max and the latest value.
    #[inline]
    pub fn observe_depth(&self, in_flight: u64) {
        #[cfg(feature = "obs")]
        if let Some((slot, _)) = self.slot() {
            Slot::max_store(&slot.queue_depth_max, in_flight);
            slot.in_flight.store(in_flight, Ordering::Relaxed);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = in_flight;
        }
    }

    /// The `TimeSeries` wire-op body: every live slot, oldest first.
    /// With `obs` compiled out this is a valid `enabled: false` document
    /// with no samples.
    pub fn to_json(&self) -> Value {
        #[cfg(feature = "obs")]
        {
            if let Some(inner) = self.inner.as_deref() {
                let now = inner.epoch.elapsed().as_secs();
                let mut samples: Vec<LoadSample> = inner
                    .slots
                    .iter()
                    .filter_map(|slot| {
                        let tag = slot.tag.load(Ordering::Acquire);
                        if tag == 0 {
                            return None;
                        }
                        let sec = tag - 1;
                        // a slot is live if its second is inside the window
                        if now >= WINDOW_S && sec + WINDOW_S < now {
                            return None;
                        }
                        Some(LoadSample {
                            t_s: sec,
                            arrivals: slot.arrivals.load(Ordering::Relaxed),
                            points: slot.points.load(Ordering::Relaxed),
                            batches: slot.batches.load(Ordering::Relaxed),
                            batch_points: slot.batch_points.load(Ordering::Relaxed),
                            flush_model: slot.flush_model.load(Ordering::Relaxed),
                            flush_deadline: slot.flush_deadline.load(Ordering::Relaxed),
                            flush_drain: slot.flush_drain.load(Ordering::Relaxed),
                            queue_depth_max: slot.queue_depth_max.load(Ordering::Relaxed),
                            in_flight: slot.in_flight.load(Ordering::Relaxed),
                            phase_ns: Phase::ALL
                                .iter()
                                .enumerate()
                                .filter_map(|(i, p)| {
                                    let ns = slot.phase_ns[i].load(Ordering::Relaxed);
                                    (ns > 0).then(|| (p.name().to_string(), ns))
                                })
                                .collect(),
                        })
                    })
                    .collect();
                samples.sort_by_key(|s| s.t_s);
                return timeseries_json(true, WINDOW_S, &samples);
            }
            timeseries_json(true, WINDOW_S, &[])
        }
        #[cfg(not(feature = "obs"))]
        {
            timeseries_json(false, 0, &[])
        }
    }
}

/// Per-batch roofline classifier and (lane × bound-class) aggregator;
/// see the module docs. Zero-sized and inert without the `obs` feature.
#[derive(Default)]
pub struct RooflineRecorder {
    #[cfg(feature = "obs")]
    counts: [[AtomicU64; 4]; 2],
    /// Summed per-batch headroom, fixed-point ×1000, per lane.
    #[cfg(feature = "obs")]
    headroom_milli: [AtomicU64; 2],
}

impl RooflineRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify one executed batch and bump the lane's counters.
    ///
    /// `model` is the lane's `for_scalar`-rescaled model, `leaf_n` the
    /// per-kernel-call reference count, `backlog` the query points still
    /// in flight beyond this batch at flush time.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn record_batch(
        &self,
        lane: usize,
        elem_bytes: usize,
        model: &gsknn_core::Model,
        n_trees: usize,
        leaf_n: usize,
        batch_m: usize,
        d: usize,
        k: usize,
        target_m: usize,
        reason: FlushReason,
        measured_s: f64,
        phases: &PhaseSet,
        backlog: usize,
    ) {
        #[cfg(feature = "obs")]
        {
            let verdict = Self::classify_batch(
                elem_bytes, model, n_trees, leaf_n, batch_m, d, k, target_m, reason, measured_s,
                phases, backlog,
            );
            self.counts[lane][verdict.class.index()].fetch_add(1, Ordering::Relaxed);
            // clamp: a pathological measurement must not wrap the gauge
            let milli = (verdict.headroom.clamp(0.0, 1e9) * 1e3) as u64;
            self.headroom_milli[lane].fetch_add(milli, Ordering::Relaxed);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (
                lane, elem_bytes, model, n_trees, leaf_n, batch_m, d, k, target_m, reason,
                measured_s, phases, backlog,
            );
        }
    }

    #[cfg(feature = "obs")]
    #[allow(clippy::too_many_arguments)]
    fn classify_batch(
        elem_bytes: usize,
        model: &Model,
        n_trees: usize,
        leaf_n: usize,
        batch_m: usize,
        d: usize,
        k: usize,
        target_m: usize,
        reason: FlushReason,
        measured_s: f64,
        phases: &PhaseSet,
        backlog: usize,
    ) -> gsknn_obs::RooflineVerdict {
        use gsknn_core::ProblemSize;
        let trees = n_trees.max(1) as f64;
        let p = ProblemSize {
            m: batch_m,
            n: leaf_n.max(1),
            d,
            k,
        };
        let flops = model.flops(&p) * trees;
        // slow-memory elements the model charges the batch: pack R
        // (nd + 2n), pack Q (dm + 2m), neighbor writeback (mk), per tree
        let elems =
            (leaf_n * d + 2 * leaf_n + d * batch_m + 2 * batch_m + batch_m * k) as f64 * trees;
        let mach = model.machine();
        let mut mem_s = 0.0;
        let mut compute_s = 0.0;
        for (phase, seconds, _spans) in phases.rows() {
            match phase {
                Phase::PackR | Phase::PackQ | Phase::Writeback => mem_s += seconds,
                Phase::RankDc | Phase::Select => compute_s += seconds,
            }
        }
        classify(&RooflineInputs {
            flops,
            bytes: elems * elem_bytes as f64,
            measured_s,
            mem_phase_s: mem_s,
            compute_phase_s: compute_s,
            peak_flops_per_s: mach.tau_f,
            peak_bytes_per_s: elem_bytes as f64 / mach.tau_b,
            batch_m,
            target_m,
            deadline_flush: !matches!(reason, FlushReason::Model),
            backlog,
        })
    }

    /// Per-lane aggregate rows for the report. Empty when `obs` is
    /// compiled out, one row per lane otherwise.
    pub fn rows(&self) -> Vec<RooflineRow> {
        #[cfg(feature = "obs")]
        {
            LANES
                .iter()
                .enumerate()
                .map(|(li, lane)| {
                    let mut counts = [0u64; 4];
                    for (ci, c) in counts.iter_mut().enumerate() {
                        *c = self.counts[li][ci].load(Ordering::Relaxed);
                    }
                    RooflineRow {
                        lane: lane.to_string(),
                        counts,
                        headroom_sum: self.headroom_milli[li].load(Ordering::Relaxed) as f64 / 1e3,
                    }
                })
                .collect()
        }
        #[cfg(not(feature = "obs"))]
        {
            Vec::new()
        }
    }

    /// [`Self::rows`] with lane labels prefixed (`"s0/f64"`): per-shard
    /// recorders stay distinguishable when merged into one report.
    pub fn rows_keyed(&self, prefix: &str) -> Vec<RooflineRow> {
        let mut rows = self.rows();
        for r in &mut rows {
            r.lane = format!("{prefix}/{}", r.lane);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ReqTrace discipline extended to the new recorders: without
    /// `obs` both are zero-sized and every method an inert no-op.
    #[cfg(not(feature = "obs"))]
    #[test]
    fn sampler_and_roofline_are_zero_sized_without_obs() {
        assert_eq!(std::mem::size_of::<LoadSampler>(), 0);
        assert_eq!(std::mem::size_of::<RooflineRecorder>(), 0);
        let s = LoadSampler::new();
        s.record_arrival(3);
        s.record_flush(FlushReason::Model, 3, &PhaseSet::default());
        s.observe_depth(7);
        let doc = s.to_json();
        assert_eq!(doc.get("enabled").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(
            doc.get("samples").and_then(|v| v.as_array()).map(Vec::len),
            Some(0)
        );
        let r = RooflineRecorder::new();
        assert!(r.rows().is_empty());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn sampler_accumulates_per_second_slots() {
        let s = LoadSampler::new();
        s.record_arrival(1);
        s.record_arrival(4);
        s.record_flush(FlushReason::Deadline, 5, &PhaseSet::default());
        s.record_flush(FlushReason::Drain, 0, &PhaseSet::default());
        s.observe_depth(9);
        s.observe_depth(2);
        let doc = s.to_json();
        assert_eq!(doc.get("enabled").and_then(|v| v.as_bool()), Some(true));
        let (enabled, window, samples) =
            gsknn_obs::parse_timeseries(&doc).expect("sampler JSON parses");
        assert!(enabled);
        assert_eq!(window, WINDOW_S);
        assert_eq!(samples.len(), 1, "all activity lands in the epoch second");
        let s0 = &samples[0];
        assert_eq!(s0.arrivals, 2);
        assert_eq!(s0.points, 5);
        assert_eq!(s0.batches, 1);
        assert_eq!(s0.batch_points, 5);
        assert_eq!(s0.flush_deadline, 1);
        assert_eq!(s0.flush_drain, 1);
        assert_eq!(s0.queue_depth_max, 9);
        assert_eq!(s0.in_flight, 2);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn sampler_is_safe_under_concurrent_writers() {
        let s = std::sync::Arc::new(LoadSampler::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..500 {
                        s.record_arrival(1);
                        s.observe_depth(3);
                    }
                });
            }
        });
        let (_, _, samples) = gsknn_obs::parse_timeseries(&s.to_json()).unwrap();
        let total: u64 = samples.iter().map(|x| x.arrivals).sum();
        assert_eq!(total, 2000, "no events lost without a second boundary");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn roofline_recorder_classifies_undersized_deadline_flushes() {
        use gsknn_core::{MachineParams, Model};
        let r = RooflineRecorder::new();
        let model = Model::new(MachineParams::ivy_bridge_1core());
        // tiny batch, huge target, deadline flush, slow measurement
        r.record_batch(
            0,
            8,
            &model,
            4,
            512,
            2,
            16,
            8,
            64,
            FlushReason::Deadline,
            0.005,
            &PhaseSet::default(),
            0,
        );
        // full batch at target, model flush
        r.record_batch(
            1,
            4,
            &model,
            4,
            512,
            64,
            16,
            8,
            64,
            FlushReason::Model,
            0.005,
            &PhaseSet::default(),
            0,
        );
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].lane, "f64");
        assert_eq!(
            rows[0].counts[gsknn_obs::BoundClass::Coalesce.index()],
            1,
            "undersized deadline flush is coalesce-bound"
        );
        assert_eq!(rows[0].total(), 1);
        assert!(rows[0].headroom_mean().unwrap() > 1.0);
        assert_eq!(
            rows[1].counts[gsknn_obs::BoundClass::Coalesce.index()],
            0,
            "full model-triggered batch is not coalesce-bound"
        );
        assert_eq!(rows[1].total(), 1);
        // per-class counts sum to total batches recorded
        let all: u64 = rows.iter().map(|r| r.total()).sum();
        assert_eq!(all, 2);
    }
}
