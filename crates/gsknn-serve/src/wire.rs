//! Length-prefixed binary wire protocol.
//!
//! Every message is one **frame**: a `u32` little-endian payload length
//! followed by that many payload bytes (capped at [`MAX_FRAME`]). The
//! payload is a versioned request or response:
//!
//! ```text
//! request   magic "GSRQ", version u16 = 2, op u8, precision u8 (8|4|0)
//!           Query:      k u16, deadline_ms u32, trace_id u64, d u32, d coords
//!           BatchQuery: k u16, deadline_ms u32, trace_id u64, d u32,
//!                       m u32, m·d coords
//!           Stats / Ping / Shutdown / Metrics / Traces / TimeSeries:
//!           no body (precision byte is 0)
//!           TraceFetch: trace_id u64 (precision byte is 0) — fetch the
//!           span fragment a backend retained for that routed query
//!
//! response  magic "GSRP", version u16 = 2, status u8, trace_id u64, body
//!           Ok(Query/BatchQuery): NeighborTable v2 bytes (knn-select)
//!           OkDegraded:           NeighborTable v2 bytes (degraded lane's
//!                                 precision; the table is self-describing),
//!                                 OR a PartialTopK envelope (below) when a
//!                                 scatter-gather router answered with some
//!                                 partitions missing — sniff the body magic
//!           PartialTopK:          PartialTopK envelope: a per-partition
//!                                 top-k heap payload from a backend running
//!                                 in partition mode (ids already global)
//!           Ok(Stats):            ServeReport JSON (UTF-8)
//!           Ok(Metrics):          Prometheus text exposition (UTF-8)
//!           Ok(Traces):           Chrome trace-event JSON (UTF-8)
//!           Ok(TimeSeries):       load time-series JSON (UTF-8)
//!           Ok(TraceFetch):       span-annex bytes (below), empty if the
//!                                 trace id fell out of the fragment ring
//!           Ok(Ping/Shutdown):    empty
//!           Busy/Timeout/ShuttingDown: empty
//!           Error/BadRequest/InternalError: UTF-8 message
//!
//! envelope  magic "GSPK", version u16 = 2, partition_id u32, epoch u64,
//!           contributed u16, total u16, flags u8 (bit 0 = served from a
//!           degraded lane, bit 1 = a span annex trails the table),
//!           replica_id u16, replicas u16, then NeighborTable v2 bytes
//!           (the table is self-describing, so no inner length field is
//!           needed and none can disagree), then — iff flag bit 1 — a
//!           span annex to the end of the body. Version 1 envelopes (no
//!           replica fields) still decode — they read as replica 0 of 1.
//!
//! annex     magic "GSTA", version u16 = 1, span_count u16, then per
//!           span: name_len u8, name bytes (UTF-8, ≤ 64), start_ns i64
//!           (relative to the backend's request-receive instant), dur_ns
//!           u64. At most 64 spans; oversized annexes are rejected on
//!           decode, never allocated.
//! ```
//!
//! **Trace ids.** Version 2 threads a `u64` trace id through every
//! query: the client stamps one (0 = "server, assign me one"), the
//! server echoes it in the response header, so a client can join its
//! measured RTT against the server's exported trace of the same
//! request. Version 1 frames (no trace field) still decode — the id
//! reads as 0 — so old clients keep working against new servers.
//!
//! Coordinates travel at the negotiated precision (`f64` or `f32`
//! little-endian); query responses reuse the [`NeighborTable`] v2
//! serialization, which stamps its own precision byte, so a response
//! frame is self-describing. Decoding widens coordinates to `f64`; the
//! server's f32 lane narrows them back, which is exact (f32 → f64 → f32
//! round-trips bit-for-bit).

use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Protocol version stamped in every frame payload. Version 1 (no
/// trace ids) is still accepted on decode.
pub const WIRE_VERSION: u16 = 2;
/// Hard cap on a frame payload — larger length prefixes are rejected
/// before any allocation (64 MiB covers ~4M-point f64 batch responses).
pub const MAX_FRAME: usize = 1 << 26;

const REQ_MAGIC: &[u8; 4] = b"GSRQ";
const RESP_MAGIC: &[u8; 4] = b"GSRP";
const PARTIAL_MAGIC: &[u8; 4] = b"GSPK";
const PARTIAL_VERSION: u16 = 2;
/// Pre-replication envelope version, still accepted on decode (reads as
/// replica 0 of 1).
const PARTIAL_VERSION_V1: u16 = 1;

/// Element precision negotiated per request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// 8-byte coordinates/distances.
    F64,
    /// 4-byte coordinates/distances.
    F32,
}

impl Precision {
    /// The header byte: the element width, matching the NeighborTable
    /// serialization convention.
    pub fn byte(self) -> u8 {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
        }
    }

    /// Parse a header byte.
    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            8 => Ok(Precision::F64),
            4 => Ok(Precision::F32),
            other => Err(WireError::BadPrecision(other)),
        }
    }

    /// Display label (`"f64"` / `"f32"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// Request operations (the `op` header byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    Query = 1,
    BatchQuery = 2,
    Stats = 3,
    Ping = 4,
    Shutdown = 5,
    Metrics = 6,
    Traces = 7,
    TimeSeries = 8,
    TraceFetch = 9,
}

/// Body of a `Query` / `BatchQuery` request.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryBody {
    /// Coordinate/response precision.
    pub precision: Precision,
    /// Neighbors requested per query point.
    pub k: usize,
    /// Latency budget in milliseconds: the coalescer holds the request
    /// for at most half of this, and a request whose kernel start slips
    /// past the full budget is answered `Timeout` instead of computed.
    pub deadline_ms: u32,
    /// Client-stamped trace id, echoed in the response header. 0 asks
    /// the server to assign one (also what v1 frames decode to).
    pub trace_id: u64,
    /// Point dimension.
    pub dim: usize,
    /// Number of query points.
    pub m: usize,
    /// `m · dim` coordinates, point-major, widened to `f64` on decode.
    pub coords: Vec<f64>,
}

/// A query decoded without materializing its coordinates: the header
/// fields plus a borrowed view of the coordinate bytes still in the
/// receive buffer. The shard hot path iterates [`RawQuery::coords`]
/// straight into its pack-buffer layout (`PointSet::append_from_f64`)
/// instead of building an intermediate `Vec<f64>`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawQuery<'a> {
    /// Coordinate/response precision.
    pub precision: Precision,
    /// Neighbors requested per query point.
    pub k: usize,
    /// Latency budget in milliseconds.
    pub deadline_ms: u32,
    /// Client-stamped trace id (0 = assign one; v1 frames read as 0).
    pub trace_id: u64,
    /// Point dimension.
    pub dim: usize,
    /// Number of query points.
    pub m: usize,
    /// `m · dim` coordinates as little-endian bytes at `precision`,
    /// borrowed from the frame payload (length already validated).
    pub coord_bytes: &'a [u8],
}

impl<'a> RawQuery<'a> {
    /// Iterate the coordinates widened to `f64`, in wire order.
    pub fn coords(&self) -> impl Iterator<Item = f64> + 'a {
        let width = self.precision.byte() as usize;
        let precision = self.precision;
        self.coord_bytes
            .chunks_exact(width)
            .map(move |c| match precision {
                Precision::F64 => f64::from_le_bytes(c.try_into().unwrap()),
                Precision::F32 => f32::from_le_bytes(c.try_into().unwrap()) as f64,
            })
    }

    /// Materialize into the owning [`QueryBody`] form.
    pub fn to_body(&self) -> QueryBody {
        QueryBody {
            precision: self.precision,
            k: self.k,
            deadline_ms: self.deadline_ms,
            trace_id: self.trace_id,
            dim: self.dim,
            m: self.m,
            coords: self.coords().collect(),
        }
    }
}

/// A request frame decoded zero-copy — identical to [`Request`] except
/// the query arm borrows its coordinates from the payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RawRequest<'a> {
    /// kNN for one point or a client-side batch (coordinates borrowed).
    Query(RawQuery<'a>),
    /// See [`Request::Stats`].
    Stats,
    /// See [`Request::Ping`].
    Ping,
    /// See [`Request::Shutdown`].
    Shutdown,
    /// See [`Request::Metrics`].
    Metrics,
    /// See [`Request::Traces`].
    Traces,
    /// See [`Request::TimeSeries`].
    TimeSeries,
    /// See [`Request::TraceFetch`].
    TraceFetch(u64),
}

impl RawRequest<'_> {
    /// Materialize into the owning [`Request`] form.
    pub fn into_owned(self) -> Request {
        match self {
            RawRequest::Query(q) => Request::Query(q.to_body()),
            RawRequest::Stats => Request::Stats,
            RawRequest::Ping => Request::Ping,
            RawRequest::Shutdown => Request::Shutdown,
            RawRequest::Metrics => Request::Metrics,
            RawRequest::Traces => Request::Traces,
            RawRequest::TimeSeries => Request::TimeSeries,
            RawRequest::TraceFetch(id) => Request::TraceFetch(id),
        }
    }
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// kNN for one point (`body.m == 1`) or a client-side batch.
    Query(QueryBody),
    /// Fetch the server's [`gsknn_obs::ServeReport`] as JSON.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin graceful drain: queued queries are answered, new ones get
    /// `ShuttingDown`, then the server exits.
    Shutdown,
    /// Fetch the Prometheus-style text exposition (counters, gauges and
    /// latency histogram buckets).
    Metrics,
    /// Fetch the slowest-traces ring as Chrome trace-event JSON.
    Traces,
    /// Fetch the windowed load time-series (per-second snapshots of
    /// arrival rate, queue depth, batch sizes, flush reasons and the
    /// aggregate kernel-phase split) as JSON.
    TimeSeries,
    /// Fetch the span-annex bytes a server retained for this trace id
    /// (empty body if the id has fallen out of the fragment ring). On a
    /// backend this returns the raw annex; on the router it returns the
    /// *stitched* trace as Chrome trace-event JSON.
    TraceFetch(u64),
}

/// Response status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Request served; body depends on the op.
    Ok = 0,
    /// Admission control rejected the request (queue full, or a batch
    /// larger than the whole queue).
    Busy = 1,
    /// The request's latency budget expired before the kernel started.
    Timeout = 2,
    /// Server is draining; retry against another replica.
    ShuttingDown = 3,
    /// Protocol-level failure (undecodable frame); body is a UTF-8
    /// message.
    Error = 4,
    /// Request decoded but failed validation (dimension mismatch, bad
    /// `m`/`k`, non-finite coordinate at the lane's precision); body is
    /// a UTF-8 message. Not retryable as-is.
    BadRequest = 5,
    /// A lane worker failed (panicked) while this request was in flight;
    /// the worker was respawned and the request is safe to retry. Body
    /// is a UTF-8 message.
    InternalError = 6,
    /// Request served from a degraded lane (overload shed an f64 query
    /// to the f32 lane); body is NeighborTable bytes like `Ok`, at the
    /// degraded precision. A scatter-gather router reuses this status
    /// when partitions went missing, with a [`PartialTopK`] body (sniff
    /// via [`is_partial_body`]) carrying the contributed/total counts.
    OkDegraded = 7,
    /// A per-partition top-k reply from a backend running in partition
    /// mode: the body is a [`PartialTopK`] envelope whose neighbor ids
    /// are already offset to the *global* reference numbering, ready for
    /// the router's truncated merge.
    PartialTopK = 8,
}

impl Status {
    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::Busy,
            2 => Status::Timeout,
            3 => Status::ShuttingDown,
            4 => Status::Error,
            5 => Status::BadRequest,
            6 => Status::InternalError,
            7 => Status::OkDegraded,
            8 => Status::PartialTopK,
            other => return Err(WireError::BadStatus(other)),
        })
    }
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Outcome.
    pub status: Status,
    /// Trace id of the request this answers (0 for non-query ops and
    /// v1 frames).
    pub trace_id: u64,
    /// Status-dependent body (see module docs).
    pub body: Vec<u8>,
}

impl Response {
    /// Shorthand for a body-less response.
    pub fn empty(status: Status) -> Self {
        Response {
            status,
            trace_id: 0,
            body: Vec::new(),
        }
    }

    /// An `Ok` response carrying `body` (no trace id; see
    /// [`Response::with_trace`]).
    pub fn ok_body(body: Vec<u8>) -> Self {
        Response {
            status: Status::Ok,
            trace_id: 0,
            body,
        }
    }

    /// Shorthand for an `Error` response with a message.
    pub fn error(msg: impl Into<String>) -> Self {
        Response {
            status: Status::Error,
            trace_id: 0,
            body: msg.into().into_bytes(),
        }
    }

    /// Shorthand for a `BadRequest` response with a message.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        Response {
            status: Status::BadRequest,
            trace_id: 0,
            body: msg.into().into_bytes(),
        }
    }

    /// Shorthand for an `InternalError` response with a message.
    pub fn internal_error(msg: impl Into<String>) -> Self {
        Response {
            status: Status::InternalError,
            trace_id: 0,
            body: msg.into().into_bytes(),
        }
    }

    /// Stamp the trace id this response echoes.
    pub fn with_trace(mut self, trace_id: u64) -> Self {
        self.trace_id = trace_id;
        self
    }
}

/// The partial-top-k envelope header (the `"GSPK"` body layout in the
/// module docs). Travels in two directions:
///
/// * **backend → router** under [`Status::PartialTopK`]: one partition's
///   top-k heap payload, `partition_id`/`epoch` identifying which slice
///   of the reference set answered (`contributed = total = 1`);
/// * **router → client** under [`Status::OkDegraded`]: the merged answer
///   when only `contributed` of `total` partitions made the deadline.
///
/// The table bytes follow the header to the end of the response body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartialHeader {
    /// Which partition of the reference set produced the payload
    /// (`u32::MAX` for a router-merged answer spanning partitions).
    pub partition_id: u32,
    /// Partition-map epoch: the router rejects partials from a backend
    /// configured against a different partitioning than its own.
    pub epoch: u64,
    /// Partitions whose answers are folded into the payload.
    pub contributed: u16,
    /// Partitions in the full fan-out.
    pub total: u16,
    /// Bit 0: the payload was computed on a degraded (f32) lane.
    pub flags: u8,
    /// Which replica of the partition produced the payload,
    /// `0..replicas` (0 for a router-merged answer and for v1 envelopes
    /// from pre-replication backends).
    pub replica_id: u16,
    /// Replicas serving this partition (1 for v1 envelopes).
    pub replicas: u16,
}

/// Encoded size of a [`PartialHeader`] (magic + version + fields).
pub const PARTIAL_HEADER_LEN: usize = 4 + 2 + 4 + 8 + 2 + 2 + 1 + 2 + 2;
/// Encoded size of a v1 (pre-replication) envelope header.
pub const PARTIAL_HEADER_V1_LEN: usize = 4 + 2 + 4 + 8 + 2 + 2 + 1;

/// Flag bit 1 of a [`PartialHeader`]: a span annex trails the table
/// bytes in the body. V2-compatible — routers that predate the annex
/// hand the whole tail to `NeighborTable::from_bytes`, which tolerates
/// trailing bytes.
pub const PARTIAL_FLAG_SPAN_ANNEX: u8 = 2;

impl PartialHeader {
    /// Bit 0 of `flags`: the answer came off a degraded-precision lane.
    pub fn lane_degraded(&self) -> bool {
        self.flags & 1 != 0
    }

    /// Bit 1 of `flags`: a span annex trails the table bytes.
    pub fn has_span_annex(&self) -> bool {
        self.flags & PARTIAL_FLAG_SPAN_ANNEX != 0
    }

    /// Append the envelope header to `out` (the caller appends the
    /// NeighborTable bytes after it — e.g. via `encode_into_with_offset`
    /// on the shard hot path, which keeps the reply allocation-free).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(PARTIAL_MAGIC);
        out.extend_from_slice(&PARTIAL_VERSION.to_le_bytes());
        out.extend_from_slice(&self.partition_id.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.contributed.to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        out.push(self.flags);
        out.extend_from_slice(&self.replica_id.to_le_bytes());
        out.extend_from_slice(&self.replicas.to_le_bytes());
    }
}

/// `true` when a response body starts with the partial-top-k envelope
/// magic — how a client distinguishes a router's partition-annotated
/// `OkDegraded` body from a plain degraded-lane NeighborTable.
pub fn is_partial_body(body: &[u8]) -> bool {
    body.len() >= 4 && &body[..4] == PARTIAL_MAGIC
}

/// Decode a partial-top-k body into its header and the borrowed
/// NeighborTable bytes that follow it. Total like every decoder here:
/// arbitrary bytes produce a typed error, never a panic — the table
/// bytes themselves are validated by `NeighborTable::from_bytes`, which
/// carries its own decode caps.
pub fn decode_partial(body: &[u8]) -> Result<(PartialHeader, &[u8]), WireError> {
    let mut buf = body;
    if buf.remaining() < PARTIAL_HEADER_V1_LEN {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != PARTIAL_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != PARTIAL_VERSION && version != PARTIAL_VERSION_V1 {
        return Err(WireError::BadVersion(version));
    }
    let partition_id = buf.get_u32_le();
    let epoch = buf.get_u64_le();
    let contributed = buf.get_u16_le();
    let total = buf.get_u16_le();
    let flags = buf.get_u8();
    // v1 envelopes predate replication: a lone copy of the partition
    let (replica_id, replicas) = if version == PARTIAL_VERSION_V1 {
        (0, 1)
    } else {
        if buf.remaining() < PARTIAL_HEADER_LEN - PARTIAL_HEADER_V1_LEN {
            return Err(WireError::Truncated);
        }
        (buf.get_u16_le(), buf.get_u16_le())
    };
    Ok((
        PartialHeader {
            partition_id,
            epoch,
            contributed,
            total,
            flags,
            replica_id,
            replicas,
        },
        buf,
    ))
}

const ANNEX_MAGIC: &[u8; 4] = b"GSTA";
const ANNEX_VERSION: u16 = 1;
/// Hard cap on spans in one annex — the backend trace for a single
/// query is a handful of phases, so 64 is generous; anything larger is
/// rejected on decode before allocation.
pub const MAX_ANNEX_SPANS: usize = 64;
/// Hard cap on a span name in an annex (longer names are truncated at a
/// UTF-8 boundary on encode, rejected on decode).
pub const MAX_ANNEX_NAME: usize = 64;

/// One backend-side span carried in a span annex. Timestamps are in the
/// *backend's* monotonic timeline, nanoseconds relative to the instant
/// the backend received the request — the router maps them into its own
/// timeline via RTT-bracketing clock alignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnnexSpan {
    /// Phase label (e.g. `"coalesce wait"`, `"kernel: distances"`).
    pub name: String,
    /// Start offset from the backend's request-receive instant, ns.
    /// Signed: decode spans (stamped before the receive mark settles)
    /// may start marginally negative.
    pub start_ns: i64,
    /// Span duration, ns.
    pub dur_ns: u64,
}

/// Append a span annex (`"GSTA"` layout in the module docs) to `out`.
/// Spans beyond [`MAX_ANNEX_SPANS`] are dropped and names are truncated
/// to [`MAX_ANNEX_NAME`] bytes (at a UTF-8 boundary), so the encoded
/// form always round-trips through [`decode_span_annex`].
pub fn encode_span_annex(spans: &[AnnexSpan], out: &mut Vec<u8>) {
    let count = spans.len().min(MAX_ANNEX_SPANS);
    out.extend_from_slice(ANNEX_MAGIC);
    out.extend_from_slice(&ANNEX_VERSION.to_le_bytes());
    out.extend_from_slice(&(count as u16).to_le_bytes());
    for span in &spans[..count] {
        let mut name = span.name.as_bytes();
        if name.len() > MAX_ANNEX_NAME {
            let mut cut = MAX_ANNEX_NAME;
            while !span.name.is_char_boundary(cut) {
                cut -= 1;
            }
            name = &name[..cut];
        }
        out.push(name.len() as u8);
        out.extend_from_slice(name);
        out.extend_from_slice(&span.start_ns.to_le_bytes());
        out.extend_from_slice(&span.dur_ns.to_le_bytes());
    }
}

/// Decode a span annex. Total: arbitrary bytes produce a typed error,
/// never a panic or unbounded allocation — the span count is capped
/// before any allocation and non-UTF-8 name bytes decode lossily.
pub fn decode_span_annex(body: &[u8]) -> Result<Vec<AnnexSpan>, WireError> {
    let mut buf = body;
    if buf.remaining() < 4 + 2 + 2 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != ANNEX_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != ANNEX_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let count = buf.get_u16_le() as usize;
    if count > MAX_ANNEX_SPANS {
        return Err(WireError::Oversized(count));
    }
    let mut spans = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let name_len = buf.get_u8() as usize;
        if name_len > MAX_ANNEX_NAME {
            return Err(WireError::Oversized(name_len));
        }
        if buf.remaining() < name_len + 8 + 8 {
            return Err(WireError::Truncated);
        }
        let name = String::from_utf8_lossy(&buf[..name_len]).into_owned();
        buf.advance(name_len);
        let start_ns = buf.get_i64_le();
        let dur_ns = buf.get_u64_le();
        spans.push(AnnexSpan {
            name,
            start_ns,
            dur_ns,
        });
    }
    Ok(spans)
}

/// Why a payload failed to decode.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// Wrong magic — not a gsknn-serve frame (or request/response mixed up).
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u16),
    /// Unknown op byte.
    BadOp(u8),
    /// Precision byte is not 8 or 4.
    BadPrecision(u8),
    /// Unknown response status byte.
    BadStatus(u8),
    /// Payload ended before the declared content.
    Truncated,
    /// Declared frame length exceeds [`MAX_FRAME`].
    Oversized(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not a gsknn-serve frame (bad magic)"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadOp(op) => write!(f, "unknown op {op}"),
            WireError::BadPrecision(b) => write!(f, "unsupported precision byte {b}"),
            WireError::BadStatus(s) => write!(f, "unknown response status {s}"),
            WireError::Truncated => write!(f, "frame payload truncated"),
            WireError::Oversized(n) => write!(f, "frame of {n} bytes exceeds cap"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode a request payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_slice(REQ_MAGIC);
    buf.put_u16_le(WIRE_VERSION);
    match req {
        Request::Query(q) => {
            let op = if q.m == 1 { Op::Query } else { Op::BatchQuery };
            buf.put_u8(op as u8);
            buf.put_u8(q.precision.byte());
            buf.put_u16_le(q.k as u16);
            buf.put_u32_le(q.deadline_ms);
            buf.put_u64_le(q.trace_id);
            buf.put_u32_le(q.dim as u32);
            if op == Op::BatchQuery {
                buf.put_u32_le(q.m as u32);
            }
            for &v in &q.coords {
                match q.precision {
                    Precision::F64 => buf.put_f64_le(v),
                    Precision::F32 => buf.put_f32_le(v as f32),
                }
            }
        }
        Request::Stats => {
            buf.put_u8(Op::Stats as u8);
            buf.put_u8(0);
        }
        Request::Ping => {
            buf.put_u8(Op::Ping as u8);
            buf.put_u8(0);
        }
        Request::Shutdown => {
            buf.put_u8(Op::Shutdown as u8);
            buf.put_u8(0);
        }
        Request::Metrics => {
            buf.put_u8(Op::Metrics as u8);
            buf.put_u8(0);
        }
        Request::Traces => {
            buf.put_u8(Op::Traces as u8);
            buf.put_u8(0);
        }
        Request::TimeSeries => {
            buf.put_u8(Op::TimeSeries as u8);
            buf.put_u8(0);
        }
        Request::TraceFetch(id) => {
            buf.put_u8(Op::TraceFetch as u8);
            buf.put_u8(0);
            buf.put_u64_le(*id);
        }
    }
    buf
}

/// Decode a request payload into the owning form.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    decode_request_raw(buf).map(RawRequest::into_owned)
}

/// Decode a request payload zero-copy: query coordinates stay as a
/// borrowed byte slice into `buf` ([`RawQuery::coord_bytes`]), already
/// length-validated against the declared `m · dim · width`.
pub fn decode_request_raw(mut buf: &[u8]) -> Result<RawRequest<'_>, WireError> {
    if buf.remaining() < 4 + 2 + 1 + 1 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != REQ_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != 1 && version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let op = buf.get_u8();
    let prec_byte = buf.get_u8();
    match op {
        op if op == Op::Query as u8 || op == Op::BatchQuery as u8 => {
            let precision = Precision::from_byte(prec_byte)?;
            let trace_bytes = if version >= 2 { 8 } else { 0 };
            let fixed = 2 + 4 + trace_bytes + 4 + if op == Op::BatchQuery as u8 { 4 } else { 0 };
            if buf.remaining() < fixed {
                return Err(WireError::Truncated);
            }
            let k = buf.get_u16_le() as usize;
            let deadline_ms = buf.get_u32_le();
            let trace_id = if version >= 2 { buf.get_u64_le() } else { 0 };
            let dim = buf.get_u32_le() as usize;
            let m = if op == Op::BatchQuery as u8 {
                buf.get_u32_le() as usize
            } else {
                1
            };
            let want = m
                .checked_mul(dim)
                .and_then(|c| c.checked_mul(precision.byte() as usize))
                .ok_or(WireError::Oversized(usize::MAX))?;
            // cap the *declared* size before trusting it anywhere — a
            // hostile header must never drive an allocation decision
            if want > MAX_FRAME {
                return Err(WireError::Oversized(want));
            }
            if buf.remaining() < want {
                return Err(WireError::Truncated);
            }
            Ok(RawRequest::Query(RawQuery {
                precision,
                k,
                deadline_ms,
                trace_id,
                dim,
                m,
                coord_bytes: &buf[..want],
            }))
        }
        op if op == Op::Stats as u8 => Ok(RawRequest::Stats),
        op if op == Op::Ping as u8 => Ok(RawRequest::Ping),
        op if op == Op::Shutdown as u8 => Ok(RawRequest::Shutdown),
        op if op == Op::Metrics as u8 => Ok(RawRequest::Metrics),
        op if op == Op::Traces as u8 => Ok(RawRequest::Traces),
        op if op == Op::TimeSeries as u8 => Ok(RawRequest::TimeSeries),
        op if op == Op::TraceFetch as u8 => {
            if buf.remaining() < 8 {
                return Err(WireError::Truncated);
            }
            Ok(RawRequest::TraceFetch(buf.get_u64_le()))
        }
        other => Err(WireError::BadOp(other)),
    }
}

/// Encode a response payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 2 + 1 + 8 + resp.body.len());
    buf.put_slice(RESP_MAGIC);
    buf.put_u16_le(WIRE_VERSION);
    buf.put_u8(resp.status as u8);
    buf.put_u64_le(resp.trace_id);
    buf.put_slice(&resp.body);
    buf
}

/// Decode a response payload.
pub fn decode_response(mut buf: &[u8]) -> Result<Response, WireError> {
    if buf.remaining() < 4 + 2 + 1 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != RESP_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != 1 && version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let status = Status::from_byte(buf.get_u8())?;
    let trace_id = if version >= 2 {
        if buf.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        buf.get_u64_le()
    } else {
        0
    };
    Ok(Response {
        status,
        trace_id,
        body: buf.to_vec(),
    })
}

/// Write one frame (length prefix + payload).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Start a response *frame* (length prefix + response header) directly in
/// an output buffer: appends a length placeholder plus the response
/// header and returns the placeholder's offset for [`finish_frame`]. The
/// caller appends the body (e.g. `NeighborTable::encode_into`) in
/// between. Byte-identical to `write_frame(_, &encode_response(..))`, but
/// the buffer is the caller's — the shard hot path reuses one per
/// connection, so a steady-state reply performs no allocation.
pub fn begin_response_frame(out: &mut Vec<u8>, status: Status, trace_id: u64) -> usize {
    let mark = out.len();
    out.extend_from_slice(&[0u8; 4]); // length, patched by finish_frame
    out.extend_from_slice(RESP_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(status as u8);
    out.extend_from_slice(&trace_id.to_le_bytes());
    mark
}

/// Patch the length prefix written by [`begin_response_frame`] once the
/// body is in place.
pub fn finish_frame(out: &mut [u8], mark: usize) {
    let payload = out.len() - mark - 4;
    assert!(payload <= MAX_FRAME, "frame exceeds MAX_FRAME");
    out[mark..mark + 4].copy_from_slice(&(payload as u32).to_le_bytes());
}

/// Read one frame, blocking. `Ok(None)` on clean EOF before any byte of
/// the prefix; `UnexpectedEof` if the stream closes mid-frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    read_frame_poll(r, &|| false)
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one frame from a stream that may have a read timeout configured,
/// polling `should_stop` whenever a read times out.
///
/// * `Ok(None)` — clean EOF, or `should_stop()` turned true while no
///   frame bytes were pending.
/// * `Ok(Some(payload))` — one complete frame.
/// * `Err` — stream error, oversized frame ([`io::ErrorKind::InvalidData`]),
///   or a stall mid-frame after `should_stop()` turned true.
pub fn read_frame_poll<R: Read>(
    r: &mut R,
    should_stop: &dyn Fn() -> bool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    // Mid-frame stop: allow a few more timeout ticks for the sender to
    // finish, then give up so shutdown can't hang on a stalled client.
    let mut stall_ticks = 0u32;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if should_stop() {
                    if got == 0 {
                        return Ok(None);
                    }
                    stall_ticks += 1;
                    if stall_ticks > 20 {
                        return Err(io::ErrorKind::TimedOut.into());
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if should_stop() {
                    stall_ticks += 1;
                    if stall_ticks > 20 {
                        return Err(io::ErrorKind::TimedOut.into());
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// Milliseconds-to-`Duration` helper used on both ends of the deadline
/// header.
pub fn deadline_duration(deadline_ms: u32) -> Duration {
    Duration::from_millis(deadline_ms as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query(precision: Precision, m: usize) -> Request {
        Request::Query(QueryBody {
            precision,
            k: 5,
            deadline_ms: 250,
            trace_id: 0xfeed_beef_cafe_0042,
            dim: 3,
            m,
            coords: (0..m * 3).map(|i| i as f64 * 0.25).collect(),
        })
    }

    #[test]
    fn request_round_trips_all_ops() {
        for req in [
            sample_query(Precision::F64, 1),
            sample_query(Precision::F32, 1),
            sample_query(Precision::F64, 4),
            sample_query(Precision::F32, 7),
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
            Request::Metrics,
            Request::Traces,
            Request::TimeSeries,
            Request::TraceFetch(0xdead_beef_0042_1337),
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn f32_coords_narrow_exactly() {
        // dyadic coordinates survive the f64 -> f32 -> f64 round trip
        let req = sample_query(Precision::F32, 2);
        let bytes = encode_request(&req);
        let Request::Query(q) = decode_request(&bytes).unwrap() else {
            panic!("not a query");
        };
        assert_eq!(
            q.coords,
            (0..6).map(|i| i as f64 * 0.25).collect::<Vec<_>>()
        );
    }

    #[test]
    fn response_round_trips_all_statuses() {
        for resp in [
            Response {
                status: Status::Ok,
                trace_id: 7,
                body: vec![1, 2, 3],
            },
            Response {
                status: Status::OkDegraded,
                trace_id: u64::MAX,
                body: vec![4, 5],
            },
            Response {
                status: Status::PartialTopK,
                trace_id: 11,
                body: vec![6, 7, 8],
            },
            Response::empty(Status::Busy),
            Response::empty(Status::Timeout),
            Response::empty(Status::ShuttingDown),
            Response::error("dimension mismatch"),
            Response::bad_request("k exceeds reference count"),
            Response::internal_error("lane worker panicked"),
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "{:?}", resp.status);
        }
    }

    #[test]
    fn malformed_payloads_rejected() {
        let mut bad_magic = encode_request(&Request::Ping);
        bad_magic[0] = b'X';
        assert_eq!(decode_request(&bad_magic).unwrap_err(), WireError::BadMagic);

        let mut bad_version = encode_request(&Request::Ping);
        bad_version[4] = 99;
        assert_eq!(
            decode_request(&bad_version).unwrap_err(),
            WireError::BadVersion(99)
        );

        let mut bad_op = encode_request(&Request::Ping);
        bad_op[6] = 42;
        assert_eq!(decode_request(&bad_op).unwrap_err(), WireError::BadOp(42));

        let mut bad_prec = encode_request(&sample_query(Precision::F64, 1));
        bad_prec[7] = 3;
        assert_eq!(
            decode_request(&bad_prec).unwrap_err(),
            WireError::BadPrecision(3)
        );

        let full = encode_request(&sample_query(Precision::F64, 2));
        for cut in [0, 5, 7, 12, full.len() - 1] {
            assert_eq!(
                decode_request(&full[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }

        let mut bad_status = encode_response(&Response::empty(Status::Ok));
        bad_status[6] = 99;
        assert_eq!(
            decode_response(&bad_status).unwrap_err(),
            WireError::BadStatus(99)
        );
    }

    #[test]
    fn declared_coordinate_size_is_capped_before_allocation() {
        // a Query header declaring a dim that would need > MAX_FRAME
        // bytes of coordinates must be rejected as Oversized, not
        // trusted as an allocation size
        let mut buf = Vec::new();
        buf.extend_from_slice(REQ_MAGIC);
        buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        buf.push(1); // Op::Query
        buf.push(8); // f64
        buf.extend_from_slice(&5u16.to_le_bytes()); // k
        buf.extend_from_slice(&100u32.to_le_bytes()); // deadline
        buf.extend_from_slice(&9u64.to_le_bytes()); // trace id
        buf.extend_from_slice(&(u32::MAX).to_le_bytes()); // dim
        assert!(matches!(
            decode_request(&buf).unwrap_err(),
            WireError::Oversized(_)
        ));
    }

    #[test]
    fn v1_request_frames_still_decode_with_zero_trace_id() {
        // hand-built version-1 BatchQuery: no trace_id field on the wire
        let mut buf = Vec::new();
        buf.extend_from_slice(REQ_MAGIC);
        buf.extend_from_slice(&1u16.to_le_bytes()); // version 1
        buf.push(2); // Op::BatchQuery
        buf.push(4); // f32
        buf.extend_from_slice(&3u16.to_le_bytes()); // k
        buf.extend_from_slice(&200u32.to_le_bytes()); // deadline
        buf.extend_from_slice(&2u32.to_le_bytes()); // dim
        buf.extend_from_slice(&2u32.to_le_bytes()); // m
        for v in [1.0f32, 2.0, 3.0, 4.0] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let Request::Query(q) = decode_request(&buf).unwrap() else {
            panic!("not a query");
        };
        assert_eq!(q.trace_id, 0, "v1 frames carry no trace id");
        assert_eq!((q.k, q.deadline_ms, q.dim, q.m), (3, 200, 2, 2));
        assert_eq!(q.coords, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn v1_response_frames_still_decode_with_zero_trace_id() {
        let mut buf = Vec::new();
        buf.extend_from_slice(RESP_MAGIC);
        buf.extend_from_slice(&1u16.to_le_bytes()); // version 1
        buf.push(0); // Status::Ok
        buf.extend_from_slice(b"payload");
        let resp = decode_response(&buf).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.trace_id, 0);
        assert_eq!(resp.body, b"payload");
    }

    #[test]
    fn trace_id_round_trips_through_both_directions() {
        let req = sample_query(Precision::F64, 2);
        let Request::Query(q) = decode_request(&encode_request(&req)).unwrap() else {
            panic!("not a query");
        };
        assert_eq!(q.trace_id, 0xfeed_beef_cafe_0042);
        let resp = Response::empty(Status::Busy).with_trace(0xabc);
        assert_eq!(
            decode_response(&encode_response(&resp)).unwrap().trace_id,
            0xabc
        );
    }

    #[test]
    fn raw_decode_matches_owned_decode() {
        for req in [
            sample_query(Precision::F64, 1),
            sample_query(Precision::F32, 5),
            Request::Stats,
            Request::Ping,
        ] {
            let bytes = encode_request(&req);
            let raw = decode_request_raw(&bytes).unwrap();
            assert_eq!(raw.into_owned(), req, "{req:?}");
        }
        // the borrowed view exposes exactly the coordinate bytes
        let bytes = encode_request(&sample_query(Precision::F32, 3));
        let RawRequest::Query(raw) = decode_request_raw(&bytes).unwrap() else {
            panic!("not a query");
        };
        assert_eq!(raw.coord_bytes.len(), 3 * 3 * 4);
        assert_eq!(
            raw.coords().collect::<Vec<_>>(),
            (0..9).map(|i| i as f64 * 0.25).collect::<Vec<_>>()
        );
    }

    #[test]
    fn begin_finish_frame_matches_write_frame_of_encode_response() {
        let resp = Response {
            status: Status::OkDegraded,
            trace_id: 0x1122_3344_5566_7788,
            body: b"neighbor table bytes".to_vec(),
        };
        let mut expect = Vec::new();
        write_frame(&mut expect, &encode_response(&resp)).unwrap();

        let mut out = vec![0xAAu8; 3]; // frames append after earlier content
        let mark = begin_response_frame(&mut out, resp.status, resp.trace_id);
        out.extend_from_slice(&resp.body);
        finish_frame(&mut out, mark);
        assert_eq!(&out[..3], &[0xAA; 3]);
        assert_eq!(&out[3..], &expect[..]);
    }

    fn sample_partial() -> (PartialHeader, Vec<u8>) {
        let header = PartialHeader {
            partition_id: 2,
            epoch: 0xdead_0042,
            contributed: 1,
            total: 3,
            flags: 1,
            replica_id: 1,
            replicas: 2,
        };
        let mut body = Vec::new();
        header.encode_into(&mut body);
        body.extend_from_slice(b"table bytes follow to the end");
        (header, body)
    }

    #[test]
    fn partial_envelope_v1_decodes_as_lone_replica() {
        // hand-rolled v1 envelope (pre-replication backend): decodes
        // with replica identity 0 of 1 so old fleets keep merging
        let mut body = Vec::new();
        body.extend_from_slice(PARTIAL_MAGIC);
        body.extend_from_slice(&PARTIAL_VERSION_V1.to_le_bytes());
        body.extend_from_slice(&7u32.to_le_bytes()); // partition_id
        body.extend_from_slice(&42u64.to_le_bytes()); // epoch
        body.extend_from_slice(&1u16.to_le_bytes()); // contributed
        body.extend_from_slice(&8u16.to_le_bytes()); // total
        body.push(0); // flags
        body.extend_from_slice(b"tail");
        let (h, tail) = decode_partial(&body).unwrap();
        assert_eq!((h.partition_id, h.epoch), (7, 42));
        assert_eq!((h.replica_id, h.replicas), (0, 1));
        assert_eq!(tail, b"tail");
        // a v2 header truncated inside the replica fields is typed, not
        // misread as a v1 envelope
        let (_, v2) = sample_partial();
        assert_eq!(
            decode_partial(&v2[..PARTIAL_HEADER_LEN - 1]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn partial_envelope_round_trips() {
        let (header, body) = sample_partial();
        assert!(is_partial_body(&body));
        assert!(header.lane_degraded());
        let (back, table) = decode_partial(&body).unwrap();
        assert_eq!(back, header);
        assert_eq!(table, b"table bytes follow to the end");
        // an empty table payload is structurally fine at this layer
        let mut just_header = Vec::new();
        header.encode_into(&mut just_header);
        assert_eq!(decode_partial(&just_header).unwrap().1, b"");
    }

    #[test]
    fn partial_envelope_rejects_malformed_headers() {
        let (_, body) = sample_partial();
        for cut in [0, 3, PARTIAL_HEADER_LEN - 1] {
            assert_eq!(
                decode_partial(&body[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
        let mut bad_magic = body.clone();
        bad_magic[0] = b'X';
        assert!(!is_partial_body(&bad_magic));
        assert_eq!(decode_partial(&bad_magic).unwrap_err(), WireError::BadMagic);
        let mut bad_version = body.clone();
        bad_version[4] = 9;
        assert_eq!(
            decode_partial(&bad_version).unwrap_err(),
            WireError::BadVersion(9)
        );
        // a plain NeighborTable body is not sniffed as a partial
        assert!(!is_partial_body(b"GSNT..."));
        assert!(!is_partial_body(b""));
    }

    fn sample_annex() -> (Vec<AnnexSpan>, Vec<u8>) {
        let spans = vec![
            AnnexSpan {
                name: "decode".to_string(),
                start_ns: -1_200,
                dur_ns: 3_400,
            },
            AnnexSpan {
                name: "coalesce wait".to_string(),
                start_ns: 5_000,
                dur_ns: 250_000,
            },
            AnnexSpan {
                name: "kernel: distances".to_string(),
                start_ns: 260_000,
                dur_ns: 900_000,
            },
        ];
        let mut bytes = Vec::new();
        encode_span_annex(&spans, &mut bytes);
        (spans, bytes)
    }

    #[test]
    fn span_annex_round_trips() {
        let (spans, bytes) = sample_annex();
        assert_eq!(decode_span_annex(&bytes).unwrap(), spans);
        // empty annex is valid
        let mut empty = Vec::new();
        encode_span_annex(&[], &mut empty);
        assert_eq!(decode_span_annex(&empty).unwrap(), Vec::new());
    }

    #[test]
    fn span_annex_caps_are_enforced_on_both_ends() {
        // encode truncates long names (at a UTF-8 boundary) and drops
        // spans past the cap, so its output always decodes
        let many: Vec<AnnexSpan> = (0..MAX_ANNEX_SPANS + 10)
            .map(|i| AnnexSpan {
                name: format!("span-{i}-{}", "é".repeat(40)),
                start_ns: i as i64,
                dur_ns: 1,
            })
            .collect();
        let mut bytes = Vec::new();
        encode_span_annex(&many, &mut bytes);
        let back = decode_span_annex(&bytes).unwrap();
        assert_eq!(back.len(), MAX_ANNEX_SPANS);
        for span in &back {
            assert!(span.name.len() <= MAX_ANNEX_NAME);
        }
        // a hand-built annex declaring too many spans is rejected
        // before allocation
        let mut oversized = Vec::new();
        oversized.extend_from_slice(b"GSTA");
        oversized.extend_from_slice(&1u16.to_le_bytes());
        oversized.extend_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            decode_span_annex(&oversized).unwrap_err(),
            WireError::Oversized(_)
        ));
    }

    #[test]
    fn span_annex_rejects_malformed_bytes() {
        let (_, bytes) = sample_annex();
        for cut in [0, 3, 7, bytes.len() - 1] {
            assert_eq!(
                decode_span_annex(&bytes[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            decode_span_annex(&bad_magic).unwrap_err(),
            WireError::BadMagic
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert_eq!(
            decode_span_annex(&bad_version).unwrap_err(),
            WireError::BadVersion(9)
        );
        // non-UTF-8 name bytes decode lossily rather than erroring:
        // the name starts at offset 9 (magic 4 + version 2 + count 2 +
        // name_len 1)
        let mut bad_utf8 = bytes.clone();
        bad_utf8[9] = 0xFF;
        let spans = decode_span_annex(&bad_utf8).unwrap();
        assert!(spans[0].name.contains('\u{FFFD}'));
    }

    proptest::proptest! {
        /// The decoders must be total: arbitrary bytes (including
        /// adversarial headers) produce a typed error, never a panic or
        /// an unbounded allocation.
        #[test]
        fn decode_arbitrary_bytes_never_panics(
            raw in proptest::collection::vec(0usize..256, 0..512)
        ) {
            let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
            let _ = decode_request(&bytes);
            let _ = decode_request_raw(&bytes);
            let _ = decode_response(&bytes);
            let _ = is_partial_body(&bytes);
            let _ = decode_partial(&bytes);
            let _ = decode_span_annex(&bytes);
        }

        /// Single-byte corruption of a valid span annex: still total —
        /// the decoder either errors or returns some capped span list,
        /// never panics (same harness as the GSPK envelope fuzz).
        #[test]
        fn decode_corrupted_annex_never_panics(
            (pos, flip) in (0usize..1000, 1usize..256)
        ) {
            let (_, mut bytes) = sample_annex();
            let pos = pos % bytes.len();
            bytes[pos] ^= flip as u8;
            if let Ok(spans) = decode_span_annex(&bytes) {
                assert!(spans.len() <= MAX_ANNEX_SPANS);
            }
        }

        /// Single-byte corruption of a valid partial envelope: still
        /// total, and a corrupted header never silently yields the
        /// original header bit-for-bit unchanged fields plus the magic
        /// intact — decode either errors or returns *some* header.
        #[test]
        fn decode_corrupted_partial_never_panics(
            (pos, flip) in (0usize..1000, 1usize..256)
        ) {
            let (_, mut body) = sample_partial();
            let pos = pos % body.len();
            body[pos] ^= flip as u8;
            let _ = decode_partial(&body);
            let _ = is_partial_body(&body);
        }

        /// Single-byte corruption of a valid frame: still total, and the
        /// raw and owned decoders agree on every outcome.
        #[test]
        fn decode_corrupted_valid_frame_never_panics(
            (m, pos, flip) in (1usize..6, 0usize..1000, 1usize..256)
        ) {
            let mut bytes = encode_request(&sample_query(Precision::F32, m));
            let pos = pos % bytes.len();
            bytes[pos] ^= flip as u8;
            let owned = decode_request(&bytes);
            let raw = decode_request_raw(&bytes).map(RawRequest::into_owned);
            assert_eq!(owned, raw);
            let _ = decode_response(&bytes);
        }
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let mut wire = Vec::new();
        let a = encode_request(&Request::Ping);
        let b = encode_request(&sample_query(Precision::F32, 3));
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();

        let mut r: &[u8] = &wire;
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b);
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::Ping)).unwrap();
        let mut r: &[u8] = &wire[..wire.len() - 2];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // mid-prefix EOF too
        let mut r: &[u8] = &wire[..2];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r: &[u8] = &wire;
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
