//! The model-driven coalescing policy.
//!
//! Per-query service is the worst case for the GSKNN kernel: an `m = 1`
//! problem amortizes none of the reference packing (`Rc`, `R2c`) the §2.6
//! model charges per flush, so GFLOPS collapses. The coalescer therefore
//! holds arriving queries and flushes one batched kernel call when either
//!
//! * **Model** — the batch reached the *efficient regime*: the model's
//!   predicted GFLOPS for `(m, n, d, k)` is at least `frac` of its
//!   prediction at the asymptote ([`ASYMPTOTE_M`] queries), or the batch
//!   hit the configured hard cap; or
//! * **Deadline** — the oldest held request has spent half its latency
//!   budget waiting (the other half is reserved for the kernel itself).
//!
//! [`batch_target`] turns the first trigger into a precomputed constant
//! `m*` per (index, precision) pair, so the hot path is one integer
//! comparison.

use gsknn_core::model::Approach;
use gsknn_core::{Model, ProblemSize, Variant};

/// The `m` treated as "asymptotically large" when computing the GFLOPS
/// ceiling a batch is measured against (the paper's plots flatten well
/// before this).
pub const ASYMPTOTE_M: usize = 8192;

/// What made the coalescer flush a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// Batch reached the model-derived target `m*` (efficient regime).
    Model,
    /// The oldest request's coalesce budget ran out.
    Deadline,
    /// Shutdown drain — flushed whatever was held.
    Drain,
}

fn approach_for(model: &Model, p: &ProblemSize) -> Approach {
    match model.choose_variant(p) {
        Variant::Var6 => Approach::Var6,
        _ => Approach::Var1,
    }
}

/// Smallest batch size `m*` whose predicted GFLOPS reaches `frac` of the
/// asymptotic prediction for this problem shape, capped at `max_batch`.
///
/// `n` is the per-kernel-call reference count (the index's leaf size for
/// forest-routed queries), `d`/`k` the index dimension and the served
/// neighbor count. The scan is over the closed-form model only — no
/// kernel runs — so this is cheap enough to recompute per lane at
/// startup.
pub fn batch_target(
    model: &Model,
    n: usize,
    d: usize,
    k: usize,
    frac: f64,
    max_batch: usize,
) -> usize {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    let max_batch = max_batch.max(1);
    let asym = ProblemSize {
        m: ASYMPTOTE_M.max(max_batch),
        n,
        d,
        k,
    };
    let approach = approach_for(model, &asym);
    let goal = frac * model.gflops(&asym, approach);
    for m in 1..=max_batch {
        let p = ProblemSize { m, n, d, k };
        if model.gflops(&p, approach) >= goal {
            return m;
        }
    }
    max_batch
}

/// Model-predicted cost of one flushed batch of `m` queries against a
/// forest of `n_trees` trees with `leaf_size`-reference leaves, with the
/// itemized terms (the paper's Table 4 rows plus the compute term).
///
/// Approximation, stated: the forest solves one cross-table kernel per
/// (tree, routed leaf) *group* of queries; this prices the batch as if
/// each tree kept the batch whole (`n_trees` calls of `(m, leaf_size, d,
/// k)`). Fragmented routing repacks references more often than that, so
/// measured cost drifting above predicted is expected at small leaf
/// occupancy — which is exactly what the [`gsknn_obs::ServeReport`]
/// drift row is for.
pub fn predict_batch_cost(
    model: &Model,
    n_trees: usize,
    leaf_size: usize,
    m: usize,
    d: usize,
    k: usize,
) -> (f64, Vec<(&'static str, f64)>) {
    let p = ProblemSize {
        m,
        n: leaf_size.max(1),
        d,
        k,
    };
    let approach = approach_for(model, &p);
    let scale = n_trees.max(1) as f64;
    let mut terms: Vec<(&'static str, f64)> = model
        .tm_terms(&p, approach)
        .into_iter()
        .map(|(name, s)| (name, s * scale))
        .collect();
    terms.push(("compute (Tf + To)", model.t_compute(&p) * scale));
    let total = model.predict(&p, approach) * scale;
    (total, terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsknn_core::MachineParams;

    fn model() -> Model {
        Model::new(MachineParams::ivy_bridge_1core())
    }

    #[test]
    fn target_grows_with_the_efficiency_bar() {
        let m = model();
        let lo = batch_target(&m, 512, 16, 8, 0.25, 4096);
        let hi = batch_target(&m, 512, 16, 8, 0.90, 4096);
        assert!(lo >= 1);
        assert!(hi >= lo, "stricter frac must not shrink m*: {lo} vs {hi}");
        assert!(hi <= 4096);
    }

    #[test]
    fn zero_frac_is_satisfied_immediately() {
        assert_eq!(batch_target(&model(), 512, 16, 8, 0.0, 4096), 1);
    }

    #[test]
    fn cap_clamps_an_unreachable_bar() {
        // frac = 1.0 requires the asymptote itself; a small cap clamps it
        let t = batch_target(&model(), 2048, 64, 16, 1.0, 32);
        assert_eq!(t, 32);
    }

    #[test]
    fn target_meets_the_bar_it_claims() {
        let m = model();
        let (n, d, k, frac, cap) = (1024usize, 32usize, 8usize, 0.8f64, 8192usize);
        let t = batch_target(&m, n, d, k, frac, cap);
        let asym = ProblemSize {
            m: ASYMPTOTE_M,
            n,
            d,
            k,
        };
        let approach = approach_for(&m, &asym);
        let goal = frac * m.gflops(&asym, approach);
        let at_t = m.gflops(&ProblemSize { m: t, n, d, k }, approach);
        assert!(at_t >= goal, "m* = {t}: {at_t} < {goal}");
        if t > 1 {
            let below = m.gflops(&ProblemSize { m: t - 1, n, d, k }, approach);
            assert!(
                below < goal,
                "m* not minimal: {below} >= {goal} at m = {}",
                t - 1
            );
        }
    }

    #[test]
    fn predicted_cost_scales_with_trees_and_sums_terms() {
        let m = model();
        let (t1, terms1) = predict_batch_cost(&m, 1, 512, 64, 16, 8);
        let (t4, _) = predict_batch_cost(&m, 4, 512, 64, 16, 8);
        assert!(t1 > 0.0);
        assert!((t4 - 4.0 * t1).abs() < 1e-12 * t4.max(1.0));
        let sum: f64 = terms1.iter().map(|(_, s)| s).sum();
        // terms = Tm rows + compute; predict = max-ish combination, so the
        // itemization must at least cover the total's components
        assert!(sum > 0.0);
        assert!(terms1.iter().any(|(n, _)| n.contains("compute")));
    }
}
