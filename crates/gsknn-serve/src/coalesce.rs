//! The model-driven coalescing policy.
//!
//! Per-query service is the worst case for the GSKNN kernel: an `m = 1`
//! problem amortizes none of the reference packing (`Rc`, `R2c`) the §2.6
//! model charges per flush, so GFLOPS collapses. The coalescer therefore
//! holds arriving queries and flushes one batched kernel call when either
//!
//! * **Model** — the batch reached the *efficient regime*: the model's
//!   predicted GFLOPS for `(m, n, d, k)` is at least `frac` of its
//!   prediction at the asymptote ([`ASYMPTOTE_M`] queries), or the batch
//!   hit the configured hard cap; or
//! * **Deadline** — the oldest held request has spent half its latency
//!   budget waiting (the other half is reserved for the kernel itself).
//!
//! [`batch_target`] turns the first trigger into a precomputed constant
//! `m*` per (index, precision) pair, so the hot path is one integer
//! comparison.

use gsknn_core::model::Approach;
use gsknn_core::{Model, ProblemSize, Variant};

/// The `m` treated as "asymptotically large" when computing the GFLOPS
/// ceiling a batch is measured against (the paper's plots flatten well
/// before this).
pub const ASYMPTOTE_M: usize = 8192;

/// What made the coalescer flush a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// Batch reached the model-derived target `m*` (efficient regime).
    Model,
    /// The oldest request's coalesce budget ran out.
    Deadline,
    /// Shutdown drain — flushed whatever was held.
    Drain,
}

fn approach_for(model: &Model, p: &ProblemSize) -> Approach {
    match model.choose_variant(p) {
        Variant::Var6 => Approach::Var6,
        _ => Approach::Var1,
    }
}

/// Smallest batch size `m*` whose predicted GFLOPS reaches `frac` of the
/// asymptotic prediction for this problem shape, capped at `max_batch`.
///
/// `n` is the per-kernel-call reference count (the index's leaf size for
/// forest-routed queries), `d`/`k` the index dimension and the served
/// neighbor count. The scan is over the closed-form model only — no
/// kernel runs — so this is cheap enough to recompute per lane at
/// startup.
pub fn batch_target(
    model: &Model,
    n: usize,
    d: usize,
    k: usize,
    frac: f64,
    max_batch: usize,
) -> usize {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    let max_batch = max_batch.max(1);
    let asym = ProblemSize {
        m: ASYMPTOTE_M.max(max_batch),
        n,
        d,
        k,
    };
    let approach = approach_for(model, &asym);
    let goal = frac * model.gflops(&asym, approach);
    for m in 1..=max_batch {
        let p = ProblemSize { m, n, d, k };
        if model.gflops(&p, approach) >= goal {
            return m;
        }
    }
    max_batch
}

/// Model-predicted cost of one flushed batch of `m` queries against a
/// forest of `n_trees` trees with `leaf_size`-reference leaves, with the
/// itemized terms (the paper's Table 4 rows plus the compute term).
///
/// Approximation, stated: the forest solves one cross-table kernel per
/// (tree, routed leaf) *group* of queries; this prices the batch as if
/// each tree kept the batch whole (`n_trees` calls of `(m, leaf_size, d,
/// k)`). Fragmented routing repacks references more often than that, so
/// measured cost drifting above predicted is expected at small leaf
/// occupancy — which is exactly what the [`gsknn_obs::ServeReport`]
/// drift row is for.
pub fn predict_batch_cost(
    model: &Model,
    n_trees: usize,
    leaf_size: usize,
    m: usize,
    d: usize,
    k: usize,
) -> (f64, Vec<(&'static str, f64)>) {
    let mut terms = Vec::new();
    let total = predict_batch_cost_into(model, n_trees, leaf_size, m, d, k, &mut terms);
    (total, terms)
}

/// [`predict_batch_cost`] into a caller-owned term buffer (cleared
/// first). The shard flush path calls this once per batch with a
/// retained buffer, keeping the steady-state query path allocation-free.
pub fn predict_batch_cost_into(
    model: &Model,
    n_trees: usize,
    leaf_size: usize,
    m: usize,
    d: usize,
    k: usize,
    terms: &mut Vec<(&'static str, f64)>,
) -> f64 {
    let p = ProblemSize {
        m,
        n: leaf_size.max(1),
        d,
        k,
    };
    let approach = approach_for(model, &p);
    let scale = n_trees.max(1) as f64;
    model.tm_terms_into(&p, approach, terms);
    for term in terms.iter_mut() {
        term.1 *= scale;
    }
    terms.push(("compute (Tf + To)", model.t_compute(&p) * scale));
    model.predict(&p, approach) * scale
}

/// The total of [`predict_batch_cost`] without the itemization — and
/// without touching the heap, so the adaptive flush decision can run it
/// on every poll tick.
pub fn predict_batch_total(
    model: &Model,
    n_trees: usize,
    leaf_size: usize,
    m: usize,
    d: usize,
    k: usize,
) -> f64 {
    let p = ProblemSize {
        m,
        n: leaf_size.max(1),
        d,
        k,
    };
    let approach = approach_for(model, &p);
    model.predict(&p, approach) * n_trees.max(1) as f64
}

/// Time constant of the arrival-rate EWMA: how much history the adaptive
/// flush decision weighs. Short enough to track a load step within a few
/// hundred milliseconds, long enough not to chase single-frame jitter.
pub const ARRIVAL_TAU_S: f64 = 0.25;

/// Exponentially-weighted moving average of the query arrival rate, fed
/// by the shard as requests land. Plain struct, no atomics — each shard
/// owns one per lane.
#[derive(Clone, Copy, Debug)]
pub struct ArrivalRate {
    rate_qps: f64,
    last_s: Option<f64>,
}

impl Default for ArrivalRate {
    fn default() -> Self {
        ArrivalRate::new()
    }
}

impl ArrivalRate {
    /// Start with no history (rate reads 0 until the second arrival).
    pub fn new() -> Self {
        ArrivalRate {
            rate_qps: 0.0,
            last_s: None,
        }
    }

    /// Record `m` query points arriving at time `now_s` (seconds on any
    /// monotonic clock).
    pub fn observe(&mut self, m: usize, now_s: f64) {
        match self.last_s {
            None => self.last_s = Some(now_s),
            Some(last) => {
                let dt = (now_s - last).max(1e-6);
                let inst = m as f64 / dt;
                let alpha = 1.0 - (-dt / ARRIVAL_TAU_S).exp();
                self.rate_qps += alpha * (inst - self.rate_qps);
                self.last_s = Some(now_s);
            }
        }
    }

    /// Current smoothed arrival rate in query points per second.
    pub fn qps(&self) -> f64 {
        self.rate_qps
    }
}

/// Adaptive flush decision (§2.6 model applied to the *waiting* tradeoff):
/// given `m` query points already held, a smoothed arrival rate, and the
/// oldest held request's remaining coalesce budget, decide whether
/// waiting for more arrivals can still pay for the latency it adds.
///
/// Waiting until the batch would reach `m2 = min(target, m + rate ·
/// remaining)` points costs every held query `(m2 - m) / rate` seconds of
/// extra wait, and saves each of the `m2` queries the difference in
/// model-predicted per-query time `cost(m)/m - cost(m2)/m2`. Flush now
/// when the total saving cannot cover the total added wait (or nothing
/// more is expected to arrive); keep holding otherwise.
#[allow(clippy::too_many_arguments)]
pub fn adaptive_should_flush(
    model: &Model,
    n_trees: usize,
    leaf_size: usize,
    d: usize,
    k: usize,
    m: usize,
    target: usize,
    rate_qps: f64,
    remaining_s: f64,
) -> bool {
    debug_assert!(m >= 1);
    if m >= target || remaining_s <= 0.0 {
        return true;
    }
    // expected arrivals within the oldest request's remaining budget
    let expect = (rate_qps * remaining_s).floor() as usize;
    if expect == 0 {
        return true;
    }
    let m2 = target.min(m + expect);
    if m2 <= m {
        return true;
    }
    let cost_now = predict_batch_total(model, n_trees, leaf_size, m, d, k);
    let cost_then = predict_batch_total(model, n_trees, leaf_size, m2, d, k);
    let saved_per_query = cost_now / m as f64 - cost_then / m2 as f64;
    let wait_s = (m2 - m) as f64 / rate_qps;
    // total predicted saving across the grown batch vs total added wait
    saved_per_query * m2 as f64 <= wait_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsknn_core::MachineParams;

    fn model() -> Model {
        Model::new(MachineParams::ivy_bridge_1core())
    }

    #[test]
    fn target_grows_with_the_efficiency_bar() {
        let m = model();
        let lo = batch_target(&m, 512, 16, 8, 0.25, 4096);
        let hi = batch_target(&m, 512, 16, 8, 0.90, 4096);
        assert!(lo >= 1);
        assert!(hi >= lo, "stricter frac must not shrink m*: {lo} vs {hi}");
        assert!(hi <= 4096);
    }

    #[test]
    fn zero_frac_is_satisfied_immediately() {
        assert_eq!(batch_target(&model(), 512, 16, 8, 0.0, 4096), 1);
    }

    #[test]
    fn cap_clamps_an_unreachable_bar() {
        // frac = 1.0 requires the asymptote itself; a small cap clamps it
        let t = batch_target(&model(), 2048, 64, 16, 1.0, 32);
        assert_eq!(t, 32);
    }

    #[test]
    fn target_meets_the_bar_it_claims() {
        let m = model();
        let (n, d, k, frac, cap) = (1024usize, 32usize, 8usize, 0.8f64, 8192usize);
        let t = batch_target(&m, n, d, k, frac, cap);
        let asym = ProblemSize {
            m: ASYMPTOTE_M,
            n,
            d,
            k,
        };
        let approach = approach_for(&m, &asym);
        let goal = frac * m.gflops(&asym, approach);
        let at_t = m.gflops(&ProblemSize { m: t, n, d, k }, approach);
        assert!(at_t >= goal, "m* = {t}: {at_t} < {goal}");
        if t > 1 {
            let below = m.gflops(&ProblemSize { m: t - 1, n, d, k }, approach);
            assert!(
                below < goal,
                "m* not minimal: {below} >= {goal} at m = {}",
                t - 1
            );
        }
    }

    #[test]
    fn ewma_converges_to_a_steady_rate_and_tracks_steps() {
        let mut r = ArrivalRate::new();
        // 1000 qps steady: one point per millisecond
        for i in 0..2000 {
            r.observe(1, i as f64 * 1e-3);
        }
        assert!((r.qps() - 1000.0).abs() < 50.0, "steady rate: {}", r.qps());
        // step down to 100 qps; within ~4 tau it should be close
        for i in 0..100 {
            r.observe(1, 2.0 + i as f64 * 1e-2);
        }
        assert!((r.qps() - 100.0).abs() < 30.0, "stepped rate: {}", r.qps());
    }

    #[test]
    fn ewma_first_arrival_reads_zero() {
        let mut r = ArrivalRate::new();
        r.observe(5, 1.0);
        assert_eq!(r.qps(), 0.0);
    }

    #[test]
    fn adaptive_flushes_at_target_or_exhausted_budget() {
        let m = model();
        // at target: always flush
        assert!(adaptive_should_flush(&m, 1, 512, 16, 8, 64, 64, 1e6, 0.02));
        // budget spent: always flush
        assert!(adaptive_should_flush(&m, 1, 512, 16, 8, 1, 64, 1e6, 0.0));
        // dead lane (no arrivals expected): flush rather than strand
        assert!(adaptive_should_flush(&m, 1, 512, 16, 8, 1, 64, 0.0, 0.02));
    }

    #[test]
    fn adaptive_holds_under_fast_arrivals_and_flushes_under_slow() {
        let mdl = model();
        let (n_trees, leaf, d, k, target) = (1usize, 512usize, 16usize, 8usize, 256usize);
        // tiny batch, arrivals fast enough to double it well within
        // budget: the per-query amortization win dwarfs the microseconds
        // of extra wait, so hold
        assert!(!adaptive_should_flush(
            &mdl, n_trees, leaf, d, k, 2, target, 1e6, 0.02
        ));
        // same batch, arrivals so slow the batch barely grows while every
        // held query eats most of a second of wait: flush
        assert!(adaptive_should_flush(
            &mdl, n_trees, leaf, d, k, 2, target, 10.0, 0.5
        ));
    }

    #[test]
    fn cost_into_and_total_agree_with_the_allocating_form() {
        let m = model();
        let (total, terms) = predict_batch_cost(&m, 4, 512, 64, 16, 8);
        assert_eq!(total, predict_batch_total(&m, 4, 512, 64, 16, 8));
        // a reused (dirty) buffer is cleared and refilled identically
        let mut buf = vec![("stale", 99.0)];
        let total2 = predict_batch_cost_into(&m, 4, 512, 64, 16, 8, &mut buf);
        assert_eq!(total, total2);
        assert_eq!(terms, buf);
    }

    #[test]
    fn predicted_cost_scales_with_trees_and_sums_terms() {
        let m = model();
        let (t1, terms1) = predict_batch_cost(&m, 1, 512, 64, 16, 8);
        let (t4, _) = predict_batch_cost(&m, 4, 512, 64, 16, 8);
        assert!(t1 > 0.0);
        assert!((t4 - 4.0 * t1).abs() < 1e-12 * t4.max(1.0));
        let sum: f64 = terms1.iter().map(|(_, s)| s).sum();
        // terms = Tm rows + compute; predict = max-ish combination, so the
        // itemization must at least cover the total's components
        assert!(sum > 0.0);
        assert!(terms1.iter().any(|(n, _)| n.contains("compute")));
    }
}
