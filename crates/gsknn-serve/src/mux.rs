//! Readiness multiplexing for the shard event loop: a thin wrapper over
//! `poll(2)` so one thread can watch its whole connection slice plus the
//! acceptor hand-off without an async runtime. A connection costs a file
//! descriptor and a slab slot, not a thread.
//!
//! Declared via a raw `extern "C"` binding (the same discipline as the
//! server's SIGTERM handler — no libc crate dependency). On non-unix
//! targets [`poll_fds`] degrades to "sleep briefly, report everything
//! readable": callers already treat readiness as a hint and handle
//! `WouldBlock` on the actual nonblocking reads, so the fallback is
//! merely a busier loop, not a behavioral change.

use std::io;

/// Readable-data event bit (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable-without-blocking event bit (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (`POLLERR`, always polled implicitly).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (`POLLHUP`, always polled implicitly).
pub const POLLHUP: i16 = 0x010;

/// One `struct pollfd`, ABI-compatible with the kernel's.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct PollFd {
    /// The file descriptor to watch (a negative fd is ignored by the
    /// kernel — the slab uses that for vacated slots).
    pub fd: i32,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Kernel-reported events.
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for the given events.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// `true` if any requested or error event fired.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    /// `true` if the descriptor has data to read (or a hang-up / error to
    /// observe, which a read also surfaces).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// `true` if the descriptor can be written without blocking.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

/// Block until at least one descriptor is ready or `timeout_ms` elapses
/// (0 = return immediately, negative = wait forever). Returns the number
/// of ready descriptors; 0 means timeout. `EINTR` reads as a timeout —
/// the shard loop re-checks its deadlines on every wakeup anyway.
#[cfg(unix)]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        for f in fds.iter_mut() {
            f.revents = 0;
        }
        return Ok(0);
    }
    Err(err)
}

/// Non-unix fallback: nap for (a bounded slice of) the timeout and claim
/// everything ready, degrading the caller to plain nonblocking polling.
#[cfg(not(unix))]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let nap = if timeout_ms < 0 {
        5
    } else {
        timeout_ms.min(5) as u64
    };
    if nap > 0 {
        std::thread::sleep(std::time::Duration::from_millis(nap));
    }
    let mut n = 0;
    for f in fds.iter_mut() {
        if f.fd >= 0 {
            f.revents = f.events;
            n += 1;
        } else {
            f.revents = 0;
        }
    }
    Ok(n)
}

/// The raw fd of a stream, for [`PollFd::new`].
#[cfg(unix)]
pub fn raw_fd(stream: &std::net::TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

/// Non-unix fallback: no usable fd; the slab polls every slot.
#[cfg(not(unix))]
pub fn raw_fd(_stream: &std::net::TcpStream) -> i32 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn pollfd_layout_matches_the_kernel_struct() {
        assert_eq!(std::mem::size_of::<PollFd>(), 8);
        assert_eq!(std::mem::align_of::<PollFd>(), 4);
    }

    #[test]
    fn timeout_returns_zero_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut fds = [PollFd::new(raw_fd(&stream), POLLIN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        #[cfg(unix)]
        {
            assert_eq!(n, 0, "no data pending");
            assert!(!fds[0].readable());
        }
        #[cfg(not(unix))]
        let _ = n;
    }

    #[test]
    fn pending_data_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let mut fds = [PollFd::new(raw_fd(&server_side), POLLIN | POLLOUT)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable());
        assert!(fds[0].writable(), "fresh socket is writable");
    }

    #[test]
    fn negative_fd_slots_are_ignored() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [
            PollFd::new(-1, POLLIN),
            PollFd::new(raw_fd(&server_side), POLLIN),
        ];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert!(n >= 1);
        assert!(!fds[0].ready(), "vacated slot must stay quiet");
        assert!(fds[1].readable());
    }
}
