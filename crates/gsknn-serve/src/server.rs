//! The query service: a `TcpListener` acceptor round-robining
//! connections over **thread-per-core shards** ([`crate::shard`]). No
//! async runtime — crossbeam scoped threads and channels only (see
//! DESIGN.md §9).
//!
//! Request lifecycle:
//!
//! 1. The acceptor hands each fresh `TcpStream` to a shard. From then on
//!    the shard thread owns the connection outright: nonblocking reads,
//!    frame parsing, validation (dimension, `k ≤ k_max`, finite
//!    coordinates), and all-or-nothing admission against the bounded
//!    in-flight budget (`Busy` on overflow).
//! 2. Admitted queries park in the shard's per-precision lane: their
//!    coordinates land zero-copy in the lane's pack buffer and a
//!    [`crate::shard::PendingJob`] rides along. The lane coalesces until
//!    the §2.6 model says the batch reached the efficient regime
//!    (`m ≥ m*`, see [`crate::coalesce::batch_target`]), the **oldest**
//!    parked job has spent half its latency budget, or — with
//!    [`ServerConfig::adaptive_coalesce`] — the EWMA arrival-rate model
//!    says waiting for more traffic can no longer pay for itself.
//! 3. The flushed batch runs *inline on the shard thread* through its
//!    reusable workspace at the batch's largest `k`; each job's rows are
//!    truncated to its own `k` and sent back as NeighborTable v2 bytes.
//!    Jobs whose full budget elapsed before the kernel started are
//!    answered `Timeout` without computing.
//! 4. `Shutdown` (or SIGTERM) flips the drain flag: parked batches flush
//!    as `Drain`, new queries get `ShuttingDown`, shards push their
//!    remaining replies and exit, and `run` returns the final
//!    [`ServeReport`].
//!
//! Failure semantics (see DESIGN.md §10):
//!
//! * **Supervision** — the kernel call runs under `catch_unwind`. A
//!   panicking batch answers every live job `InternalError` (nothing was
//!   computed, so clients may retry), the shard's workspace — which the
//!   panic may have left half-packed — is discarded and rebuilt, and the
//!   shard keeps serving its other connections. Counted as
//!   `worker_panics` / `worker_respawns`, globally and per shard.
//! * **Degradation** — a monitor thread feeds queue pressure into an
//!   [`OverloadDetector`]; while overloaded, lanes shrink their batch
//!   target ([`crate::degrade::degraded_target`]) to bound latency, and
//!   with
//!   [`ServerConfig::degrade_precision`] f64 queries are answered from
//!   the f32 lane as `OkDegraded` (the v2 table encoding is
//!   cross-precision, so clients decode transparently).
//! * **Injection** — with the `faults` feature, [`gsknn_faults`] points
//!   corrupt decoded frames, force premature flushes, and panic batch
//!   execution on demand (`tests/chaos.rs`); off, they compile away.

use crate::coalesce::batch_target;
use crate::degrade::{OverloadDetector, Transition};
use crate::metrics::Metrics;
use crate::sampler::LoadSampler;
use crate::shard::{shard_main, ShardCtx};
use crate::trace::FragmentRing;
use crossbeam::channel;
use dataset::{DistanceKind, PointSet};
use gsknn_core::{MachineParams, Model};
use gsknn_obs::{ServeReport, TraceRing};
use rkdt::Forest;
use std::io;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide SIGTERM flag (the handler may not touch anything else).
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Register a minimal SIGTERM handler that flips [`SIGTERM`], so `kill`
/// drains the server exactly like the wire `Shutdown` op. No-op off unix.
fn install_sigterm() {
    #[cfg(unix)]
    {
        extern "C" fn on_term(_signum: i32) {
            SIGTERM.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM_NUM: i32 = 15;
        unsafe {
            signal(SIGTERM_NUM, on_term as *const () as usize);
        }
    }
}

/// Identity of this server inside a partitioned (scatter-gather)
/// deployment. When set, every successful query reply is wrapped in the
/// `GSPK` partial envelope ([`crate::wire::PartialHeader`]) under
/// [`Status::PartialTopK`](crate::wire::Status), and neighbor ids are
/// shifted by `offset` at encode time so they are global row ids — the
/// router merges partials without any id translation table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionCfg {
    /// This backend's partition index, `0..total`.
    pub id: u16,
    /// Total partitions in the deployment.
    pub total: u16,
    /// Global row id of this partition's first reference point. Added to
    /// every non-sentinel neighbor id on the wire.
    pub offset: u32,
    /// Deployment epoch: the router rejects partials from a different
    /// epoch so a stale backend can never contribute rows from an old
    /// partitioning.
    pub epoch: u64,
    /// Which replica of the partition this server is, `0..replicas`.
    /// Replicas hold identical slices; the id only identifies the copy
    /// in envelopes, metrics and the router's failover accounting.
    pub replica: u16,
    /// How many replicas serve this partition (1 = unreplicated).
    pub replicas: u16,
}

impl PartitionCfg {
    /// An unreplicated partition (replica 0 of 1) — the pre-replication
    /// shape, and the default for `serve --partition` without
    /// `--replica`.
    pub fn solo(id: u16, total: u16, offset: u32, epoch: u64) -> Self {
        PartitionCfg {
            id,
            total,
            offset,
            epoch,
            replica: 0,
            replicas: 1,
        }
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Shard threads (each owns both precision lanes and its slice of
    /// connections). `0` auto-detects: available parallelism, clamped to
    /// `1..=8`.
    pub shards: usize,
    /// Pin shard `i` to core `i` (`sched_setaffinity`; linux only, a
    /// no-op elsewhere). Keeps a shard's reusable workspace resident in
    /// one core's cache.
    pub pin_cores: bool,
    /// Flush undersized batches early when the EWMA arrival rate says
    /// waiting for the model target costs more latency than the larger
    /// batch would save (see [`crate::coalesce::adaptive_should_flush`]).
    /// Off, undersized batches wait out the fixed deadline-half bound.
    pub adaptive_coalesce: bool,
    /// Legacy knob from the thread-per-connection server; shards execute
    /// kernels inline, so this is accepted and ignored.
    pub workers_per_lane: usize,
    /// Admission bound: maximum in-flight query points across both lanes.
    pub queue_cap: usize,
    /// Model trigger: flush when predicted GFLOPS reaches this fraction
    /// of the asymptote for the index's shape.
    pub coalesce_frac: f64,
    /// Hard cap on a coalesced batch (also clamps the model target).
    pub max_batch: usize,
    /// Largest `k` a request may ask for.
    pub k_max: usize,
    /// Distance served.
    pub kind: DistanceKind,
    /// While overloaded, answer f64 queries from the f32 lane with
    /// `Status::OkDegraded` (correct neighbor ids at reduced distance
    /// precision) instead of making them wait for the slower lane.
    pub degrade_precision: bool,
    /// Enter overload once in-flight queries stay at or above this
    /// fraction of `queue_cap` for a full [`ServerConfig::overload_window`].
    pub overload_threshold: f64,
    /// How long queue pressure must hold before the overload state
    /// flips (entry and recovery; see [`OverloadDetector`]).
    pub overload_window: Duration,
    /// Log a line to stderr for every request slower than this many
    /// milliseconds end-to-end (with the span breakdown when tracing is
    /// compiled in). `None` disables the slow-query log.
    pub slow_query_ms: Option<u64>,
    /// Serve the Prometheus-style metrics exposition over plain HTTP on
    /// this address (e.g. `"127.0.0.1:9109"`). `None` leaves only the
    /// wire `Metrics` op.
    pub metrics_addr: Option<String>,
    /// Capacity of the slowest-traces ring exported by the wire `Traces`
    /// op. `0` disables trace retention (spans are still recorded for
    /// the slow-query log).
    pub trace_ring: usize,
    /// When serving one partition of a scatter-gather deployment, the
    /// partition identity ([`PartitionCfg`]). `None` (the default) keeps
    /// plain single-node replies.
    pub partition: Option<PartitionCfg>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 1,
            pin_cores: false,
            adaptive_coalesce: false,
            workers_per_lane: 1,
            queue_cap: 1024,
            coalesce_frac: 0.9,
            max_batch: 512,
            k_max: 128,
            kind: DistanceKind::SqL2,
            degrade_precision: false,
            overload_threshold: 0.75,
            overload_window: Duration::from_millis(250),
            slow_query_ms: None,
            metrics_addr: None,
            trace_ring: 32,
            partition: None,
        }
    }
}

impl ServerConfig {
    /// The shard count [`Server::run`] will use: `shards`, or the
    /// machine's available parallelism clamped to `1..=8` when 0.
    pub fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        }
    }
}

/// The loaded index: one reference table (kept in both precisions — the
/// forest's split projections are precision-free, so a single forest
/// routes either cast) plus its randomized-KD-tree forest.
pub struct ServeIndex {
    pub(crate) refs64: PointSet<f64>,
    pub(crate) refs32: PointSet<f32>,
    pub(crate) forest: Forest,
    pub(crate) n_trees: usize,
    pub(crate) leaf_size: usize,
}

impl ServeIndex {
    /// Build the forest over `refs` and cache the f32 cast.
    pub fn build(refs: PointSet<f64>, n_trees: usize, leaf_size: usize, seed: u64) -> Self {
        assert!(!refs.is_empty(), "cannot serve an empty index");
        let forest = Forest::build(&refs, n_trees, leaf_size, seed);
        ServeIndex {
            refs32: refs.cast::<f32>(),
            refs64: refs,
            forest,
            n_trees,
            leaf_size,
        }
    }

    /// Point dimension.
    pub fn dim(&self) -> usize {
        self.refs64.dim()
    }

    /// Reference count.
    pub fn len(&self) -> usize {
        self.refs64.len()
    }

    /// Never true post-build (`build` rejects empty tables).
    pub fn is_empty(&self) -> bool {
        self.refs64.len() == 0
    }

    /// Trees in the forest.
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Leaf size the forest was built with.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }
}

/// State shared by the shards, the acceptor, the overload monitor and
/// the metrics listener.
pub(crate) struct Shared {
    pub(crate) metrics: Metrics,
    pub(crate) shutdown: AtomicBool,
    /// Overload state, owned by the monitor thread.
    pub(crate) degraded: AtomicBool,
    pub(crate) degrade_precision: bool,
    pub(crate) dim: usize,
    pub(crate) n_refs: usize,
    pub(crate) queue_cap: usize,
    pub(crate) k_max: usize,
    pub(crate) targets: Vec<(String, usize)>,
    /// Server start; trace timestamps are microseconds since this.
    pub(crate) epoch: Instant,
    /// The N slowest finished request traces, for the `Traces` wire op.
    pub(crate) traces: TraceRing,
    /// Span-annex fragments for recently finished requests, keyed by
    /// trace id — served raw by the `TraceFetch` wire op so a router can
    /// stitch this backend's side of a distributed trace after the fact.
    /// Zero-sized and inert without the `obs` feature.
    pub(crate) frags: FragmentRing,
    /// Server-assigned trace ids for requests that sent `trace_id = 0`
    /// (starts at 1; 0 means "no id" on the wire).
    pub(crate) next_trace: AtomicU64,
    pub(crate) slow_query_ms: Option<u64>,
    /// Per-second load time-series for the `TimeSeries` wire op
    /// (zero-sized without the `obs` feature).
    pub(crate) sampler: LoadSampler,
    /// Partition identity for scatter-gather replies (`None` = plain
    /// single-node server).
    pub(crate) partition: Option<PartitionCfg>,
}

impl Shared {
    pub(crate) fn new(
        cfg: &ServerConfig,
        dim: usize,
        n_refs: usize,
        targets: Vec<(String, usize)>,
        n_shards: usize,
    ) -> Shared {
        Shared {
            metrics: Metrics::for_shards(n_shards),
            shutdown: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            degrade_precision: cfg.degrade_precision,
            dim,
            n_refs,
            queue_cap: cfg.queue_cap.max(1),
            k_max: cfg.k_max.max(1),
            targets,
            epoch: Instant::now(),
            traces: TraceRing::new(cfg.trace_ring),
            frags: FragmentRing::new(cfg.trace_ring.max(32)),
            next_trace: AtomicU64::new(1),
            slow_query_ms: cfg.slow_query_ms,
            sampler: LoadSampler::new(),
            partition: cfg.partition,
        }
    }

    /// A live snapshot (the `Stats` / `Metrics` wire ops and the HTTP
    /// exposition all render from this).
    pub(crate) fn report(&self) -> ServeReport {
        self.metrics
            .report(self.targets.clone(), self.degraded.load(Ordering::SeqCst))
    }
}

/// A bound, not-yet-running server. `bind` then `run`; the split lets
/// in-process callers learn the ephemeral port before blocking.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    index: ServeIndex,
}

impl Server {
    /// Bind the listener. The index must match the traffic: its dimension
    /// is the only one served.
    pub fn bind(cfg: ServerConfig, index: ServeIndex) -> io::Result<Server> {
        // a misconfigured partition identity must fail the bind, not
        // stand up a server whose envelopes poison every router merge
        if let Some(p) = &cfg.partition {
            if p.total == 0 || p.id >= p.total {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("partition id {} outside 0..{}", p.id, p.total),
                ));
            }
            if p.replicas == 0 || p.replica >= p.replicas {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("replica id {} outside 0..{}", p.replica, p.replicas),
                ));
            }
            if p.epoch == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "partition epoch 0 is reserved; epochs start at 1",
                ));
            }
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            cfg,
            index,
        })
    }

    /// The bound address (port resolved).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Per-lane model batch targets `m*` for this (config, index) pair.
    pub fn batch_targets(&self) -> Vec<(String, usize)> {
        let n = self.index.leaf_size.min(self.index.len());
        let d = self.index.dim();
        let k = self.cfg.k_max;
        let t64 = batch_target(
            &Model::new(MachineParams::ivy_bridge_1core().for_scalar::<f64>()),
            n,
            d,
            k,
            self.cfg.coalesce_frac,
            self.cfg.max_batch,
        );
        let t32 = batch_target(
            &Model::new(MachineParams::ivy_bridge_1core().for_scalar::<f32>()),
            n,
            d,
            k,
            self.cfg.coalesce_frac,
            self.cfg.max_batch,
        );
        vec![("f64".to_string(), t64), ("f32".to_string(), t32)]
    }

    /// Serve until `Shutdown` / SIGTERM, then drain and return the final
    /// report. Blocks the calling thread; shard threads, the overload
    /// monitor and the metrics listener run on scoped threads underneath.
    pub fn run(self) -> ServeReport {
        install_sigterm();
        let targets = self.batch_targets();
        let n_shards = self.cfg.resolved_shards();
        let shared = Shared::new(
            &self.cfg,
            self.index.dim(),
            self.index.len(),
            targets.clone(),
            n_shards,
        );
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking accept");
        let index = &self.index;
        let cfg = &self.cfg;
        let shared_ref = &shared;
        // per-shard hand-off channels: unbounded, because a channel entry
        // is just an accepted TcpStream the shard adopts on its next loop
        // iteration — the OS accept backlog is the real bound
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_shards)
            .map(|_| channel::unbounded::<TcpStream>())
            .unzip();

        crossbeam::thread::scope(|s| {
            for (id, rx) in rxs.into_iter().enumerate() {
                let ctx = ShardCtx {
                    id,
                    shared: shared_ref,
                    index,
                    kind: cfg.kind,
                    target64: targets[0].1,
                    target32: targets[1].1,
                    adaptive: cfg.adaptive_coalesce,
                    pin_core: cfg.pin_cores.then_some(id),
                    conn_rx: rx,
                };
                s.spawn(move |_| shard_main(ctx));
            }
            // overload monitor: queue pressure in, degraded flag out
            {
                let threshold = cfg.overload_threshold;
                let window = cfg.overload_window;
                s.spawn(move |_| {
                    let mut detector = OverloadDetector::new(threshold, window);
                    let period = (window / 8).max(Duration::from_millis(2));
                    while !shared_ref.shutdown.load(Ordering::SeqCst) {
                        let depth = shared_ref.metrics.in_flight();
                        shared_ref.sampler.observe_depth(depth);
                        let transition =
                            detector.observe(depth, shared_ref.queue_cap, Instant::now());
                        match transition {
                            Transition::Enter => {
                                shared_ref.degraded.store(true, Ordering::SeqCst);
                                shared_ref
                                    .metrics
                                    .overload_events
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Transition::Exit => shared_ref.degraded.store(false, Ordering::SeqCst),
                            Transition::None => {}
                        }
                        std::thread::sleep(period);
                    }
                });
            }
            // metrics exposition over plain HTTP, if asked for
            if let Some(addr) = cfg.metrics_addr.clone() {
                s.spawn(move |_| metrics_listener(&addr, shared_ref));
            }

            // the acceptor: round-robin fresh connections over shards
            let mut next = 0usize;
            loop {
                if SIGTERM.load(Ordering::SeqCst) {
                    shared_ref.shutdown.store(true, Ordering::SeqCst);
                }
                if shared_ref.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = txs[next % txs.len()].send(stream);
                        next = next.wrapping_add(1);
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            drop(txs);
            // scope join: shards drain their parked batches and buffered
            // replies, then exit
        })
        .expect("server thread panicked");

        shared.report()
    }
}

/// Minimal HTTP/1.1 responder for the Prometheus exposition: every
/// request on the metrics port gets the current scrape, regardless of
/// path. Best-effort — a bind failure logs and disables the endpoint
/// rather than killing the server.
fn metrics_listener(addr: &str, shared: &Shared) {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gsknn-serve: metrics listener failed to bind {addr}: {e}");
            return;
        }
    };
    let _ = listener.set_nonblocking(true);
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                // drain the request head (path is ignored)
                let mut head = Vec::new();
                let mut buf = [0u8; 1024];
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            head.extend_from_slice(&buf[..n]);
                            if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                let body = shared.report().render_prometheus();
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
                     charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(resp.as_bytes());
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}
