//! The query service: a `TcpListener` acceptor, one connection-handler
//! thread per client, and per-precision lanes of kernel workers fed
//! through bounded channels. No async runtime — crossbeam scoped threads
//! and channels only (see DESIGN.md §9).
//!
//! Request lifecycle:
//!
//! 1. A connection handler decodes a frame, validates it against the
//!    index (dimension, `k ≤ k_max`, finite coordinates), and admits it
//!    against the bounded in-flight budget — all-or-nothing, so a batch
//!    either fits whole or bounces as `Busy`.
//! 2. Admitted jobs enter their precision lane's channel. A lane worker
//!    coalesces jobs until the §2.6 model says the batch reached the
//!    efficient regime (`m ≥ m*`, see [`crate::coalesce::batch_target`])
//!    or the oldest job has spent half its latency budget waiting.
//! 3. The flushed batch runs as one [`rkdt::Forest::query`] (cross-table
//!    kernel calls per routed leaf) at the batch's largest `k`; each
//!    job's rows are truncated to its own `k` and sent back as
//!    NeighborTable v2 bytes. Jobs whose full budget elapsed before the
//!    kernel started are answered `Timeout` without computing.
//! 4. `Shutdown` (or SIGTERM) flips the drain flag: queued jobs flush as
//!    `Drain` batches, new queries get `ShuttingDown`, and `run` returns
//!    the final [`ServeReport`].
//!
//! Failure semantics (see DESIGN.md §10):
//!
//! * **Supervision** — the kernel call runs under `catch_unwind`. A
//!   panicking batch answers every live job `InternalError` (nothing was
//!   computed, so clients may retry), the worker's executor — and with
//!   it any half-packed workspace the panic may have poisoned — is
//!   discarded and rebuilt, and the worker keeps serving. Counted as
//!   `worker_panics` / `worker_respawns`.
//! * **Degradation** — a monitor thread feeds queue pressure into an
//!   [`OverloadDetector`]; while overloaded, lanes shrink their batch
//!   target ([`degraded_target`]) to bound latency, and with
//!   [`ServerConfig::degrade_precision`] f64 queries are answered from
//!   the f32 lane as `OkDegraded` (the v2 table encoding is
//!   cross-precision, so clients decode transparently).
//! * **Injection** — with the `faults` feature, [`gsknn_faults`] points
//!   corrupt decoded frames, force premature flushes, and panic batch
//!   execution on demand (`tests/chaos.rs`); off, they compile away.

use crate::coalesce::{batch_target, predict_batch_cost, FlushReason};
use crate::degrade::{degraded_target, OverloadDetector, Transition};
use crate::metrics::{Metrics, LANES, STATUS_LABELS};
use crate::sampler::LoadSampler;
use crate::trace::ReqTrace;
use crate::wire::{
    deadline_duration, decode_request, encode_response, read_frame_poll, write_frame, Precision,
    QueryBody, Request, Response, Status,
};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use dataset::{DistanceKind, PointSet};
use gsknn_core::{FusedScalar, Gsknn, GsknnConfig, MachineParams, Model};
use gsknn_obs::{chrome_trace_json, ServeReport, TraceRing};
use knn_select::{Neighbor, NeighborTable};
use rkdt::Forest;
use std::io;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide SIGTERM flag (the handler may not touch anything else).
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Register a minimal SIGTERM handler that flips [`SIGTERM`], so `kill`
/// drains the server exactly like the wire `Shutdown` op. No-op off unix.
fn install_sigterm() {
    #[cfg(unix)]
    {
        extern "C" fn on_term(_signum: i32) {
            SIGTERM.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM_NUM: i32 = 15;
        unsafe {
            signal(SIGTERM_NUM, on_term as *const () as usize);
        }
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Kernel worker threads per precision lane.
    pub workers_per_lane: usize,
    /// Admission bound: maximum in-flight query points across both lanes.
    pub queue_cap: usize,
    /// Model trigger: flush when predicted GFLOPS reaches this fraction
    /// of the asymptote for the index's shape.
    pub coalesce_frac: f64,
    /// Hard cap on a coalesced batch (also clamps the model target).
    pub max_batch: usize,
    /// Largest `k` a request may ask for.
    pub k_max: usize,
    /// Distance served.
    pub kind: DistanceKind,
    /// While overloaded, answer f64 queries from the f32 lane with
    /// `Status::OkDegraded` (correct neighbor ids at reduced distance
    /// precision) instead of making them wait for the slower lane.
    pub degrade_precision: bool,
    /// Enter overload once in-flight queries stay at or above this
    /// fraction of `queue_cap` for a full [`ServerConfig::overload_window`].
    pub overload_threshold: f64,
    /// How long queue pressure must hold before the overload state
    /// flips (entry and recovery; see [`OverloadDetector`]).
    pub overload_window: Duration,
    /// Log a line to stderr for every request slower than this many
    /// milliseconds end-to-end (with the span breakdown when tracing is
    /// compiled in). `None` disables the slow-query log.
    pub slow_query_ms: Option<u64>,
    /// Serve the Prometheus-style metrics exposition over plain HTTP on
    /// this address (e.g. `"127.0.0.1:9109"`). `None` leaves only the
    /// wire `Metrics` op.
    pub metrics_addr: Option<String>,
    /// Capacity of the slowest-traces ring exported by the wire `Traces`
    /// op. `0` disables trace retention (spans are still recorded for
    /// the slow-query log).
    pub trace_ring: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers_per_lane: 1,
            queue_cap: 1024,
            coalesce_frac: 0.9,
            max_batch: 512,
            k_max: 128,
            kind: DistanceKind::SqL2,
            degrade_precision: false,
            overload_threshold: 0.75,
            overload_window: Duration::from_millis(250),
            slow_query_ms: None,
            metrics_addr: None,
            trace_ring: 32,
        }
    }
}

/// The loaded index: one reference table (kept in both precisions — the
/// forest's split projections are precision-free, so a single forest
/// routes either cast) plus its randomized-KD-tree forest.
pub struct ServeIndex {
    refs64: PointSet<f64>,
    refs32: PointSet<f32>,
    forest: Forest,
    n_trees: usize,
    leaf_size: usize,
}

impl ServeIndex {
    /// Build the forest over `refs` and cache the f32 cast.
    pub fn build(refs: PointSet<f64>, n_trees: usize, leaf_size: usize, seed: u64) -> Self {
        assert!(!refs.is_empty(), "cannot serve an empty index");
        let forest = Forest::build(&refs, n_trees, leaf_size, seed);
        ServeIndex {
            refs32: refs.cast::<f32>(),
            refs64: refs,
            forest,
            n_trees,
            leaf_size,
        }
    }

    /// Point dimension.
    pub fn dim(&self) -> usize {
        self.refs64.dim()
    }

    /// Reference count.
    pub fn len(&self) -> usize {
        self.refs64.len()
    }

    /// Never true post-build (`build` rejects empty tables).
    pub fn is_empty(&self) -> bool {
        self.refs64.len() == 0
    }

    /// Trees in the forest.
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Leaf size the forest was built with.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }
}

/// One admitted query batch traveling from a connection handler to a
/// lane worker.
struct Job {
    /// `m · dim` coordinates, widened; the lane narrows to its scalar.
    coords: Vec<f64>,
    m: usize,
    k: usize,
    /// Coalesce bound: flush a batch containing this job by here.
    flush_by: Instant,
    /// Full latency budget: a kernel start after this answers `Timeout`.
    timeout_at: Instant,
    /// An f64 request routed to the f32 lane under overload: answer with
    /// `Status::OkDegraded` so the client knows the precision dropped.
    degraded: bool,
    /// Span recorder riding along with the job; the worker closes the
    /// coalesce wait and attributes kernel phases, then ships it back
    /// with the reply (zero-sized without the `obs` feature).
    trace: ReqTrace,
    reply: Sender<(Response, ReqTrace)>,
}

/// Everything a lane worker needs, borrowed for the scope's lifetime.
struct LaneCtx<'a, T: FusedScalar> {
    rx: Receiver<Job>,
    refs: &'a PointSet<T>,
    forest: &'a Forest,
    n_trees: usize,
    leaf_size: usize,
    kind: DistanceKind,
    target: usize,
    model: Model,
    /// Lane index into [`LANES`] (0 = f64, 1 = f32), for the roofline
    /// recorder's per-lane counters.
    lane: usize,
    metrics: &'a Metrics,
    sampler: &'a LoadSampler,
    shutdown: &'a AtomicBool,
    /// Overload flag: while set, the lane coalesces toward
    /// [`degraded_target`] instead of the model target.
    degraded: &'a AtomicBool,
}

/// Shared state for connection handlers.
struct Shared {
    metrics: Metrics,
    shutdown: AtomicBool,
    /// Overload state, owned by the monitor thread.
    degraded: AtomicBool,
    degrade_precision: bool,
    dim: usize,
    n_refs: usize,
    queue_cap: usize,
    k_max: usize,
    targets: Vec<(String, usize)>,
    /// Server start; trace timestamps are microseconds since this.
    epoch: Instant,
    /// The N slowest finished request traces, for the `Traces` wire op.
    traces: TraceRing,
    /// Server-assigned trace ids for requests that sent `trace_id = 0`
    /// (starts at 1; 0 means "no id" on the wire).
    next_trace: AtomicU64,
    slow_query_ms: Option<u64>,
    /// Per-second load time-series for the `TimeSeries` wire op
    /// (zero-sized without the `obs` feature).
    sampler: LoadSampler,
}

/// A bound, not-yet-running server. `bind` then `run`; the split lets
/// in-process callers learn the ephemeral port before blocking.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    index: ServeIndex,
}

impl Server {
    /// Bind the listener. The index must match the traffic: its dimension
    /// is the only one served.
    pub fn bind(cfg: ServerConfig, index: ServeIndex) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            cfg,
            index,
        })
    }

    /// The bound address (port resolved).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Per-lane model batch targets `m*` for this (config, index) pair.
    pub fn batch_targets(&self) -> Vec<(String, usize)> {
        let n = self.index.leaf_size.min(self.index.len());
        let d = self.index.dim();
        let k = self.cfg.k_max;
        let t64 = batch_target(
            &Model::new(MachineParams::ivy_bridge_1core().for_scalar::<f64>()),
            n,
            d,
            k,
            self.cfg.coalesce_frac,
            self.cfg.max_batch,
        );
        let t32 = batch_target(
            &Model::new(MachineParams::ivy_bridge_1core().for_scalar::<f32>()),
            n,
            d,
            k,
            self.cfg.coalesce_frac,
            self.cfg.max_batch,
        );
        vec![("f64".to_string(), t64), ("f32".to_string(), t32)]
    }

    /// Serve until `Shutdown` / SIGTERM, then drain and return the final
    /// report. Blocks the calling thread; workers and connection handlers
    /// run on scoped threads underneath it.
    pub fn run(self) -> ServeReport {
        install_sigterm();
        let targets = self.batch_targets();
        let shared = Shared {
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            degrade_precision: self.cfg.degrade_precision,
            dim: self.index.dim(),
            n_refs: self.index.len(),
            queue_cap: self.cfg.queue_cap.max(1),
            k_max: self.cfg.k_max.max(1),
            targets: targets.clone(),
            epoch: Instant::now(),
            traces: TraceRing::new(self.cfg.trace_ring),
            next_trace: AtomicU64::new(1),
            slow_query_ms: self.cfg.slow_query_ms,
            sampler: LoadSampler::new(),
        };
        let cap = shared.queue_cap;
        let (tx64, rx64) = channel::bounded::<Job>(cap);
        let (tx32, rx32) = channel::bounded::<Job>(cap);
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking accept");
        let workers = self.cfg.workers_per_lane.max(1);
        let model64 = Model::new(MachineParams::ivy_bridge_1core().for_scalar::<f64>());
        let model32 = Model::new(MachineParams::ivy_bridge_1core().for_scalar::<f32>());
        let index = &self.index;
        let cfg = &self.cfg;
        let shared_ref = &shared;

        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                let ctx = LaneCtx {
                    rx: rx64.clone(),
                    refs: &index.refs64,
                    forest: &index.forest,
                    n_trees: index.n_trees,
                    leaf_size: index.leaf_size,
                    kind: cfg.kind,
                    target: targets[0].1,
                    model: model64,
                    lane: 0,
                    metrics: &shared_ref.metrics,
                    sampler: &shared_ref.sampler,
                    shutdown: &shared_ref.shutdown,
                    degraded: &shared_ref.degraded,
                };
                s.spawn(move |_| lane_worker(ctx));
                let ctx = LaneCtx {
                    rx: rx32.clone(),
                    refs: &index.refs32,
                    forest: &index.forest,
                    n_trees: index.n_trees,
                    leaf_size: index.leaf_size,
                    kind: cfg.kind,
                    target: targets[1].1,
                    model: model32,
                    lane: 1,
                    metrics: &shared_ref.metrics,
                    sampler: &shared_ref.sampler,
                    shutdown: &shared_ref.shutdown,
                    degraded: &shared_ref.degraded,
                };
                s.spawn(move |_| lane_worker(ctx));
            }
            // overload monitor: queue pressure in, degraded flag out
            {
                let threshold = cfg.overload_threshold;
                let window = cfg.overload_window;
                s.spawn(move |_| {
                    let mut detector = OverloadDetector::new(threshold, window);
                    let period = (window / 8).max(Duration::from_millis(2));
                    while !shared_ref.shutdown.load(Ordering::SeqCst) {
                        let depth = shared_ref.metrics.in_flight();
                        shared_ref.sampler.observe_depth(depth);
                        let transition =
                            detector.observe(depth, shared_ref.queue_cap, Instant::now());
                        match transition {
                            Transition::Enter => {
                                shared_ref.degraded.store(true, Ordering::SeqCst);
                                shared_ref
                                    .metrics
                                    .overload_events
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Transition::Exit => shared_ref.degraded.store(false, Ordering::SeqCst),
                            Transition::None => {}
                        }
                        std::thread::sleep(period);
                    }
                });
            }
            // metrics exposition over plain HTTP, if asked for
            if let Some(addr) = cfg.metrics_addr.clone() {
                s.spawn(move |_| metrics_listener(&addr, shared_ref));
            }
            // the worker-side clones above keep the lanes alive; drop the
            // originals so worker recv() can observe disconnection once
            // every connection handler is gone
            drop(rx64);
            drop(rx32);

            loop {
                if SIGTERM.load(Ordering::SeqCst) {
                    shared_ref.shutdown.store(true, Ordering::SeqCst);
                }
                if shared_ref.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let tx64 = tx64.clone();
                        let tx32 = tx32.clone();
                        s.spawn(move |_| handle_conn(stream, shared_ref, tx64, tx32));
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            drop(tx64);
            drop(tx32);
            // scope join: connection handlers observe the shutdown flag,
            // lane workers drain their channels and exit
        })
        .expect("server thread panicked");

        let overloaded = shared.degraded.load(Ordering::SeqCst);
        shared.metrics.report(targets, overloaded)
    }
}

/// Minimal HTTP/1.1 responder for the Prometheus exposition: every
/// request on the metrics port gets the current scrape, regardless of
/// path. Best-effort — a bind failure logs and disables the endpoint
/// rather than killing the server.
fn metrics_listener(addr: &str, shared: &Shared) {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gsknn-serve: metrics listener failed to bind {addr}: {e}");
            return;
        }
    };
    let _ = listener.set_nonblocking(true);
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                // drain the request head (path is ignored)
                let mut head = Vec::new();
                let mut buf = [0u8; 1024];
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            head.extend_from_slice(&buf[..n]);
                            if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                let body = shared
                    .metrics
                    .report(
                        shared.targets.clone(),
                        shared.degraded.load(Ordering::SeqCst),
                    )
                    .render_prometheus();
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
                     charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(resp.as_bytes());
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Per-connection loop: read frames until EOF, error, or drain.
fn handle_conn(mut stream: TcpStream, shared: &Shared, tx64: Sender<Job>, tx32: Sender<Job>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = stream.set_nodelay(true);
    loop {
        let stop = || shared.shutdown.load(Ordering::SeqCst);
        let payload = match read_frame_poll(&mut stream, &stop) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        // Injected frame corruption: flip a byte of the received payload
        // so the hardened decoder (not the network) is what's under test.
        // The connection must answer a typed error and keep serving.
        #[cfg(feature = "faults")]
        let payload = {
            let mut payload = payload;
            if gsknn_faults::armed(gsknn_faults::FaultPoint::FrameDecode) && !payload.is_empty() {
                let mid = payload.len() / 2;
                payload[mid] ^= 0xff;
            }
            payload
        };
        let t_recv = Instant::now();
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let mut drain_after_reply = false;
        let decoded = decode_request(&payload);
        let t_dec = Instant::now();
        // Queries carry their timeline through to the latency histograms
        // and the trace ring; control ops answer and forget.
        let mut done: Option<QueryDone> = None;
        let resp = match decoded {
            Err(e) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                Response::error(e.to_string())
            }
            Ok(Request::Ping) => Response::empty(Status::Ok),
            Ok(Request::Stats) => {
                let report = shared.metrics.report(
                    shared.targets.clone(),
                    shared.degraded.load(Ordering::SeqCst),
                );
                Response::ok_body(report.to_json().to_string().into_bytes())
            }
            Ok(Request::Metrics) => {
                let report = shared.metrics.report(
                    shared.targets.clone(),
                    shared.degraded.load(Ordering::SeqCst),
                );
                Response::ok_body(report.render_prometheus().into_bytes())
            }
            Ok(Request::Traces) => {
                let traces = shared.traces.snapshot();
                Response::ok_body(chrome_trace_json(&traces).to_string().into_bytes())
            }
            Ok(Request::TimeSeries) => {
                Response::ok_body(shared.sampler.to_json().to_string().into_bytes())
            }
            Ok(Request::Shutdown) => {
                drain_after_reply = true;
                Response::empty(Status::Ok)
            }
            Ok(Request::Query(q)) => {
                // histograms are labeled by the *requested* lane; degraded
                // f64 routing shows up as status ok_degraded, not lane f32
                let lane = match q.precision {
                    Precision::F64 => 0,
                    Precision::F32 => 1,
                };
                let trace_id = if q.trace_id != 0 {
                    q.trace_id
                } else {
                    shared.next_trace.fetch_add(1, Ordering::Relaxed)
                };
                shared.sampler.record_arrival(q.m);
                shared.sampler.observe_depth(shared.metrics.in_flight());
                let mut trace = ReqTrace::start(shared.epoch, t_recv);
                trace.set_shape(q.m, q.k);
                trace.add_span("decode", t_recv, t_dec);
                let (resp, trace) = handle_query(q, trace, shared, &tx64, &tx32);
                done = Some(QueryDone {
                    lane,
                    trace_id,
                    trace,
                });
                resp.with_trace(trace_id)
            }
        };
        let t_reply = Instant::now();
        if write_frame(&mut stream, &encode_response(&resp)).is_err() {
            return;
        }
        if let Some(d) = done {
            let t_done = Instant::now();
            let total = t_done - t_recv;
            shared.metrics.record_latency(d.lane, resp.status, total);
            let mut trace = d.trace;
            trace.add_span("reply write", t_reply, t_done);
            let lane = LANES[d.lane];
            let status = STATUS_LABELS[resp.status as usize];
            let slow = shared
                .slow_query_ms
                .is_some_and(|ms| total >= Duration::from_millis(ms));
            match trace.finish(d.trace_id, lane, status, total) {
                Some(t) => {
                    if slow {
                        let spans: Vec<String> = t
                            .spans
                            .iter()
                            .map(|s| format!("{} {:.1}us", s.name, s.dur_us))
                            .collect();
                        eprintln!(
                            "gsknn-serve: slow query trace_id={:016x} lane={} status={} \
                             m={} k={} total={:.1}us [{}]",
                            t.trace_id,
                            t.lane,
                            t.status,
                            t.m,
                            t.k,
                            t.total_us,
                            spans.join(", ")
                        );
                    }
                    shared.traces.offer(t);
                }
                None => {
                    if slow {
                        eprintln!(
                            "gsknn-serve: slow query trace_id={:016x} lane={lane} \
                             status={status} total={:.1}us (tracing compiled out)",
                            d.trace_id,
                            total.as_secs_f64() * 1e6
                        );
                    }
                }
            }
        }
        if drain_after_reply {
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// What the connection loop keeps about an answered query to record its
/// latency and finish its trace after the reply frame is on the wire.
struct QueryDone {
    lane: usize,
    trace_id: u64,
    trace: ReqTrace,
}

/// Validate, admit, enqueue, await the lane's reply. The trace recorder
/// travels with the job through the lane and comes back with the reply,
/// so the connection loop can finish it with the worker's spans.
fn handle_query(
    q: QueryBody,
    mut trace: ReqTrace,
    shared: &Shared,
    tx64: &Sender<Job>,
    tx32: &Sender<Job>,
) -> (Response, ReqTrace) {
    let t_val = Instant::now();
    if shared.shutdown.load(Ordering::SeqCst) {
        return (Response::empty(Status::ShuttingDown), trace);
    }
    if q.dim != shared.dim {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        return (
            Response::bad_request(format!(
                "dimension mismatch: index is {}-d, request is {}-d",
                shared.dim, q.dim
            )),
            trace,
        );
    }
    if q.m == 0 || q.k == 0 || q.k > shared.k_max {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        return (
            Response::bad_request(format!(
                "need m >= 1 and 1 <= k <= {} (got m = {}, k = {})",
                shared.k_max, q.m, q.k
            )),
            trace,
        );
    }
    if q.k > shared.n_refs {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        return (
            Response::bad_request(format!(
                "k = {} exceeds the index's {} reference points",
                q.k, shared.n_refs
            )),
            trace,
        );
    }
    if q.coords.iter().any(|v| !v.is_finite()) {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        return (
            Response::bad_request("non-finite coordinate in query"),
            trace,
        );
    }
    // Under overload (and opt-in), answer f64 traffic from the f32 lane:
    // same neighbor ids at reduced distance precision, flagged
    // `OkDegraded` on the wire.
    let degraded = shared.degrade_precision
        && q.precision == Precision::F64
        && shared.degraded.load(Ordering::SeqCst);
    // Anything narrowed to f32 — native f32 requests or degraded f64
    // routing — must stay finite at that width too, or the lane's
    // `PointSet` constructor would panic on an overflow-to-inf value.
    if (degraded || q.precision == Precision::F32)
        && q.coords.iter().any(|&v| !(v as f32).is_finite())
    {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        return (
            Response::bad_request("coordinate overflows f32 (the serving precision)"),
            trace,
        );
    }
    if !shared.metrics.admit(q.m, shared.queue_cap) {
        shared.metrics.busy.fetch_add(1, Ordering::Relaxed);
        return (Response::empty(Status::Busy), trace);
    }
    let now = Instant::now();
    trace.add_span("admission", t_val, now);
    trace.mark_enqueued();
    let budget = deadline_duration(q.deadline_ms);
    let (reply_tx, reply_rx) = channel::bounded::<(Response, ReqTrace)>(1);
    let job = Job {
        coords: q.coords,
        m: q.m,
        k: q.k,
        flush_by: now + budget / 2,
        timeout_at: now + budget,
        degraded,
        trace,
        reply: reply_tx,
    };
    let lane = if degraded {
        tx32
    } else {
        match q.precision {
            Precision::F64 => tx64,
            Precision::F32 => tx32,
        }
    };
    if let Err(e) = lane.try_send(job) {
        // the job (and its trace) comes back in the error
        let job = match e {
            TrySendError::Full(job) | TrySendError::Disconnected(job) => job,
        };
        shared.metrics.release(job.m);
        shared.metrics.busy.fetch_add(1, Ordering::Relaxed);
        return (Response::empty(Status::Busy), job.trace);
    }
    // workers always reply (Ok or Timeout); the grace covers kernel time
    match reply_rx.recv_timeout(budget + Duration::from_secs(30)) {
        Ok((resp, trace)) => (resp, trace),
        Err(_) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            (
                Response::internal_error("lane worker did not reply"),
                ReqTrace::off(),
            )
        }
    }
}

/// One kernel worker: coalesce then flush, forever. The executor (and
/// its packing workspace) persists across batches; after a panicking
/// batch it is discarded and rebuilt — the respawned worker starts from
/// a provably clean workspace.
fn lane_worker<T: FusedScalar>(ctx: LaneCtx<'_, T>) {
    let kernel_cfg = GsknnConfig::for_scalar::<T>();
    let mut exec = Gsknn::<T>::new(kernel_cfg.clone());
    loop {
        // block for the batch's first job, watching for drain
        let first = loop {
            match ctx.rx.recv_timeout(Duration::from_millis(25)) {
                Ok(job) => break job,
                Err(RecvTimeoutError::Timeout) => {
                    if ctx.shutdown.load(Ordering::SeqCst) && ctx.rx.is_empty() {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        // overload shrinks the coalescing bar for the whole batch
        let target = if ctx.degraded.load(Ordering::SeqCst) {
            degraded_target(ctx.target)
        } else {
            ctx.target
        };
        let mut flush_by = first.flush_by;
        let mut m = first.m;
        let mut batch = vec![first];
        let reason = loop {
            if m >= target {
                break FlushReason::Model;
            }
            if ctx.shutdown.load(Ordering::SeqCst) {
                break FlushReason::Drain;
            }
            // Injected premature flush: the batch goes out undersized,
            // exercising the deadline path without a slow clock.
            #[cfg(feature = "faults")]
            if gsknn_faults::armed(gsknn_faults::FaultPoint::CoalesceFlush) {
                break FlushReason::Deadline;
            }
            let now = Instant::now();
            if now >= flush_by {
                break FlushReason::Deadline;
            }
            let wait = (flush_by - now).min(Duration::from_millis(5));
            match ctx.rx.recv_timeout(wait) {
                Ok(job) => {
                    flush_by = flush_by.min(job.flush_by);
                    m += job.m;
                    batch.push(job);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break FlushReason::Drain,
            }
        };
        if execute_batch(&ctx, &mut exec, batch, reason) == BatchFate::Panicked {
            // Answering the batch's jobs is already done; recover the
            // worker itself. The old executor may hold a workspace the
            // panic left half-packed — never reuse it.
            exec = Gsknn::<T>::new(kernel_cfg.clone());
            ctx.metrics.worker_respawns.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Whether a flushed batch ran to completion or died mid-kernel.
#[derive(PartialEq, Eq)]
enum BatchFate {
    Completed,
    Panicked,
}

/// Run one flushed batch through the forest and fan the rows back out.
///
/// The kernel call is supervised: a panic (injected or organic) is
/// caught here, every live job is answered `InternalError` — the batch
/// produced nothing, so retrying is safe — and the caller learns the
/// executor must be discarded. Jobs are deliberately kept *outside* the
/// unwind closure so they remain answerable after a panic.
fn execute_batch<T: FusedScalar>(
    ctx: &LaneCtx<'_, T>,
    exec: &mut Gsknn<T>,
    batch: Vec<Job>,
    reason: FlushReason,
) -> BatchFate {
    let start = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        if start > job.timeout_at {
            ctx.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            ctx.metrics.release(job.m);
            let Job {
                mut trace, reply, ..
            } = job;
            trace.coalesce_end(start);
            let _ = reply.try_send((Response::empty(Status::Timeout), trace));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        ctx.metrics.record_flush(reason, 0, 0.0, 0.0, &[]);
        ctx.sampler
            .record_flush(reason, 0, &gsknn_core::obs::PhaseSet::default());
        return BatchFate::Completed;
    }

    let dim = ctx.refs.dim();
    let m_live: usize = live.iter().map(|j| j.m).sum();
    let k_batch = live.iter().map(|j| j.k).max().unwrap_or(1);
    let mut coords: Vec<T> = Vec::with_capacity(m_live * dim);
    for job in &live {
        coords.extend(job.coords.iter().map(|&v| T::from_f64(v)));
    }
    let queries = PointSet::from_vec(dim, m_live, coords);
    // drop phase times a previous (panicked) batch may have left behind,
    // so this batch's jobs only see their own kernel
    let _ = exec.take_phase_accum();
    let k_start = Instant::now();
    let table = catch_unwind(AssertUnwindSafe(|| {
        gsknn_faults::fail_point!(gsknn_faults::FaultPoint::BatchExec);
        ctx.forest
            .query_with(exec, ctx.refs, &queries, k_batch, ctx.kind)
    }));
    let table = match table {
        Ok(table) => table,
        Err(_) => {
            ctx.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            for job in live {
                ctx.metrics.release(job.m);
                ctx.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let Job {
                    mut trace, reply, ..
                } = job;
                trace.coalesce_end(k_start);
                let _ = reply.try_send((
                    Response::internal_error("worker panicked executing the batch"),
                    trace,
                ));
            }
            return BatchFate::Panicked;
        }
    };
    let phases = exec.take_phase_accum();
    let measured = start.elapsed().as_secs_f64();
    let leaf_n = ctx.leaf_size.min(ctx.refs.len());
    let (predicted, terms) =
        predict_batch_cost(&ctx.model, ctx.n_trees, leaf_n, m_live, dim, k_batch);
    ctx.metrics
        .record_flush(reason, m_live, predicted, measured, &terms);
    // roofline attribution + time-series feed (no-ops without `obs`);
    // backlog = query points still admitted beyond this batch
    let backlog = ctx.metrics.in_flight().saturating_sub(m_live as u64) as usize;
    ctx.metrics.roofline.record_batch(
        ctx.lane,
        T::BYTES,
        &ctx.model,
        ctx.n_trees,
        leaf_n,
        m_live,
        dim,
        k_batch,
        ctx.target,
        reason,
        measured,
        &phases,
        backlog,
    );
    ctx.sampler.record_flush(reason, m_live, &phases);

    let mut row0 = 0usize;
    for job in live {
        let mut out = NeighborTable::<T>::new(job.m, job.k);
        for r in 0..job.m {
            let real: Vec<Neighbor<T>> = table
                .row(row0 + r)
                .iter()
                .filter(|nb| nb.idx != u32::MAX)
                .take(job.k)
                .copied()
                .collect();
            out.set_row(r, &real);
        }
        row0 += job.m;
        ctx.metrics.release(job.m);
        let status = if job.degraded {
            ctx.metrics
                .degraded
                .fetch_add(job.m as u64, Ordering::Relaxed);
            Status::OkDegraded
        } else {
            Status::Ok
        };
        let share = job.m as f64 / m_live as f64;
        let Job {
            mut trace, reply, ..
        } = job;
        trace.coalesce_end(k_start);
        trace.add_phases(k_start, &phases, share);
        let _ = reply.try_send((
            Response {
                status,
                trace_id: 0,
                body: out.to_bytes().to_vec(),
            },
            trace,
        ));
    }
    BatchFate::Completed
}
