//! # gsknn-serve — an online kNN query service with model-driven batch
//! # coalescing
//!
//! The paper's kernel is a batch machine: its GFLOPS depend on `m`
//! amortizing the packing and selection overheads (§2.6). An online
//! service answering one query at a time would live at the `m = 1` floor
//! of that curve. This crate closes the gap with a **model-driven batch
//! coalescer**: arriving queries are held in a bounded queue and flushed
//! into one cross-table kernel call when the §2.6 performance model
//! predicts the batch has reached the efficient regime — predicted
//! GFLOPS within a configurable fraction of the asymptote for the
//! index's `(n, d, k)` — or when the oldest request's latency budget
//! runs out, whichever is first.
//!
//! Pieces:
//!
//! * [`wire`] — length-prefixed binary protocol, version 2 (`Query`,
//!   `BatchQuery`, `Stats`, `Ping`, `Shutdown`, `Metrics`, `Traces`,
//!   `TimeSeries`, `TraceFetch`; per-request `f64`/`f32` precision; a
//!   `trace_id` on every query and response); query responses are
//!   [`knn_select::NeighborTable`] v2 bytes. Version-1 frames still
//!   decode (`trace_id = 0`).
//! * [`coalesce`] — the flush policy: `m*` from the model, the oldest
//!   parked request's half-budget deadline, the adaptive EWMA
//!   wait-vs-save rule ([`coalesce::adaptive_should_flush`]), drain.
//! * [`server`] — `TcpListener` acceptor round-robining connections over
//!   **thread-per-core shards**. Each shard owns its slice of
//!   connections (readiness-polled via [`mux`], no thread per
//!   connection), both precision lanes' parked batches, and a
//!   core-pinnable reusable kernel workspace; queries decode zero-copy
//!   from the receive buffer into the lane's pack layout and the kernel
//!   runs inline on the shard thread — zero heap allocations per query
//!   at steady state with `obs` off. Bounded-queue admission control
//!   (`Busy`), per-request timeouts, graceful drain on the `Shutdown`
//!   op or SIGTERM.
//! * [`mux`] — the `poll(2)` readiness multiplexer backing the shard
//!   event loop (raw `extern "C"` binding, no async runtime).
//! * [`client`] — blocking client used by `gsknn-cli query-remote`;
//!   bounded socket timeouts and [`Client::query_with_retry`] for
//!   transient failures.
//! * [`retry`] — exponential backoff with full jitter, bounded by
//!   attempts and a wall-clock deadline.
//! * [`degrade`] — queue-pressure overload detector with hysteresis;
//!   while overloaded the server shrinks its batch target and (opt-in)
//!   answers f64 queries from the f32 lane with `Status::OkDegraded`.
//! * [`metrics`] — shared counters plus lock-free log-bucketed latency
//!   histograms (per lane × terminal status), reported as a
//!   [`gsknn_obs::ServeReport`] (batch-size histogram, flush-trigger
//!   ratio, predicted-vs-measured batch cost drift, worker
//!   panic/respawn and degradation counts, p50/p90/p99/p999 latency),
//!   also rendered as a Prometheus-style plaintext exposition (the
//!   `Metrics` wire op or [`ServerConfig::metrics_addr`]).
//! * `trace` — the request-scoped span recorder: every query carries a
//!   trace id (echoed in the response header) and, with the `obs`
//!   feature, a span timeline (decode, admission, coalesce wait,
//!   amortized kernel phases, reply write). The N slowest traces are
//!   retained and exported as Chrome trace-event JSON via the `Traces`
//!   wire op (`gsknn-cli trace`). In partition mode the spans also ride
//!   each `PartialTopK` reply as a compact span annex (and stay
//!   fetchable by id via `TraceFetch`) so a router can stitch one
//!   end-to-end distributed trace. Without `obs` the recorder and the
//!   fragment ring are zero-sized and the hot path does no span work.
//! * [`sampler`] — continuous performance accounting under the same
//!   zero-sized-without-`obs` guarantee: a lock-free per-second load
//!   sampler (arrival rate, queue depth, batch-size mean, flush
//!   reasons, aggregate kernel-phase split) exported via the
//!   `TimeSeries` wire op and rendered by `gsknn-cli top`, plus a
//!   roofline recorder classifying every executed batch against the
//!   §2.6 machine asymptotes (compute- / bandwidth- / coalesce- /
//!   queue-bound with a headroom gauge, surfaced in the
//!   [`gsknn_obs::ServeReport`]).
//!
//! Failure semantics: shard batches run under `catch_unwind`; a panic
//! answers every in-flight request in the batch with
//! `Status::InternalError` (safe to retry — the batch produced nothing)
//! and the shard rebuilds its workspace, discarding any
//! possibly-poisoned packing state, while its other connections keep
//! being served. With the `faults` feature the
//! [`gsknn_faults`] injection points compiled into decode, flush and
//! batch execution let `tests/chaos.rs` drive all of this
//! deterministically; without it they compile to nothing.
//!
//! ```no_run
//! use gsknn_serve::{Client, Outcome, ServeIndex, Server, ServerConfig};
//!
//! let refs = dataset::uniform(10_000, 16, 1);
//! let index = ServeIndex::build(refs, 4, 512, 7);
//! let server = Server::bind(ServerConfig::default(), index).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let point = vec![0.5f64; 16];
//! let reply = client.query(&point, 1, 8, 200).unwrap();
//! match reply.outcome {
//!     Outcome::Neighbors(table) => println!(
//!         "{:?} in {:?} (trace {:016x})",
//!         table.row(0),
//!         reply.rtt,
//!         reply.trace_id
//!     ),
//!     other => println!("{other:?}"),
//! }
//! ```

pub mod client;
pub mod coalesce;
pub mod degrade;
pub mod metrics;
pub mod mux;
pub mod retry;
pub mod sampler;
pub mod server;
mod shard;
mod trace;
pub mod wire;

pub use client::{Client, Outcome, QueryReply, DEFAULT_CONNECT_TIMEOUT, DEFAULT_IO_TIMEOUT};
pub use coalesce::{
    adaptive_should_flush, batch_target, predict_batch_cost, ArrivalRate, FlushReason, ASYMPTOTE_M,
};
pub use degrade::{degraded_target, OverloadDetector, Transition};
pub use gsknn_obs::ServeReport;
pub use metrics::Metrics;
pub use retry::RetryPolicy;
pub use sampler::{LoadSampler, RooflineRecorder, WINDOW_S};
pub use server::{PartitionCfg, ServeIndex, Server, ServerConfig};
pub use wire::{
    decode_partial, is_partial_body, PartialHeader, Precision, Request, Response, Status,
    WireError, PARTIAL_HEADER_LEN, WIRE_VERSION,
};

/// Test-only counting global allocator: proves the shard hot path's
/// zero-allocations-per-query claim structurally instead of by review
/// (see `shard::tests::steady_state_query_cycle_performs_no_heap_allocation`).
/// Counts `alloc` and `realloc` calls on the current thread.
#[cfg(test)]
pub(crate) mod test_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        // const-initialized: the first count bump must not itself
        // allocate through lazy TLS init re-entering the allocator
        static COUNT: Cell<u64> = const { Cell::new(0) };
    }

    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // try_with: a count during TLS teardown is silently dropped
            // rather than aborting the process
            let _ = COUNT.try_with(|c| c.set(c.get() + 1));
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let _ = COUNT.try_with(|c| c.set(c.get() + 1));
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static ALLOC: CountingAllocator = CountingAllocator;

    /// Allocations (+ reallocations) observed on this thread so far.
    /// Only read by the `not(feature = "obs")` zero-alloc guard test —
    /// the allocator itself stays installed in every test build so the
    /// counting path is always exercised.
    #[allow(dead_code)]
    pub fn alloc_count() -> u64 {
        COUNT.with(|c| c.get())
    }
}
