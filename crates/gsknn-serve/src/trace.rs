//! The server-side request trace recorder.
//!
//! [`ReqTrace`] rides along with a request: created by the connection
//! handler when a query frame decodes, carried inside the [`Job`]
//! through the lane channel, filled in by the worker (coalesce wait,
//! amortized kernel phases), and finished back on the connection thread
//! after the reply is written. [`ReqTrace::finish`] converts it into a
//! [`gsknn_obs::Trace`] for the slowest-traces ring.
//!
//! Mirrors the [`gsknn_core::obs::PhaseSet`] discipline: without the
//! `obs` cargo feature the struct is **zero-sized** and every method is
//! an inlined no-op, so the serve hot path carries no span bookkeeping
//! and no allocations (the guard test below checks the size
//! structurally, like `gsknn-core/tests/obs_guard.rs` does for the
//! kernel).
//!
//! [`Job`]: crate::server — the lane job struct
//!
//! Span amortization: a coalesced batch runs the kernel once for all
//! its requests, so per-request kernel-phase spans are the batch's
//! phase totals scaled by the request's share of the batch (`m / m_live`
//! query points). The synthetic spans are laid out sequentially after
//! the coalesce wait; their durations — not their exact offsets — are
//! the signal.

use gsknn_core::obs::PhaseSet;
use gsknn_obs::Trace;
#[cfg(feature = "obs")]
use gsknn_obs::TraceSpan;
use std::time::Duration;
use std::time::Instant;

#[cfg(feature = "obs")]
struct Inner {
    /// Request receive time (span starts are relative to this).
    t0: Instant,
    /// `t0` in microseconds since the server epoch.
    t0_us: f64,
    spans: Vec<TraceSpan>,
    /// When the job entered its lane channel (coalesce wait start).
    enqueued: Option<Instant>,
    m: usize,
    k: usize,
}

/// Per-request span recorder; see the module docs. Zero-sized and inert
/// without the `obs` feature.
#[derive(Default)]
pub(crate) struct ReqTrace {
    #[cfg(feature = "obs")]
    inner: Option<Box<Inner>>,
}

impl ReqTrace {
    /// An inert recorder (jobs built outside a live request, e.g. in
    /// the shard unit tests).
    #[inline]
    #[allow(dead_code)]
    pub fn off() -> Self {
        Self::default()
    }

    /// Start recording a request received at `t0`, `epoch` being the
    /// server start (for absolute span placement in the export).
    #[inline]
    pub fn start(epoch: Instant, t0: Instant) -> Self {
        #[cfg(feature = "obs")]
        {
            ReqTrace {
                inner: Some(Box::new(Inner {
                    t0,
                    t0_us: t0.duration_since(epoch).as_secs_f64() * 1e6,
                    spans: Vec::with_capacity(8),
                    enqueued: None,
                    m: 0,
                    k: 0,
                })),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (epoch, t0);
            ReqTrace::off()
        }
    }

    /// Record the request's shape once known.
    #[inline]
    pub fn set_shape(&mut self, m: usize, k: usize) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.m = m;
            inner.k = k;
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (m, k);
        }
    }

    /// Add a span covering `[start, end]`.
    #[inline]
    pub fn add_span(&mut self, name: &'static str, start: Instant, end: Instant) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.spans.push(TraceSpan::new(
                name,
                start.duration_since(inner.t0).as_secs_f64() * 1e6,
                end.duration_since(start).as_secs_f64() * 1e6,
            ));
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (name, start, end);
        }
    }

    /// Mark the job as entering its lane channel: the coalesce wait
    /// starts now.
    #[inline]
    pub fn mark_enqueued(&mut self) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.enqueued = Some(Instant::now());
        }
    }

    /// Close the coalesce wait at `kernel_start` (also used on timeout /
    /// panic paths, where the wait is the whole story).
    #[inline]
    pub fn coalesce_end(&mut self, kernel_start: Instant) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            if let Some(enq) = inner.enqueued.take() {
                inner.spans.push(TraceSpan::new(
                    "coalesce wait",
                    enq.duration_since(inner.t0).as_secs_f64() * 1e6,
                    kernel_start.duration_since(enq).as_secs_f64() * 1e6,
                ));
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = kernel_start;
        }
    }

    /// Attribute this request's share of the batch's kernel-phase times:
    /// one span per non-empty phase, `share` (= `m / m_live`) of the
    /// batch total, laid out sequentially from `kernel_start`.
    #[inline]
    pub fn add_phases(&mut self, kernel_start: Instant, phases: &PhaseSet, share: f64) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            let mut at = kernel_start.duration_since(inner.t0).as_secs_f64() * 1e6;
            for (phase, seconds, _count) in phases.rows() {
                if seconds <= 0.0 {
                    continue;
                }
                let dur_us = seconds * share * 1e6;
                inner.spans.push(TraceSpan::new(
                    format!("kernel: {}", phase.name()),
                    at,
                    dur_us,
                ));
                at += dur_us;
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (kernel_start, phases, share);
        }
    }

    /// Convert into an exportable [`Trace`]. `None` when tracing is
    /// compiled out or the recorder was inert.
    #[inline]
    pub fn finish(
        self,
        trace_id: u64,
        lane: &'static str,
        status: &'static str,
        total: Duration,
    ) -> Option<Trace> {
        #[cfg(feature = "obs")]
        {
            let inner = self.inner?;
            Some(Trace {
                trace_id,
                lane: lane.to_string(),
                status: status.to_string(),
                m: inner.m,
                k: inner.k,
                t0_us: inner.t0_us,
                total_us: total.as_secs_f64() * 1e6,
                spans: inner.spans,
            })
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (trace_id, lane, status, total);
            None
        }
    }

    /// Whether this recorder is live (an `obs` build tracing a real
    /// request). Drives the span-annex flag on partition-mode replies.
    #[inline]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "obs")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "obs"))]
        {
            false
        }
    }

    /// Append this request's spans-so-far as a GSTA span annex to `out`.
    /// Returns `false` (writing nothing) when tracing is compiled out or
    /// the recorder is inert. Called from `deliver()` before the reply
    /// write, so the annex carries everything up to — but not — the
    /// "reply write" span; the router's own bracket covers that tail.
    #[inline]
    pub fn encode_annex(&self, out: &mut Vec<u8>) -> bool {
        #[cfg(feature = "obs")]
        {
            let Some(inner) = &self.inner else {
                return false;
            };
            let spans: Vec<crate::wire::AnnexSpan> = inner
                .spans
                .iter()
                .map(|s| crate::wire::AnnexSpan {
                    name: s.name.clone(),
                    start_ns: (s.start_us * 1e3) as i64,
                    dur_ns: (s.dur_us * 1e3) as u64,
                })
                .collect();
            crate::wire::encode_span_annex(&spans, out);
            true
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = out;
            false
        }
    }
}

/// Encode a finished [`Trace`]'s spans as GSTA annex bytes — the form
/// deposited in the [`FragmentRing`] so a later `TraceFetch` sees the
/// complete timeline (including the "reply write" span the inline annex
/// on the reply itself cannot carry).
#[cfg(feature = "obs")]
pub(crate) fn annex_from_trace(trace: &Trace) -> Vec<u8> {
    let spans: Vec<crate::wire::AnnexSpan> = trace
        .spans
        .iter()
        .map(|s| crate::wire::AnnexSpan {
            name: s.name.clone(),
            start_ns: (s.start_us * 1e3) as i64,
            dur_ns: (s.dur_us * 1e3) as u64,
        })
        .collect();
    let mut out = Vec::with_capacity(8 + spans.len() * 32);
    crate::wire::encode_span_annex(&spans, &mut out);
    out
}

/// A bounded ring of recent span-annex fragments keyed by trace id, so
/// a router (or `gsknn-cli trace --distributed`) can pull a backend's
/// side of a slow query after the fact via the `TraceFetch` wire op.
///
/// Same zero-cost discipline as [`ReqTrace`]: without the `obs` feature
/// the struct is zero-sized and `put`/`get` are inlined no-ops.
#[derive(Default)]
pub(crate) struct FragmentRing {
    #[cfg(feature = "obs")]
    inner: Option<std::sync::Mutex<RingInner>>,
}

#[cfg(feature = "obs")]
#[derive(Default)]
struct RingInner {
    cap: usize,
    frags: std::collections::VecDeque<(u64, Vec<u8>)>,
}

impl FragmentRing {
    /// A ring keeping the `cap` most recent fragments (`cap == 0`
    /// disables retention entirely).
    #[inline]
    pub fn new(cap: usize) -> Self {
        #[cfg(feature = "obs")]
        {
            if cap == 0 {
                return Self { inner: None };
            }
            Self {
                inner: Some(std::sync::Mutex::new(RingInner {
                    cap,
                    frags: std::collections::VecDeque::with_capacity(cap),
                })),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = cap;
            Self::default()
        }
    }

    /// Deposit `bytes` under `trace_id`, evicting the oldest entry past
    /// capacity. A re-deposit under the same id replaces the old bytes.
    #[inline]
    pub fn put(&self, trace_id: u64, bytes: Vec<u8>) {
        #[cfg(feature = "obs")]
        if let Some(m) = &self.inner {
            let mut ring = m.lock().unwrap_or_else(|e| e.into_inner());
            ring.frags.retain(|(id, _)| *id != trace_id);
            if ring.frags.len() + 1 > ring.cap {
                ring.frags.pop_front();
            }
            ring.frags.push_back((trace_id, bytes));
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (trace_id, bytes);
        }
    }

    /// Fetch the annex bytes for `trace_id`, if still retained.
    #[inline]
    pub fn get(&self, trace_id: u64) -> Option<Vec<u8>> {
        #[cfg(feature = "obs")]
        {
            let m = self.inner.as_ref()?;
            let ring = m.lock().unwrap_or_else(|e| e.into_inner());
            ring.frags
                .iter()
                .find(|(id, _)| *id == trace_id)
                .map(|(_, b)| b.clone())
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = trace_id;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With tracing compiled out the recorder must be zero-sized — the
    /// structural form of "the serve hot path has zero added
    /// allocations" (same discipline as the kernel's obs guard).
    #[cfg(not(feature = "obs"))]
    #[test]
    fn req_trace_is_zero_sized_without_obs() {
        assert_eq!(std::mem::size_of::<ReqTrace>(), 0);
        let mut t = ReqTrace::start(Instant::now(), Instant::now());
        t.set_shape(3, 8);
        t.add_span("decode", Instant::now(), Instant::now());
        assert!(!t.is_active());
        let mut out = Vec::new();
        assert!(!t.encode_annex(&mut out));
        assert!(out.is_empty());
        assert!(t.finish(1, "f64", "ok", Duration::from_millis(1)).is_none());
    }

    /// The annex/TraceFetch retention path must also compile out
    /// entirely: zero-sized ring, no deposits, no lookups.
    #[cfg(not(feature = "obs"))]
    #[test]
    fn fragment_ring_is_zero_sized_without_obs() {
        assert_eq!(std::mem::size_of::<FragmentRing>(), 0);
        let ring = FragmentRing::new(32);
        ring.put(7, vec![1, 2, 3]);
        assert!(ring.get(7).is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn fragment_ring_retains_recent_and_evicts_oldest() {
        let ring = FragmentRing::new(2);
        ring.put(1, vec![0xa]);
        ring.put(2, vec![0xb]);
        assert_eq!(ring.get(1), Some(vec![0xa]));
        ring.put(3, vec![0xc]);
        assert!(ring.get(1).is_none(), "oldest evicted past cap");
        assert_eq!(ring.get(2), Some(vec![0xb]));
        assert_eq!(ring.get(3), Some(vec![0xc]));
        // re-deposit replaces in place rather than duplicating
        ring.put(2, vec![0xd, 0xe]);
        assert_eq!(ring.get(2), Some(vec![0xd, 0xe]));
        assert_eq!(ring.get(3), Some(vec![0xc]));
        // cap 0 disables retention
        let off = FragmentRing::new(0);
        off.put(9, vec![1]);
        assert!(off.get(9).is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn encode_annex_round_trips_through_the_wire_codec() {
        let epoch = Instant::now();
        let t0 = Instant::now();
        let mut t = ReqTrace::start(epoch, t0);
        assert!(t.is_active());
        std::thread::sleep(Duration::from_millis(1));
        t.add_span("decode", t0, Instant::now());
        let mut out = vec![0xFF]; // annex appends after existing bytes
        assert!(t.encode_annex(&mut out));
        let spans = crate::wire::decode_span_annex(&out[1..]).expect("annex decodes");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "decode");
        assert!(spans[0].dur_ns >= 500_000, "slept ~1 ms before closing");

        // the finished-trace form carries the same spans
        let trace = t
            .finish(5, "f64", "ok", Duration::from_millis(2))
            .expect("obs build yields a trace");
        let bytes = annex_from_trace(&trace);
        let spans2 = crate::wire::decode_span_annex(&bytes).expect("trace annex decodes");
        assert_eq!(spans2.len(), spans.len());
        assert_eq!(spans2[0].name, "decode");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn spans_accumulate_and_finish_into_a_trace() {
        let epoch = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        let t0 = Instant::now();
        let mut t = ReqTrace::start(epoch, t0);
        t.set_shape(2, 5);
        std::thread::sleep(Duration::from_millis(1));
        let dec = Instant::now();
        t.add_span("decode", t0, dec);
        t.mark_enqueued();
        std::thread::sleep(Duration::from_millis(3));
        let kstart = Instant::now();
        t.coalesce_end(kstart);
        let trace = t
            .finish(42, "f32", "ok", kstart.duration_since(t0))
            .expect("obs build yields a trace");
        assert_eq!(trace.trace_id, 42);
        assert_eq!((trace.m, trace.k), (2, 5));
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].name, "decode");
        assert_eq!(trace.spans[1].name, "coalesce wait");
        assert!(trace.spans[1].dur_us >= 2_000.0, "waited ~3 ms");
        assert!(trace.t0_us >= 2_000.0, "t0 is after the epoch");
        // the two spans cover nearly the whole request
        assert!(trace.span_sum_us() <= trace.total_us * 1.05);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn inert_recorder_yields_no_trace() {
        let t = ReqTrace::off();
        assert!(t.finish(1, "f64", "ok", Duration::from_millis(1)).is_none());
    }
}
