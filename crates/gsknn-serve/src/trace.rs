//! The server-side request trace recorder.
//!
//! [`ReqTrace`] rides along with a request: created by the connection
//! handler when a query frame decodes, carried inside the [`Job`]
//! through the lane channel, filled in by the worker (coalesce wait,
//! amortized kernel phases), and finished back on the connection thread
//! after the reply is written. [`ReqTrace::finish`] converts it into a
//! [`gsknn_obs::Trace`] for the slowest-traces ring.
//!
//! Mirrors the [`gsknn_core::obs::PhaseSet`] discipline: without the
//! `obs` cargo feature the struct is **zero-sized** and every method is
//! an inlined no-op, so the serve hot path carries no span bookkeeping
//! and no allocations (the guard test below checks the size
//! structurally, like `gsknn-core/tests/obs_guard.rs` does for the
//! kernel).
//!
//! [`Job`]: crate::server — the lane job struct
//!
//! Span amortization: a coalesced batch runs the kernel once for all
//! its requests, so per-request kernel-phase spans are the batch's
//! phase totals scaled by the request's share of the batch (`m / m_live`
//! query points). The synthetic spans are laid out sequentially after
//! the coalesce wait; their durations — not their exact offsets — are
//! the signal.

use gsknn_core::obs::PhaseSet;
use gsknn_obs::Trace;
#[cfg(feature = "obs")]
use gsknn_obs::TraceSpan;
use std::time::Duration;
use std::time::Instant;

#[cfg(feature = "obs")]
struct Inner {
    /// Request receive time (span starts are relative to this).
    t0: Instant,
    /// `t0` in microseconds since the server epoch.
    t0_us: f64,
    spans: Vec<TraceSpan>,
    /// When the job entered its lane channel (coalesce wait start).
    enqueued: Option<Instant>,
    m: usize,
    k: usize,
}

/// Per-request span recorder; see the module docs. Zero-sized and inert
/// without the `obs` feature.
#[derive(Default)]
pub(crate) struct ReqTrace {
    #[cfg(feature = "obs")]
    inner: Option<Box<Inner>>,
}

impl ReqTrace {
    /// An inert recorder (jobs built outside a live request, e.g. in
    /// the shard unit tests).
    #[inline]
    #[allow(dead_code)]
    pub fn off() -> Self {
        Self::default()
    }

    /// Start recording a request received at `t0`, `epoch` being the
    /// server start (for absolute span placement in the export).
    #[inline]
    pub fn start(epoch: Instant, t0: Instant) -> Self {
        #[cfg(feature = "obs")]
        {
            ReqTrace {
                inner: Some(Box::new(Inner {
                    t0,
                    t0_us: t0.duration_since(epoch).as_secs_f64() * 1e6,
                    spans: Vec::with_capacity(8),
                    enqueued: None,
                    m: 0,
                    k: 0,
                })),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (epoch, t0);
            ReqTrace::off()
        }
    }

    /// Record the request's shape once known.
    #[inline]
    pub fn set_shape(&mut self, m: usize, k: usize) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.m = m;
            inner.k = k;
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (m, k);
        }
    }

    /// Add a span covering `[start, end]`.
    #[inline]
    pub fn add_span(&mut self, name: &'static str, start: Instant, end: Instant) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.spans.push(TraceSpan {
                name: name.to_string(),
                start_us: start.duration_since(inner.t0).as_secs_f64() * 1e6,
                dur_us: end.duration_since(start).as_secs_f64() * 1e6,
            });
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (name, start, end);
        }
    }

    /// Mark the job as entering its lane channel: the coalesce wait
    /// starts now.
    #[inline]
    pub fn mark_enqueued(&mut self) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.enqueued = Some(Instant::now());
        }
    }

    /// Close the coalesce wait at `kernel_start` (also used on timeout /
    /// panic paths, where the wait is the whole story).
    #[inline]
    pub fn coalesce_end(&mut self, kernel_start: Instant) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            if let Some(enq) = inner.enqueued.take() {
                inner.spans.push(TraceSpan {
                    name: "coalesce wait".to_string(),
                    start_us: enq.duration_since(inner.t0).as_secs_f64() * 1e6,
                    dur_us: kernel_start.duration_since(enq).as_secs_f64() * 1e6,
                });
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = kernel_start;
        }
    }

    /// Attribute this request's share of the batch's kernel-phase times:
    /// one span per non-empty phase, `share` (= `m / m_live`) of the
    /// batch total, laid out sequentially from `kernel_start`.
    #[inline]
    pub fn add_phases(&mut self, kernel_start: Instant, phases: &PhaseSet, share: f64) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            let mut at = kernel_start.duration_since(inner.t0).as_secs_f64() * 1e6;
            for (phase, seconds, _count) in phases.rows() {
                if seconds <= 0.0 {
                    continue;
                }
                let dur_us = seconds * share * 1e6;
                inner.spans.push(TraceSpan {
                    name: format!("kernel: {}", phase.name()),
                    start_us: at,
                    dur_us,
                });
                at += dur_us;
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (kernel_start, phases, share);
        }
    }

    /// Convert into an exportable [`Trace`]. `None` when tracing is
    /// compiled out or the recorder was inert.
    #[inline]
    pub fn finish(
        self,
        trace_id: u64,
        lane: &'static str,
        status: &'static str,
        total: Duration,
    ) -> Option<Trace> {
        #[cfg(feature = "obs")]
        {
            let inner = self.inner?;
            Some(Trace {
                trace_id,
                lane: lane.to_string(),
                status: status.to_string(),
                m: inner.m,
                k: inner.k,
                t0_us: inner.t0_us,
                total_us: total.as_secs_f64() * 1e6,
                spans: inner.spans,
            })
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (trace_id, lane, status, total);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With tracing compiled out the recorder must be zero-sized — the
    /// structural form of "the serve hot path has zero added
    /// allocations" (same discipline as the kernel's obs guard).
    #[cfg(not(feature = "obs"))]
    #[test]
    fn req_trace_is_zero_sized_without_obs() {
        assert_eq!(std::mem::size_of::<ReqTrace>(), 0);
        let mut t = ReqTrace::start(Instant::now(), Instant::now());
        t.set_shape(3, 8);
        t.add_span("decode", Instant::now(), Instant::now());
        assert!(t.finish(1, "f64", "ok", Duration::from_millis(1)).is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn spans_accumulate_and_finish_into_a_trace() {
        let epoch = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        let t0 = Instant::now();
        let mut t = ReqTrace::start(epoch, t0);
        t.set_shape(2, 5);
        std::thread::sleep(Duration::from_millis(1));
        let dec = Instant::now();
        t.add_span("decode", t0, dec);
        t.mark_enqueued();
        std::thread::sleep(Duration::from_millis(3));
        let kstart = Instant::now();
        t.coalesce_end(kstart);
        let trace = t
            .finish(42, "f32", "ok", kstart.duration_since(t0))
            .expect("obs build yields a trace");
        assert_eq!(trace.trace_id, 42);
        assert_eq!((trace.m, trace.k), (2, 5));
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].name, "decode");
        assert_eq!(trace.spans[1].name, "coalesce wait");
        assert!(trace.spans[1].dur_us >= 2_000.0, "waited ~3 ms");
        assert!(trace.t0_us >= 2_000.0, "t0 is after the epoch");
        // the two spans cover nearly the whole request
        assert!(trace.span_sum_us() <= trace.total_us * 1.05);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn inert_recorder_yields_no_trace() {
        let t = ReqTrace::off();
        assert!(t.finish(1, "f64", "ok", Duration::from_millis(1)).is_none());
    }
}
