//! Retry policy for transient serve failures: exponential backoff with
//! full jitter, bounded by both an attempt count and a wall-clock
//! deadline.
//!
//! Retryable outcomes are the ones that leave the request unserved but
//! well-formed — `Busy` (admission control bounced it), `ShuttingDown`
//! (another instance may be up by the next attempt), and `Failed` /
//! `InternalError` (a worker panicked; the batch never produced an
//! answer, so re-running it is safe). Everything else is terminal:
//! `Rejected` means the request itself is malformed and will fail again
//! verbatim, `TimedOut` means the latency budget is gone.
//!
//! Full jitter (sleep uniform in `[0, min(cap, base·2^attempt))`) is the
//! standard fix for retry synchronization: with N clients bounced by the
//! same saturated queue, deterministic backoff has them all knock again
//! at the same instant, while full jitter spreads the retries across the
//! whole window. The jitter RNG is a seeded SplitMix64 so tests can make
//! the sleep schedule reproducible.

use std::time::Duration;

/// How [`crate::Client::query_with_retry`] paces its attempts.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Give up after this many attempts (the first try counts as one).
    pub max_attempts: u32,
    /// Backoff base: attempt `i` (0-based) sleeps at most `base · 2^i`.
    pub base: Duration,
    /// Per-sleep ceiling, applied before jitter.
    pub cap: Duration,
    /// Total wall-clock budget across all attempts and sleeps; an
    /// attempt is only launched while the budget has time left.
    pub deadline: Duration,
    /// Seed for the jitter RNG (deterministic sleep schedule per seed).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(500),
            deadline: Duration::from_secs(10),
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeps).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff state for one request's lifetime.
    pub fn start(&self) -> Backoff {
        Backoff {
            policy: self.clone(),
            attempt: 0,
            rng: self.seed.max(1),
        }
    }
}

/// Iterator-like backoff schedule: `next_sleep()` yields the jittered
/// sleep before the *next* attempt, or `None` once attempts run out.
/// The caller enforces the wall-clock deadline (it knows when the
/// request actually started).
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64: one multiply-shift chain per draw.
        self.rng = self.rng.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Attempts consumed so far (starts at 0; bump with [`Backoff::tick`]).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Record one attempt; returns the jittered sleep to take before the
    /// next one, or `None` when the attempt budget is exhausted.
    pub fn tick(&mut self) -> Option<Duration> {
        self.attempt += 1;
        if self.attempt >= self.policy.max_attempts {
            return None;
        }
        // base · 2^(attempt-1), saturating, then capped.
        let exp = (self.attempt - 1).min(30);
        let window = self
            .policy
            .base
            .saturating_mul(1u32 << exp)
            .min(self.policy.cap);
        let nanos = window.as_nanos() as u64;
        if nanos == 0 {
            return Some(Duration::ZERO);
        }
        // full jitter: uniform in [0, window)
        Some(Duration::from_nanos(self.next_u64() % nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_budget_is_exact() {
        let mut b = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        }
        .start();
        assert!(b.tick().is_some()); // after attempt 1
        assert!(b.tick().is_some()); // after attempt 2
        assert!(b.tick().is_none()); // attempt 3 was the last
        assert_eq!(b.attempt(), 3);
    }

    #[test]
    fn no_retry_policy_ticks_out_immediately() {
        let mut b = RetryPolicy::none().start();
        assert!(b.tick().is_none());
    }

    #[test]
    fn sleeps_stay_under_the_jitter_window() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        let mut b = policy.start();
        let mut windows = Vec::new();
        while let Some(sleep) = b.tick() {
            let exp = (b.attempt() - 1).min(30);
            let window = policy.base.saturating_mul(1u32 << exp).min(policy.cap);
            assert!(sleep < window, "sleep {sleep:?} >= window {window:?}");
            windows.push(window);
        }
        // the window doubles then clamps at the cap
        assert_eq!(windows[0], Duration::from_millis(10));
        assert_eq!(windows[1], Duration::from_millis(20));
        assert_eq!(*windows.last().unwrap(), Duration::from_millis(80));
    }

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let sched = |seed: u64| {
            let mut b = RetryPolicy {
                max_attempts: 8,
                seed,
                ..RetryPolicy::default()
            }
            .start();
            let mut out = Vec::new();
            while let Some(s) = b.tick() {
                out.push(s);
            }
            out
        };
        assert_eq!(sched(7), sched(7));
        assert_ne!(sched(7), sched(8), "full jitter must vary by seed");
    }
}
