//! Overload detection with hysteresis: decide when the server should
//! stop optimizing for throughput-per-batch and start shedding load.
//!
//! The signal is queue pressure — in-flight queries as a fraction of the
//! admission cap. A single spike above the threshold means nothing (one
//! large batch admission looks identical), so a transition requires the
//! pressure to hold *continuously* for a window. Recovery is symmetric
//! but uses a lower exit threshold (half the entry threshold) so the
//! detector doesn't flap when pressure hovers at the boundary.
//!
//! The detector is a pure state machine over `(in_flight, cap, now)`
//! observations — no clocks or atomics of its own — so the server's
//! monitor thread can drive it with real time and tests can drive it
//! with synthetic instants.

use std::time::{Duration, Instant};

/// What one observation did to the overload state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// Pressure held above the threshold for the window: degrade now.
    Enter,
    /// Pressure held below the exit threshold for the window: recover.
    Exit,
}

/// Hysteresis state machine over queue-pressure observations.
#[derive(Debug)]
pub struct OverloadDetector {
    /// Enter overload when `in_flight >= threshold_frac · cap` holds for
    /// a full window.
    threshold_frac: f64,
    /// How long pressure must hold (above entry or below exit) to flip.
    window: Duration,
    degraded: bool,
    /// When the current qualifying streak (above entry while normal,
    /// below exit while degraded) began.
    streak_since: Option<Instant>,
}

impl OverloadDetector {
    pub fn new(threshold_frac: f64, window: Duration) -> Self {
        assert!(
            threshold_frac > 0.0 && threshold_frac <= 1.0,
            "threshold must be a fraction of the queue cap, got {threshold_frac}"
        );
        OverloadDetector {
            threshold_frac,
            window,
            degraded: false,
            streak_since: None,
        }
    }

    /// Currently shedding load?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Feed one queue sample; returns the transition it caused (if any).
    pub fn observe(&mut self, in_flight: u64, cap: usize, now: Instant) -> Transition {
        let frac = if cap == 0 {
            0.0
        } else {
            in_flight as f64 / cap as f64
        };
        let qualifying = if self.degraded {
            frac < self.threshold_frac * 0.5
        } else {
            frac >= self.threshold_frac
        };
        if !qualifying {
            self.streak_since = None;
            return Transition::None;
        }
        let since = *self.streak_since.get_or_insert(now);
        if now.duration_since(since) >= self.window {
            self.degraded = !self.degraded;
            self.streak_since = None;
            if self.degraded {
                Transition::Enter
            } else {
                Transition::Exit
            }
        } else {
            Transition::None
        }
    }
}

/// The degraded batch target: keep batches small so latency stays
/// bounded while the queue drains. Quartering undoes roughly two
/// doublings of the model's amortization ladder; the floor keeps a
/// target of 1 meaningful.
pub fn degraded_target(normal_target: usize) -> usize {
    (normal_target / 4).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn single_spike_does_not_degrade() {
        let mut d = OverloadDetector::new(0.75, Duration::from_millis(100));
        let base = t0();
        assert_eq!(d.observe(80, 100, base), Transition::None);
        // pressure vanishes before the window elapses
        assert_eq!(
            d.observe(10, 100, base + Duration::from_millis(50)),
            Transition::None
        );
        // even much later, the streak restarted
        assert_eq!(
            d.observe(80, 100, base + Duration::from_millis(500)),
            Transition::None
        );
        assert!(!d.is_degraded());
    }

    #[test]
    fn sustained_pressure_enters_and_recovery_exits() {
        let mut d = OverloadDetector::new(0.75, Duration::from_millis(100));
        let base = t0();
        assert_eq!(d.observe(90, 100, base), Transition::None);
        assert_eq!(
            d.observe(90, 100, base + Duration::from_millis(100)),
            Transition::Enter
        );
        assert!(d.is_degraded());
        // still overloaded: nothing more fires
        assert_eq!(
            d.observe(95, 100, base + Duration::from_millis(150)),
            Transition::None
        );
        // pressure below exit threshold (0.375 here) must also hold
        let calm = base + Duration::from_millis(200);
        assert_eq!(d.observe(10, 100, calm), Transition::None);
        assert_eq!(
            d.observe(10, 100, calm + Duration::from_millis(100)),
            Transition::Exit
        );
        assert!(!d.is_degraded());
    }

    #[test]
    fn hysteresis_band_holds_the_degraded_state() {
        let mut d = OverloadDetector::new(0.8, Duration::from_millis(10));
        let base = t0();
        d.observe(90, 100, base);
        assert_eq!(
            d.observe(90, 100, base + Duration::from_millis(10)),
            Transition::Enter
        );
        // 50% of cap: below entry (80%) but above exit (40%) — stays
        // degraded indefinitely
        for i in 0..10 {
            assert_eq!(
                d.observe(50, 100, base + Duration::from_millis(20 + i * 10)),
                Transition::None
            );
        }
        assert!(d.is_degraded());
    }

    #[test]
    fn zero_cap_reads_as_idle() {
        let mut d = OverloadDetector::new(0.5, Duration::ZERO);
        assert_eq!(d.observe(100, 0, t0()), Transition::None);
        assert!(!d.is_degraded());
    }

    #[test]
    fn degraded_target_quarters_with_a_floor() {
        assert_eq!(degraded_target(64), 16);
        assert_eq!(degraded_target(4), 1);
        assert_eq!(degraded_target(3), 1);
        assert_eq!(degraded_target(1), 1);
    }
}
