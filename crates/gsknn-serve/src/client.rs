//! Blocking client for the serve protocol — one `TcpStream`, frames in,
//! frames out. Used by `gsknn-cli query-remote`, the CI smoke test and
//! `examples/serve_roundtrip.rs`.

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Precision, QueryBody, Request,
    Response, Status,
};
use gsknn_core::GsknnScalar;
use knn_select::NeighborTable;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What a query came back as.
#[derive(Clone, Debug)]
pub enum Outcome<T: GsknnScalar> {
    /// Neighbor rows, one per query point, truncated to the requested `k`.
    Neighbors(NeighborTable<T>),
    /// Admission control bounced the request; retry with backoff.
    Busy,
    /// The latency budget expired before the kernel started.
    TimedOut,
    /// Server is draining.
    ShuttingDown,
    /// Server-side rejection (dimension mismatch, bad `k`, …).
    Rejected(String),
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Bound the time any single call may block on the socket (covers
    /// coalescing delay plus kernel time; `None` = wait forever).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Ping)?.status {
            Status::Ok => Ok(()),
            other => Err(io::Error::other(format!("ping answered {other:?}"))),
        }
    }

    /// kNN for `m` query points packed point-major into `coords`
    /// (`coords.len() == m · dim`). The element type picks the wire
    /// precision and the server lane. `deadline_ms` is the latency
    /// budget: half may be spent coalescing, all of it exhausted means
    /// [`Outcome::TimedOut`].
    pub fn query<T: GsknnScalar>(
        &mut self,
        coords: &[T],
        m: usize,
        k: usize,
        deadline_ms: u32,
    ) -> io::Result<Outcome<T>> {
        assert!(m >= 1, "need at least one query point");
        assert_eq!(coords.len() % m, 0, "coords must be m * dim long");
        let precision = if T::BYTES == 4 {
            Precision::F32
        } else {
            Precision::F64
        };
        let req = Request::Query(QueryBody {
            precision,
            k,
            deadline_ms,
            dim: coords.len() / m,
            m,
            coords: coords.iter().map(|v| v.to_f64()).collect(),
        });
        let resp = self.round_trip(&req)?;
        Ok(match resp.status {
            Status::Ok => Outcome::Neighbors(
                NeighborTable::<T>::from_bytes(&resp.body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            ),
            Status::Busy => Outcome::Busy,
            Status::Timeout => Outcome::TimedOut,
            Status::ShuttingDown => Outcome::ShuttingDown,
            Status::Error => Outcome::Rejected(String::from_utf8_lossy(&resp.body).into_owned()),
        })
    }

    /// Fetch the server's [`gsknn_obs::ServeReport`] as a JSON string.
    pub fn stats(&mut self) -> io::Result<String> {
        let resp = self.round_trip(&Request::Stats)?;
        match resp.status {
            Status::Ok => String::from_utf8(resp.body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            other => Err(io::Error::other(format!("stats answered {other:?}"))),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)?.status {
            Status::Ok => Ok(()),
            other => Err(io::Error::other(format!("shutdown answered {other:?}"))),
        }
    }
}
