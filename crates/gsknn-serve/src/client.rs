//! Blocking client for the serve protocol — one `TcpStream`, frames in,
//! frames out. Used by `gsknn-cli query-remote`, the CI smoke test and
//! `examples/serve_roundtrip.rs`.
//!
//! Every socket operation is bounded by default: connect, read and write
//! all time out rather than hanging on a wedged server (override with
//! [`Client::set_io_timeout`], `None` = wait forever). For transient
//! failures — admission-control `Busy`, a draining server, a worker
//! panic answered with `InternalError`, or a dropped connection —
//! [`Client::query_with_retry`] re-issues the request under a
//! [`RetryPolicy`] (exponential backoff, full jitter), reconnecting as
//! needed.

use crate::retry::RetryPolicy;
use crate::wire::{
    decode_partial, decode_response, encode_request, is_partial_body, read_frame_poll, write_frame,
    PartialHeader, Precision, QueryBody, Request, Response, Status,
};
use gsknn_core::GsknnScalar;
use knn_select::NeighborTable;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Default bound on establishing the TCP connection.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// Default bound on any single socket read or write (covers coalescing
/// delay plus kernel time for the slowest reasonable batch).
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// What a query came back as.
#[derive(Clone, Debug)]
pub enum Outcome<T: GsknnScalar> {
    /// Neighbor rows, one per query point, truncated to the requested `k`.
    Neighbors(NeighborTable<T>),
    /// Neighbor rows computed at reduced precision (f32 lane) because the
    /// server was shedding load. Correct ids, lower-precision distances.
    Degraded(NeighborTable<T>),
    /// A scatter-gather router answered with partitions missing: the
    /// rows are the exact merge of the `contributed` (of `total`)
    /// partitions that made the deadline. Neighbors owned by the dead
    /// partitions are absent, so recall is best-effort until the router
    /// reports the backend healthy again.
    DegradedPartial {
        /// Merged neighbor rows from the surviving partitions.
        table: NeighborTable<T>,
        /// Partitions whose answers are in the merge.
        contributed: u16,
        /// Partitions in the full fan-out.
        total: u16,
    },
    /// One partition's top-k from a backend running in partition mode,
    /// ids already global. Routers consume this; an end client talking
    /// straight to a partitioned backend sees it too (the table covers
    /// only that backend's slice of the reference set).
    Partial {
        /// Partition identity and epoch the payload was computed under.
        header: PartialHeader,
        /// The partition-local top-k rows (global ids).
        table: NeighborTable<T>,
    },
    /// Admission control bounced the request; retry with backoff.
    Busy,
    /// The latency budget expired before the kernel started.
    TimedOut,
    /// Server is draining.
    ShuttingDown,
    /// Server-side rejection (dimension mismatch, bad `k`, non-finite
    /// coordinates, …) — retrying the same request cannot succeed.
    Rejected(String),
    /// The worker handling the batch panicked before producing an
    /// answer; the request was never partially applied, so it is safe
    /// to retry.
    Failed(String),
}

impl<T: GsknnScalar> Outcome<T> {
    /// `true` for outcomes where re-sending the identical request can
    /// succeed (the server never acted on it).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Outcome::Busy | Outcome::ShuttingDown | Outcome::Failed(_)
        )
    }
}

/// A query's full result: the outcome, the measured round-trip time
/// (write → decoded reply, as seen by this client — reported for every
/// outcome, `Busy` and `TimedOut` included), and the trace id the
/// server echoed in the response header.
#[derive(Clone, Debug)]
pub struct QueryReply<T: GsknnScalar> {
    pub outcome: Outcome<T>,
    /// Wall-clock round trip of the attempt that produced `outcome`
    /// (the final attempt, under retry).
    pub rtt: Duration,
    /// Trace id this request traveled under; quote it against the
    /// server's slow-query log or exported trace ring.
    pub trace_id: u64,
}

/// A process-unique, never-zero trace id: pid in the high bits, a
/// counter in the low 40 (zero on the wire means "server, pick one").
fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let seq = NEXT.fetch_add(1, Ordering::Relaxed);
    let id = (u64::from(std::process::id()) << 40) | (seq & ((1 << 40) - 1));
    if id == 0 {
        1
    } else {
        id
    }
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
    /// Resolved server addresses, kept for reconnect-on-retry.
    addrs: Vec<SocketAddr>,
    io_timeout: Option<Duration>,
}

impl Client {
    /// Connect to a server with the default connect and I/O timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Client::connect_with_timeout(addr, DEFAULT_CONNECT_TIMEOUT)
    }

    /// Connect with an explicit bound on connection establishment.
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        connect_timeout: Duration,
    ) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Self::open(&addrs, connect_timeout)?;
        let mut client = Client {
            stream,
            addrs,
            io_timeout: None,
        };
        client.set_io_timeout(Some(DEFAULT_IO_TIMEOUT))?;
        Ok(client)
    }

    fn open(addrs: &[SocketAddr], connect_timeout: Duration) -> io::Result<TcpStream> {
        let mut last_err = None;
        for sa in addrs {
            match TcpStream::connect_timeout(sa, connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to dial")))
    }

    /// Drop the current connection and dial the server again.
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = Self::open(&self.addrs, DEFAULT_CONNECT_TIMEOUT)?;
        let timeout = self.io_timeout;
        self.set_io_timeout(timeout)
    }

    /// The configured per-call socket bound ([`Client::set_io_timeout`]).
    /// Helpers that shrink the bound temporarily (the retry episode's
    /// deadline clamp, [`Client::poll_readable`]) restore this value.
    pub fn io_timeout(&self) -> Option<Duration> {
        self.io_timeout
    }

    /// Bound the time any single call may block on the socket (covers
    /// coalescing delay plus kernel time; `None` = wait forever).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.io_timeout = timeout;
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        self.recv_response()
    }

    /// Send one request frame and block for its response — the raw
    /// exchange underneath every typed helper. The scatter-gather router
    /// uses this to relay a decoded client request to a backend verbatim.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.round_trip(req)
    }

    /// Write one request frame without waiting for the reply. Pair with
    /// [`Client::recv_response`]; the protocol answers every frame with
    /// exactly one frame in order, so a caller may pipeline sends to many
    /// servers and then collect the replies — the router's fan-out writes
    /// to every backend before blocking on the first read, making the
    /// total wait the *slowest* backend rather than the sum.
    pub fn send_request(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_request(req))
    }

    /// Wait up to `timeout` for response bytes to arrive, **without
    /// consuming them** (`MSG_PEEK`). `Ok(true)` means the next
    /// [`Client::recv_response`] will not block on an empty socket;
    /// `Ok(false)` means the wire stayed quiet and the stream is still
    /// clean — unlike a timed-out `recv_response`, which may abandon a
    /// half-read frame. The router's hedge race polls a slow primary
    /// and a hedged sibling replica this way and then reads only from
    /// whoever answered.
    pub fn poll_readable(&mut self, timeout: Duration) -> io::Result<bool> {
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let mut probe = [0u8; 1];
        let ready = match self.stream.peek(&mut probe) {
            Ok(0) => Err(io::Error::from(io::ErrorKind::UnexpectedEof)),
            Ok(_) => Ok(true),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(false)
            }
            Err(e) => Err(e),
        };
        // restore the configured timeout for the next blocking call
        let configured = self.io_timeout;
        self.stream.set_read_timeout(configured)?;
        ready
    }

    /// Read and decode the next response frame (blocking, bounded by the
    /// I/O timeout).
    pub fn recv_response(&mut self) -> io::Result<Response> {
        // `read_frame_poll` re-arms after every socket-level timeout, so
        // the configured I/O bound has to be enforced here: a server
        // that stays mute past `io_timeout` is a timed-out exchange, not
        // an invitation to wait another round. (The server relies on
        // that looping behavior for coalescing delays; the client must
        // not, or retry deadlines and the router's per-backend budget
        // would never fire against a wedged-but-alive peer.)
        let deadline = self.io_timeout.map(|t| Instant::now() + t);
        let timed_out = move || deadline.is_some_and(|d| Instant::now() >= d);
        match read_frame_poll(&mut self.stream, &timed_out)? {
            Some(payload) => {
                decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
            None if timed_out() => Err(io::Error::from(io::ErrorKind::TimedOut)),
            None => Err(io::Error::from(io::ErrorKind::UnexpectedEof)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Ping)?.status {
            Status::Ok => Ok(()),
            other => Err(io::Error::other(format!("ping answered {other:?}"))),
        }
    }

    fn build_query<T: GsknnScalar>(
        coords: &[T],
        m: usize,
        k: usize,
        deadline_ms: u32,
        trace_id: u64,
    ) -> Request {
        assert!(m >= 1, "need at least one query point");
        assert_eq!(coords.len() % m, 0, "coords must be m * dim long");
        let precision = if T::BYTES == 4 {
            Precision::F32
        } else {
            Precision::F64
        };
        Request::Query(QueryBody {
            precision,
            k,
            deadline_ms,
            trace_id,
            dim: coords.len() / m,
            m,
            coords: coords.iter().map(|v| v.to_f64()).collect(),
        })
    }

    fn interpret<T: GsknnScalar>(resp: Response) -> io::Result<Outcome<T>> {
        let table = |body: &[u8]| {
            NeighborTable::<T>::from_bytes(body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        };
        let partial = |body: &[u8]| {
            let (header, table_bytes) =
                decode_partial(body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            Ok::<_, io::Error>((header, table(table_bytes)?))
        };
        Ok(match resp.status {
            Status::Ok => Outcome::Neighbors(table(&resp.body)?),
            // A router stamps a partial envelope onto OkDegraded when
            // partitions went missing; a single node's degraded-lane
            // answer is a bare NeighborTable. The body magic says which.
            Status::OkDegraded if is_partial_body(&resp.body) => {
                let (header, table) = partial(&resp.body)?;
                Outcome::DegradedPartial {
                    table,
                    contributed: header.contributed,
                    total: header.total,
                }
            }
            Status::OkDegraded => Outcome::Degraded(table(&resp.body)?),
            Status::PartialTopK => {
                let (header, table) = partial(&resp.body)?;
                Outcome::Partial { header, table }
            }
            Status::Busy => Outcome::Busy,
            Status::Timeout => Outcome::TimedOut,
            Status::ShuttingDown => Outcome::ShuttingDown,
            Status::Error | Status::BadRequest => {
                Outcome::Rejected(String::from_utf8_lossy(&resp.body).into_owned())
            }
            Status::InternalError => {
                Outcome::Failed(String::from_utf8_lossy(&resp.body).into_owned())
            }
        })
    }

    /// kNN for `m` query points packed point-major into `coords`
    /// (`coords.len() == m · dim`). The element type picks the wire
    /// precision and the server lane. `deadline_ms` is the latency
    /// budget: half may be spent coalescing, all of it exhausted means
    /// [`Outcome::TimedOut`]. A fresh trace id is assigned; to pick your
    /// own, use [`Client::query_traced`].
    pub fn query<T: GsknnScalar>(
        &mut self,
        coords: &[T],
        m: usize,
        k: usize,
        deadline_ms: u32,
    ) -> io::Result<QueryReply<T>> {
        self.query_traced(coords, m, k, deadline_ms, next_trace_id())
    }

    /// Like [`Client::query`] with a caller-chosen trace id (`0` asks
    /// the server to assign one; the echoed id is in the reply).
    pub fn query_traced<T: GsknnScalar>(
        &mut self,
        coords: &[T],
        m: usize,
        k: usize,
        deadline_ms: u32,
        trace_id: u64,
    ) -> io::Result<QueryReply<T>> {
        let req = Self::build_query(coords, m, k, deadline_ms, trace_id);
        let started = Instant::now();
        let resp = self.round_trip(&req)?;
        let rtt = started.elapsed();
        let echoed = resp.trace_id;
        Ok(QueryReply {
            outcome: Self::interpret(resp)?,
            rtt,
            trace_id: echoed,
        })
    }

    /// Like [`Client::query`], but re-issuing the request under `policy`
    /// whenever the outcome is transient ([`Outcome::is_retryable`]) or
    /// the connection itself failed (in which case it reconnects first).
    /// Returns the last outcome when attempts or the deadline run out;
    /// I/O errors only surface if the final attempt dies on the wire.
    ///
    /// The policy's wall-clock deadline is a hard bound on the whole
    /// episode: each attempt's socket I/O is clamped to the remaining
    /// budget, so a wedged server cannot hold one attempt open past the
    /// deadline the policy promised (the server is already enforcing
    /// the request's own `deadline_ms`; the client must not keep the
    /// episode alive long after both have expired).
    pub fn query_with_retry<T: GsknnScalar>(
        &mut self,
        coords: &[T],
        m: usize,
        k: usize,
        deadline_ms: u32,
        policy: &RetryPolicy,
    ) -> io::Result<QueryReply<T>> {
        // attempts shrink the socket timeout to the remaining episode
        // budget; put the configured bound back whatever happened
        let configured = self.io_timeout;
        let result = self.query_with_retry_inner(coords, m, k, deadline_ms, policy, configured);
        let _ = self.set_io_timeout(configured);
        result
    }

    fn query_with_retry_inner<T: GsknnScalar>(
        &mut self,
        coords: &[T],
        m: usize,
        k: usize,
        deadline_ms: u32,
        policy: &RetryPolicy,
        configured: Option<Duration>,
    ) -> io::Result<QueryReply<T>> {
        // one trace id for the whole retry episode: every attempt of
        // this request shows up under the same id server-side
        let req = Self::build_query(coords, m, k, deadline_ms, next_trace_id());
        let started = Instant::now();
        let mut backoff = policy.start();
        let mut broken = false;
        loop {
            if broken {
                // Best effort: a failed redial counts as a failed attempt.
                broken = self.reconnect().is_err();
            }
            // clamp this attempt's socket ops to the remaining episode
            // budget (floored so set_read_timeout never sees zero)
            let remaining = policy.deadline.saturating_sub(started.elapsed());
            let bound = configured
                .map_or(remaining, |t| t.min(remaining))
                .max(Duration::from_millis(1));
            if !broken {
                broken = self.set_io_timeout(Some(bound)).is_err();
            }
            let attempt = Instant::now();
            let result = if broken {
                Err(io::Error::from(io::ErrorKind::NotConnected))
            } else {
                self.round_trip(&req)
            };
            let (reply, retryable) = match result {
                Ok(resp) => {
                    let rtt = attempt.elapsed();
                    let echoed = resp.trace_id;
                    let outcome = Self::interpret::<T>(resp)?;
                    let retryable = outcome.is_retryable();
                    (
                        Some(QueryReply {
                            outcome,
                            rtt,
                            trace_id: echoed,
                        }),
                        retryable,
                    )
                }
                Err(e) => {
                    broken = true;
                    match backoff.tick() {
                        Some(sleep) if started.elapsed() + sleep < policy.deadline => {
                            std::thread::sleep(sleep);
                            continue;
                        }
                        _ => return Err(e),
                    }
                }
            };
            if let (Some(reply), true) = (&reply, retryable) {
                if let Some(sleep) = backoff.tick() {
                    if started.elapsed() + sleep < policy.deadline {
                        std::thread::sleep(sleep);
                        continue;
                    }
                }
                return Ok(reply.clone());
            }
            return Ok(reply.expect("non-retryable branch always has an outcome"));
        }
    }

    /// Fetch the server's [`gsknn_obs::ServeReport`] as a JSON string.
    pub fn stats(&mut self) -> io::Result<String> {
        let resp = self.round_trip(&Request::Stats)?;
        match resp.status {
            Status::Ok => String::from_utf8(resp.body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            other => Err(io::Error::other(format!("stats answered {other:?}"))),
        }
    }

    /// Fetch the server's Prometheus-style plaintext metrics exposition.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        let resp = self.round_trip(&Request::Metrics)?;
        match resp.status {
            Status::Ok => String::from_utf8(resp.body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            other => Err(io::Error::other(format!("metrics answered {other:?}"))),
        }
    }

    /// Fetch the server's slowest-traces ring as Chrome trace-event JSON
    /// (load it at `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn traces_json(&mut self) -> io::Result<String> {
        let resp = self.round_trip(&Request::Traces)?;
        match resp.status {
            Status::Ok => String::from_utf8(resp.body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            other => Err(io::Error::other(format!("traces answered {other:?}"))),
        }
    }

    /// Fetch the raw GSTA span-annex bytes the server retained for
    /// `trace_id` (empty when the id has aged out of the fragment ring
    /// or the server was built without its `obs` feature). Against a
    /// router, the body is the stitched distributed trace as Chrome
    /// trace-event JSON instead.
    pub fn trace_fetch(&mut self, trace_id: u64) -> io::Result<Vec<u8>> {
        let resp = self.round_trip(&Request::TraceFetch(trace_id))?;
        match resp.status {
            Status::Ok => Ok(resp.body),
            other => Err(io::Error::other(format!("trace_fetch answered {other:?}"))),
        }
    }

    /// Fetch the server's per-second load time-series as JSON (rendered
    /// live by `gsknn-cli top`; `enabled: false` when the server was
    /// built without its `obs` feature).
    pub fn timeseries_json(&mut self) -> io::Result<String> {
        let resp = self.round_trip(&Request::TimeSeries)?;
        match resp.status {
            Status::Ok => String::from_utf8(resp.body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            other => Err(io::Error::other(format!("timeseries answered {other:?}"))),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)?.status {
            Status::Ok => Ok(()),
            other => Err(io::Error::other(format!("shutdown answered {other:?}"))),
        }
    }
}
