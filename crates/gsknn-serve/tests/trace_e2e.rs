//! Acceptance test for the gsknn-trace observability layer: drives a
//! mixed-precision workload of 200+ queries through a live server over
//! real TCP and checks that the three exposition surfaces agree:
//!
//! * every reply echoes the caller-chosen trace id (or a server-assigned
//!   nonzero one when the wire carries 0),
//! * the per-(lane, status) latency histograms in the Stats JSON sum to
//!   exactly the number of query requests served,
//! * the slowest-traces ring exports coalesce-wait and kernel-phase
//!   spans whose durations sum to within 10% of the client-measured
//!   round trip (spans exist only with the `obs` feature; without it the
//!   ring must export an empty, still-parseable document),
//! * the Prometheus exposition reports the same counts as the Stats op.
//!
//! The index uses one tree with leaf >= N, so results are exact and the
//! workload cannot produce timeouts from pruning pathologies.

use gsknn_serve::{Client, Outcome, ServeIndex, Server, ServerConfig};
use serde_json::Value;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

const N: usize = 600;
const D: usize = 8;

fn start_server(cfg: ServerConfig) -> (SocketAddr, thread::JoinHandle<gsknn_serve::ServeReport>) {
    let refs = dataset::uniform(N, D, 1);
    // exact configuration: one tree, leaf covers the whole table
    let index = ServeIndex::build(refs, 1, N, 7);
    let server = Server::bind(cfg, index).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// Value of a single un-labelled counter/gauge line in the exposition.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("exposition missing {name}:\n{text}"))
}

#[test]
fn trace_ids_histograms_and_expositions_agree_end_to_end() {
    let (addr, handle) = start_server(ServerConfig {
        workers_per_lane: 2,
        queue_cap: 256,
        max_batch: 64,
        k_max: 16,
        trace_ring: 8,
        ..ServerConfig::default()
    });

    // Phase 1: 4 client threads (2 per precision), 52 single-point
    // queries each = 208 mixed queries, every one with a caller-chosen
    // trace id that the reply must echo.
    let per_thread = 52usize;
    thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_io_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let pool = dataset::uniform(64, D, 500 + t);
                for i in 0..per_thread {
                    let q = pool.point(i % pool.len());
                    let id = ((t + 1) << 32) | (i as u64 + 1);
                    if t % 2 == 0 {
                        let reply = client.query_traced::<f64>(q, 1, 4, 40, id).expect("query");
                        assert_eq!(reply.trace_id, id, "f64 thread {t} req {i}: echoed id");
                        assert!(
                            matches!(reply.outcome, Outcome::Neighbors(_)),
                            "f64 thread {t} req {i}: {:?}",
                            reply.outcome
                        );
                    } else {
                        let q32: Vec<f32> = q.iter().map(|&v| v as f32).collect();
                        let reply = client
                            .query_traced::<f32>(&q32, 1, 4, 40, id)
                            .expect("query");
                        assert_eq!(reply.trace_id, id, "f32 thread {t} req {i}: echoed id");
                        assert!(
                            matches!(reply.outcome, Outcome::Neighbors(_)),
                            "f32 thread {t} req {i}: {:?}",
                            reply.outcome
                        );
                    }
                }
            });
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_io_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let probe = dataset::uniform(1, D, 999);

    // Wire trace id 0 asks the server to assign one.
    let reply = client
        .query_traced::<f64>(probe.point(0), 1, 4, 40, 0)
        .expect("query");
    assert_ne!(reply.trace_id, 0, "server must assign a nonzero trace id");
    assert!(matches!(reply.outcome, Outcome::Neighbors(_)));

    // Phase 2: lone queries with a long deadline. Nothing else is in
    // flight, so the coalescer holds each one until its flush budget
    // expires and the coalesce-wait span dominates the round trip —
    // these become the slowest traces in the ring by a wide margin.
    let mut slow: Vec<(u64, Duration)> = Vec::new();
    for j in 0..3u64 {
        let id = (0xabc << 40) | (j + 1);
        let reply = client
            .query_traced::<f64>(probe.point(0), 1, 4, 300, id)
            .expect("slow query");
        assert_eq!(reply.trace_id, id);
        assert!(matches!(reply.outcome, Outcome::Neighbors(_)));
        assert!(
            reply.rtt >= Duration::from_millis(50),
            "lone 300ms-deadline query should wait on the coalescer, rtt {:?}",
            reply.rtt
        );
        slow.push((id, reply.rtt));
    }

    let total_requests = (4 * per_thread + 1 + 3) as u64;

    // Phase 3: Stats op — latency rows must account for every query
    // request exactly once.
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).expect("stats JSON");
    let rows = stats
        .get("latency")
        .and_then(Value::as_array)
        .expect("stats JSON carries latency rows");
    let hist_total: u64 = rows
        .iter()
        .map(|row| row.get("count").and_then(Value::as_u64).expect("row count"))
        .sum();
    assert_eq!(
        hist_total, total_requests,
        "latency histogram counts must sum to the query request count"
    );
    let mut lanes_seen = std::collections::BTreeSet::new();
    for row in rows {
        assert_eq!(
            row.get("status").and_then(Value::as_str),
            Some("ok"),
            "workload terminates Ok only: {row:?}"
        );
        assert!(
            row.get("p50_us")
                .and_then(Value::as_f64)
                .expect("populated row has p50")
                > 0.0,
            "quantiles come from real samples: {row:?}"
        );
        lanes_seen.insert(
            row.get("lane")
                .and_then(Value::as_str)
                .expect("lane label")
                .to_string(),
        );
    }
    assert!(
        lanes_seen.contains("f64") && lanes_seen.contains("f32"),
        "both precision lanes served traffic: {lanes_seen:?}"
    );

    // Phase 4: Prometheus exposition reflects the same counts.
    let text = client.metrics_text().expect("metrics exposition");
    assert!(
        text.contains("# TYPE gsknn_requests_total counter"),
        "exposition carries TYPE headers:\n{text}"
    );
    assert_eq!(metric_value(&text, "gsknn_queries_total"), total_requests);
    assert_eq!(metric_value(&text, "gsknn_busy_total"), 0);
    assert_eq!(metric_value(&text, "gsknn_timeouts_total"), 0);
    let exposed_count: u64 = text
        .lines()
        .filter(|l| l.starts_with("gsknn_request_latency_seconds_count{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().expect("count"))
        .sum();
    assert_eq!(
        exposed_count, total_requests,
        "exposition latency counts must match the Stats op"
    );

    // Phase 5: slowest-traces ring as Chrome trace-event JSON.
    let doc: Value = serde_json::from_str(&client.traces_json().expect("traces op"))
        .expect("chrome trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");

    #[cfg(feature = "obs")]
    {
        for (id, rtt) in &slow {
            let id_hex = format!("{id:016x}");
            let spans: Vec<&Value> = events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("X")
                        && e.get("args")
                            .and_then(|a| a.get("trace_id"))
                            .and_then(Value::as_str)
                            == Some(&id_hex)
                })
                .collect();
            assert!(
                !spans.is_empty(),
                "slow trace {id_hex} must survive in the ring"
            );
            let names: Vec<&str> = spans
                .iter()
                .map(|e| e.get("name").and_then(Value::as_str).expect("span name"))
                .collect();
            assert!(
                names.contains(&"coalesce wait"),
                "slow trace {id_hex} records its coalesce wait: {names:?}"
            );
            assert!(
                names.iter().any(|n| n.starts_with("kernel: ")),
                "slow trace {id_hex} records amortized kernel phases: {names:?}"
            );
            let span_sum_us: f64 = spans
                .iter()
                .map(|e| e.get("dur").and_then(Value::as_f64).expect("span dur"))
                .sum();
            let rtt_us = rtt.as_secs_f64() * 1e6;
            let ratio = span_sum_us / rtt_us;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "trace {id_hex}: span sum {span_sum_us:.0}us vs measured rtt {rtt_us:.0}us \
                 (ratio {ratio:.3}) must agree within 10%"
            );
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = &slow;
        assert!(
            events.is_empty(),
            "with tracing compiled out the ring exports an empty document"
        );
    }

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread");
    assert_eq!(report.queries, total_requests);
    assert_eq!(
        report
            .latency
            .iter()
            .map(|row| row.hist.count())
            .sum::<u64>(),
        total_requests,
        "final ServeReport carries the same histograms"
    );
}
