//! End-to-end service tests over real TCP sockets.
//!
//! Exactness setup: the index uses **one tree with leaf ≥ N**, so every
//! query routes to a single leaf holding all references and
//! `Forest::query` degenerates to exact brute force — any batching or
//! thread interleaving the server picks must reproduce the oracle
//! bit-for-bit (per precision). The coalescer's m-chunking is result-
//! preserving by construction, so mixed traffic from concurrent clients
//! is a pure scheduling question, which these tests probe.

use dataset::{DistanceKind, PointSet};
use gsknn_core::FusedScalar;
use gsknn_serve::{Client, Outcome, RetryPolicy, ServeIndex, Server, ServerConfig};
use knn_select::Neighbor;
use serde_json::Value;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

const N: usize = 600;
const D: usize = 8;

fn start_server(cfg: ServerConfig) -> (SocketAddr, thread::JoinHandle<gsknn_serve::ServeReport>) {
    let refs = dataset::uniform(N, D, 1);
    // exact configuration: one tree, leaf covers the whole table
    let index = ServeIndex::build(refs, 1, N, 7);
    let server = Server::bind(cfg, index).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// Exact kNN indices by brute force at the query's own precision.
fn brute_indices<T: FusedScalar>(refs: &PointSet<T>, q: &[T], k: usize) -> Vec<u32> {
    let mut cands: Vec<Neighbor<T>> = (0..refs.len())
        .map(|j| Neighbor::new(DistanceKind::SqL2.eval(q, refs.point(j)), j as u32))
        .collect();
    cands.sort_unstable_by(Neighbor::cmp_dist_idx);
    cands[..k].iter().map(|nb| nb.idx).collect()
}

fn counter(stats: &Value, key: &str) -> u64 {
    stats.get(key).and_then(|v| v.as_u64()).unwrap_or_else(|| {
        panic!("stats JSON missing {key}: {stats:?}");
    })
}

#[test]
fn mixed_precision_traffic_matches_oracle_exactly() {
    let (addr, handle) = start_server(ServerConfig {
        workers_per_lane: 2,
        queue_cap: 256,
        coalesce_frac: 0.9,
        max_batch: 64,
        k_max: 16,
        ..ServerConfig::default()
    });
    let refs64 = dataset::uniform(N, D, 1);
    let refs32 = refs64.cast::<f32>();

    // 4 client threads (2 per precision), each 25 singles + 15 batches
    // of 5 = 100 query points -> 400 mixed queries total
    let total_points: usize = thread::scope(|s| {
        (0..4u64)
            .map(|t| {
                let refs64 = &refs64;
                let refs32 = &refs32;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .set_io_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let pool = dataset::uniform(100, D, 100 + t);
                    let mut points = 0usize;
                    for r in 0..40usize {
                        let m = if r < 25 { 1 } else { 5 };
                        let k = 1 + (r % 10);
                        let mut coords = Vec::with_capacity(m * D);
                        for p in 0..m {
                            coords.extend_from_slice(pool.point((r + p * 40) % 100));
                        }
                        if t % 2 == 0 {
                            let out = client
                                .query::<f64>(&coords, m, k, 120)
                                .expect("query")
                                .outcome;
                            let Outcome::Neighbors(table) = out else {
                                panic!("thread {t} req {r}: unexpected {out:?}");
                            };
                            assert_eq!(table.len(), m);
                            assert_eq!(table.k(), k);
                            for row in 0..m {
                                let got: Vec<u32> =
                                    table.row(row).iter().map(|nb| nb.idx).collect();
                                let want =
                                    brute_indices(refs64, &coords[row * D..(row + 1) * D], k);
                                assert_eq!(got, want, "f64 thread {t} req {r} row {row}");
                            }
                        } else {
                            let c32: Vec<f32> = coords.iter().map(|&v| v as f32).collect();
                            let out = client.query::<f32>(&c32, m, k, 120).expect("query").outcome;
                            let Outcome::Neighbors(table) = out else {
                                panic!("thread {t} req {r}: unexpected {out:?}");
                            };
                            for row in 0..m {
                                let got: Vec<u32> =
                                    table.row(row).iter().map(|nb| nb.idx).collect();
                                let want = brute_indices(refs32, &c32[row * D..(row + 1) * D], k);
                                assert_eq!(got, want, "f32 thread {t} req {r} row {row}");
                            }
                        }
                        points += m;
                    }
                    points
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert!(
        total_points >= 200,
        "need >= 200 queries, got {total_points}"
    );

    let mut client = Client::connect(addr).unwrap();
    client.ping().expect("ping");
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).expect("stats JSON");
    assert_eq!(counter(&stats, "queries"), total_points as u64);
    assert_eq!(counter(&stats, "busy"), 0);
    assert_eq!(counter(&stats, "errors"), 0);
    assert_eq!(counter(&stats, "timeouts"), 0);
    assert!(counter(&stats, "batches") >= 1);

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread");
    assert_eq!(report.queries, total_points as u64);
    assert!(
        report.drift_ratio().is_some(),
        "batches ran, drift must exist"
    );
}

#[test]
fn coalescer_flushes_on_both_triggers() {
    let cfg = ServerConfig {
        workers_per_lane: 1,
        queue_cap: 512,
        coalesce_frac: 0.9,
        max_batch: 128,
        k_max: 8,
        ..ServerConfig::default()
    };
    // The model target must be a real threshold (> 1) for the deadline
    // trigger to be observable at all.
    {
        let refs = dataset::uniform(N, D, 1);
        let probe = Server::bind(cfg.clone(), ServeIndex::build(refs, 1, N, 7)).unwrap();
        let targets = probe.batch_targets();
        assert!(targets[0].1 > 1, "f64 m* = {} is degenerate", targets[0].1);
    }
    let (addr, handle) = start_server(cfg);
    let mut client = Client::connect(addr).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Deadline trigger: one lonely query can never reach m*, so its
    // flush must be deadline-driven.
    let pool = dataset::uniform(200, D, 42);
    let out = client
        .query::<f64>(pool.point(0), 1, 4, 60)
        .unwrap()
        .outcome;
    assert!(matches!(out, Outcome::Neighbors(_)), "got {out:?}");
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    assert!(
        counter(&stats, "flush_deadline") >= 1,
        "lonely query must flush on deadline: {stats:?}"
    );
    let model_before = counter(&stats, "flush_model");

    // Model trigger: a batch >= max_batch >= m* arrives as one job and
    // crosses the target immediately.
    let mut coords = Vec::with_capacity(128 * D);
    for p in 0..128 {
        coords.extend_from_slice(pool.point(p % 200));
    }
    let out = client.query::<f64>(&coords, 128, 4, 2000).unwrap().outcome;
    assert!(matches!(out, Outcome::Neighbors(_)), "got {out:?}");
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    assert!(
        counter(&stats, "flush_model") > model_before,
        "batch >= m* must flush on the model trigger: {stats:?}"
    );

    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert!(report.flushes.model >= 1);
    assert!(report.flushes.deadline >= 1);
}

#[test]
fn saturated_queue_returns_busy() {
    let (addr, handle) = start_server(ServerConfig {
        workers_per_lane: 1,
        queue_cap: 8,
        max_batch: 64,
        k_max: 8,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let pool = dataset::uniform(16, D, 5);
    let coords: Vec<f64> = (0..16).flat_map(|p| pool.point(p).to_vec()).collect();

    // a batch larger than the whole admission budget bounces whole
    let out = client.query::<f64>(&coords, 16, 4, 500).unwrap().outcome;
    assert!(matches!(out, Outcome::Busy), "got {out:?}");

    // a batch that fits is served
    let out = client
        .query::<f64>(&coords[..8 * D], 8, 4, 500)
        .unwrap()
        .outcome;
    assert!(matches!(out, Outcome::Neighbors(_)), "got {out:?}");

    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    assert_eq!(counter(&stats, "busy"), 1);

    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.busy, 1);
}

#[test]
fn zero_budget_request_times_out() {
    let (addr, handle) = start_server(ServerConfig {
        workers_per_lane: 1,
        k_max: 8,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let pool = dataset::uniform(4, D, 9);
    let out = client.query::<f64>(pool.point(0), 1, 4, 0).unwrap().outcome;
    assert!(matches!(out, Outcome::TimedOut), "got {out:?}");
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    assert!(counter(&stats, "timeouts") >= 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_requests_are_rejected_not_fatal() {
    let (addr, handle) = start_server(ServerConfig {
        k_max: 8,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // wrong dimension
    let out = client.query::<f64>(&[1.0, 2.0], 1, 4, 100).unwrap().outcome;
    assert!(matches!(out, Outcome::Rejected(_)), "got {out:?}");
    // k over the cap
    let pool = dataset::uniform(1, D, 3);
    let out = client
        .query::<f64>(pool.point(0), 1, 99, 100)
        .unwrap()
        .outcome;
    assert!(matches!(out, Outcome::Rejected(_)), "got {out:?}");
    // non-finite coordinate
    let mut bad = pool.point(0).to_vec();
    bad[0] = f64::NAN;
    let out = client.query::<f64>(&bad, 1, 4, 100).unwrap().outcome;
    assert!(matches!(out, Outcome::Rejected(_)), "got {out:?}");

    // the connection survives all three and the server still answers
    let out = client
        .query::<f64>(pool.point(0), 1, 4, 100)
        .unwrap()
        .outcome;
    assert!(matches!(out, Outcome::Neighbors(_)), "got {out:?}");
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    assert_eq!(counter(&stats, "errors"), 3);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn retry_converges_against_a_saturated_queue() {
    // coalesce_frac = 1.0 clamps the model target to max_batch — an
    // unreachable bar — so a batch with a long deadline parks in the
    // coalescer for deadline/2, keeping the admission budget full for a
    // known window.
    let (addr, handle) = start_server(ServerConfig {
        workers_per_lane: 1,
        queue_cap: 8,
        coalesce_frac: 1.0,
        max_batch: 64,
        k_max: 8,
        ..ServerConfig::default()
    });
    let pool = dataset::uniform(16, D, 5);
    let coords: Vec<f64> = (0..8).flat_map(|p| pool.point(p).to_vec()).collect();

    let hog = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        // 8 points fill the cap; they coalesce for ~1 s before flushing
        client.query::<f64>(&coords, 8, 4, 2000).unwrap().outcome
    });
    thread::sleep(Duration::from_millis(50)); // let the hog get admitted

    let mut client = Client::connect(addr).unwrap();
    // without retries, the saturated queue bounces the request
    let out = client
        .query::<f64>(pool.point(9), 1, 4, 500)
        .unwrap()
        .outcome;
    assert!(matches!(out, Outcome::Busy), "got {out:?}");

    // with retries, backoff outlasts the hog's coalescing window and the
    // request lands once the budget frees up
    let policy = RetryPolicy {
        max_attempts: 50,
        base: Duration::from_millis(50),
        cap: Duration::from_millis(200),
        deadline: Duration::from_secs(10),
        seed: 99,
    };
    let reply = client
        .query_with_retry::<f64>(pool.point(9), 1, 4, 500, &policy)
        .unwrap();
    let out = reply.outcome;
    assert!(
        matches!(out, Outcome::Neighbors(_)),
        "retry must converge once the queue drains, got {out:?}"
    );
    assert!(reply.rtt > Duration::ZERO, "retry reply carries the rtt");

    assert!(matches!(hog.join().unwrap(), Outcome::Neighbors(_)));
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    assert!(counter(&stats, "busy") >= 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn retry_episode_respects_the_wall_clock_deadline() {
    use std::io::Read;
    use std::time::Instant;

    // A black-hole backend: accepts connections, reads forever, never
    // answers. Without the episode deadline, a generous socket timeout
    // would let each attempt block for its full configured bound and the
    // retry loop overrun the budget the caller promised upstream.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind black hole");
    let addr = listener.local_addr().unwrap();
    let hole = thread::spawn(move || {
        let mut conns = Vec::new();
        listener.set_nonblocking(true).unwrap();
        let until = Instant::now() + Duration::from_secs(4);
        while Instant::now() < until {
            if let Ok((s, _)) = listener.accept() {
                s.set_nonblocking(true).ok();
                conns.push(s);
            }
            let mut buf = [0u8; 4096];
            for c in &mut conns {
                let _ = c.read(&mut buf); // drain, never reply
            }
            thread::sleep(Duration::from_millis(5));
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    // configured socket timeout far beyond the episode budget: the
    // deadline clamp, not this bound, must cut each attempt short
    client
        .set_io_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let policy = RetryPolicy {
        max_attempts: 50,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(40),
        deadline: Duration::from_millis(400),
        seed: 3,
    };
    let started = Instant::now();
    let q = vec![0.0f64; D];
    let result = client.query_with_retry::<f64>(&q, 1, 4, 500, &policy);
    let elapsed = started.elapsed();
    assert!(result.is_err(), "a mute backend cannot produce an outcome");
    assert!(
        elapsed < Duration::from_secs(3),
        "episode ran {elapsed:?}, far past the 400ms deadline"
    );
    // the clamp must not poison later requests: the configured socket
    // timeout is restored after the episode
    assert_eq!(client.io_timeout(), Some(Duration::from_secs(30)));
    hole.join().unwrap();
}

#[test]
fn overload_degrades_precision_and_recovers() {
    let (addr, handle) = start_server(ServerConfig {
        workers_per_lane: 1,
        queue_cap: 8,
        coalesce_frac: 1.0, // park batches: sustained, deterministic pressure
        max_batch: 64,
        k_max: 8,
        degrade_precision: true,
        overload_threshold: 0.5,
        overload_window: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let refs64 = dataset::uniform(N, D, 1);
    let refs32 = refs64.cast::<f32>();
    let pool = dataset::uniform(16, D, 5);
    let coords: Vec<f64> = (0..6).flat_map(|p| pool.point(p).to_vec()).collect();

    // 6 of 8 slots in flight for ~2 s: pressure 0.75 >= threshold 0.5
    let hog = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query::<f64>(&coords, 6, 4, 4000).unwrap().outcome
    });
    thread::sleep(Duration::from_millis(400)); // window + margin

    // an f64 query under overload is served degraded from the f32 lane
    let mut client = Client::connect(addr).unwrap();
    let q = pool.point(9);
    let out = client.query::<f64>(q, 1, 4, 400).unwrap().outcome;
    let Outcome::Degraded(table) = out else {
        panic!("expected a degraded answer under overload, got {out:?}");
    };
    // ids match brute force at the precision that actually served it
    let got: Vec<u32> = table.row(0).iter().map(|nb| nb.idx).collect();
    let q32: Vec<f32> = q.iter().map(|&v| v as f32).collect();
    assert_eq!(got, brute_indices(&refs32, &q32, 4));
    let _ = refs64; // precision contrast is the point of the cast above

    assert!(matches!(hog.join().unwrap(), Outcome::Neighbors(_)));
    // pressure is gone; after the recovery window full precision returns
    thread::sleep(Duration::from_millis(400));
    let out = client.query::<f64>(q, 1, 4, 400).unwrap().outcome;
    assert!(
        matches!(out, Outcome::Neighbors(_)),
        "recovered server must answer at full precision, got {out:?}"
    );

    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    assert!(counter(&stats, "degraded_queries") >= 1, "{stats:?}");
    assert!(counter(&stats, "overload_events") >= 1, "{stats:?}");
    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert!(report.degraded_queries >= 1);
    assert!(report.overload_events >= 1);
}

#[test]
fn degenerate_shapes_get_typed_errors() {
    let (addr, handle) = start_server(ServerConfig {
        k_max: 2 * N, // over the index size, so k > n is reachable
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    let pool = dataset::uniform(1, D, 3);

    // more neighbors than references
    let out = client
        .query::<f64>(pool.point(0), 1, N + 1, 100)
        .unwrap()
        .outcome;
    let Outcome::Rejected(msg) = out else {
        panic!("k > n must be rejected, got {out:?}");
    };
    assert!(msg.contains("exceeds"), "unhelpful message: {msg}");

    // a finite f64 coordinate that overflows f32 must be rejected by the
    // f32 lane's validation, not panic the worker mid-pack. The client
    // API can't express this (its f32 path takes &[f32]), so speak wire
    // directly: precision = f32 with a coordinate only f64 can hold.
    {
        use gsknn_serve::wire::{
            decode_response, encode_request, read_frame, write_frame, Precision, QueryBody,
            Request, Status,
        };
        let mut big = pool.point(0).to_vec();
        big[0] = 1e300;
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let req = Request::Query(QueryBody {
            precision: Precision::F32,
            k: 4,
            deadline_ms: 100,
            trace_id: 0,
            dim: D,
            m: 1,
            coords: big,
        });
        write_frame(&mut stream, &encode_request(&req)).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        let resp = decode_response(&payload).unwrap();
        assert_eq!(
            resp.status,
            Status::BadRequest,
            "f32-overflowing coordinate must be a typed error"
        );
    }
    // the same value is fine on the f64 lane
    let mut big = pool.point(0).to_vec();
    big[0] = 1e300;
    let out = client.query::<f64>(&big, 1, 4, 100).unwrap().outcome;
    assert!(
        matches!(out, Outcome::Neighbors(_)),
        "finite f64 is fine on the f64 lane, got {out:?}"
    );

    // the connection still works afterwards
    let out = client
        .query::<f64>(pool.point(0), 1, 4, 100)
        .unwrap()
        .outcome;
    assert!(matches!(out, Outcome::Neighbors(_)), "got {out:?}");
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The sharded hot path (`shards: 2`, pinned cores, adaptive
/// coalescing) against the same oracle: the acceptor round-robins
/// clients over shards, every answer must still be brute force
/// bit-for-bit (recall 1.0), per-shard rows must reach the stats with
/// the traffic split across both shards, and the `Shutdown` drain must
/// answer in-flight work before the sockets close. This is also the
/// compat gate for removing the legacy thread-per-connection accept
/// path: the clients here speak the unchanged wire protocol.
#[test]
fn sharded_server_matches_oracle_and_drains_cleanly() {
    let (addr, handle) = start_server(ServerConfig {
        shards: 2,
        pin_cores: true,
        adaptive_coalesce: true,
        queue_cap: 256,
        max_batch: 64,
        k_max: 16,
        ..ServerConfig::default()
    });
    let refs64 = dataset::uniform(N, D, 1);
    let refs32 = refs64.cast::<f32>();

    // 4 clients round-robined over the 2 shards, mixed precisions
    let total: usize = thread::scope(|s| {
        (0..4u64)
            .map(|t| {
                let refs64 = &refs64;
                let refs32 = &refs32;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .set_io_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let pool = dataset::uniform(64, D, 500 + t);
                    let mut answered = 0usize;
                    for r in 0..24usize {
                        let m = 1 + r % 3;
                        let k = 1 + r % 8;
                        let mut coords = Vec::with_capacity(m * D);
                        for p in 0..m {
                            coords.extend_from_slice(pool.point((r + 7 * p) % 64));
                        }
                        if t % 2 == 0 {
                            let out = client
                                .query::<f64>(&coords, m, k, 500)
                                .expect("query")
                                .outcome;
                            let Outcome::Neighbors(table) = out else {
                                panic!("thread {t} req {r}: unexpected {out:?}");
                            };
                            for row in 0..m {
                                let q = &coords[row * D..(row + 1) * D];
                                let got: Vec<u32> =
                                    table.row(row).iter().map(|nb| nb.idx).collect();
                                assert_eq!(got, brute_indices(refs64, q, k), "t{t} r{r}");
                            }
                        } else {
                            let q32: Vec<f32> = coords.iter().map(|&v| v as f32).collect();
                            let out = client.query::<f32>(&q32, m, k, 500).expect("query").outcome;
                            let Outcome::Neighbors(table) = out else {
                                panic!("thread {t} req {r}: unexpected {out:?}");
                            };
                            for row in 0..m {
                                let q = &q32[row * D..(row + 1) * D];
                                let got: Vec<u32> =
                                    table.row(row).iter().map(|nb| nb.idx).collect();
                                assert_eq!(got, brute_indices(refs32, q, k), "t{t} r{r}");
                            }
                        }
                        answered += m;
                    }
                    answered
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });

    // per-shard accounting reached the stats and both shards took load
    let mut client = Client::connect(addr).unwrap();
    let stats: Value = serde_json::from_str(&client.stats().unwrap()).unwrap();
    let shards = stats
        .get("shards")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("stats JSON missing shards array: {stats:?}"))
        .clone();
    assert_eq!(shards.len(), 2, "{stats:?}");
    let shard_queries: u64 = shards.iter().map(|s| counter(s, "queries")).sum();
    assert_eq!(shard_queries as usize, total, "{stats:?}");
    for s in &shards {
        assert!(counter(s, "conns") >= 2, "round-robin spread: {stats:?}");
        assert!(counter(s, "queries") >= 1, "both shards served: {stats:?}");
    }

    // a query in flight when the drain starts must still be answered
    let parked: Vec<f64> = refs64.point(0).to_vec();
    let worker = thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_io_timeout(Some(Duration::from_secs(30))).unwrap();
        c.query::<f64>(&parked, 1, 4, 10_000).unwrap().outcome
    });
    thread::sleep(Duration::from_millis(30));
    client.shutdown().unwrap();
    let out = worker.join().unwrap();
    assert!(
        matches!(out, Outcome::Neighbors(_)),
        "in-flight work must be answered during drain, got {out:?}"
    );
    let report = handle.join().unwrap();
    assert_eq!(report.queries as usize, total + 1);
    assert_eq!(report.shards.len(), 2);
}

#[test]
fn shutdown_drains_pending_work() {
    let (addr, handle) = start_server(ServerConfig {
        workers_per_lane: 1,
        queue_cap: 512,
        max_batch: 256,
        k_max: 8,
        ..ServerConfig::default()
    });
    let pool = dataset::uniform(300, D, 77);
    let coords: Vec<f64> = (0..2).flat_map(|p| pool.point(p).to_vec()).collect();

    let worker = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .set_io_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        // tiny batch, huge coalesce budget: it can only come back before
        // the 5 s flush deadline if the drain flushes it
        client.query::<f64>(&coords, 2, 4, 10_000).unwrap().outcome
    });
    // let the query reach the lane, then drain
    thread::sleep(Duration::from_millis(30));
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();

    let out = worker.join().unwrap();
    assert!(
        matches!(out, Outcome::Neighbors(_)),
        "queued work must be answered during drain, got {out:?}"
    );
    let report = handle.join().unwrap();
    assert_eq!(report.queries, 2);
    assert!(
        report.flushes.drain >= 1,
        "drain flush expected: {:?}",
        report.flushes
    );
}
