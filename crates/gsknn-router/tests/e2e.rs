//! End-to-end scatter-gather contract, in-process: two partitioned
//! backends behind a router must answer **bit-identically** to one node
//! holding the full reference set (and to the brute-force oracle) while
//! healthy; killing a backend must produce a *typed* degraded answer
//! that is the exact merge of the survivors; a restarted backend must
//! rejoin via the prober and restore exact answers.
//!
//! Servers are built exact (one tree, leaf ≥ N). Router-vs-single-node
//! comparisons are bitwise — both sides run the same fused kernel.
//! Oracle comparisons are id-exact with a distance tolerance, because a
//! naive `dist_sq_l2` loop differs from the kernel by final-ULP
//! rounding.

use dataset::{uniform, DistanceKind, PointSet};
use gsknn_core::GsknnScalar;
use gsknn_router::{Router, RouterConfig};
use gsknn_serve::{Client, Outcome, PartitionCfg, ServeIndex, Server, ServerConfig};
use knn_select::{Neighbor, NeighborTable};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const N: usize = 400;
const D: usize = 8;
const K: usize = 7;
const M: usize = 3;
const EPOCH: u64 = 1;

fn slice_rows(x: &PointSet, lo: usize, hi: usize) -> PointSet {
    PointSet::from_vec(D, hi - lo, x.as_slice()[lo * D..hi * D].to_vec())
}

/// Brute-force oracle over `rows` of the full set, ids offset to global.
fn oracle_row<T: GsknnScalar>(
    refs: &PointSet<T>,
    rows: std::ops::Range<usize>,
    q: &[T],
    k: usize,
) -> Vec<Neighbor<T>> {
    let mut cands: Vec<Neighbor<T>> = rows
        .map(|j| Neighbor::new(DistanceKind::SqL2.eval(q, refs.point(j)), j as u32))
        .collect();
    cands.sort_unstable_by(Neighbor::cmp_dist_idx);
    cands.truncate(k);
    cands
}

/// Compare against the naive oracle by neighbor *ids*: the fused kernel
/// and a plain `dist_sq_l2` loop differ in the last ULPs of a distance,
/// so distances are checked loosely while the id sequence must match
/// exactly (the repo-wide `--min-recall 1.0` convention).
fn assert_rows_match_oracle<T: GsknnScalar>(
    got: &NeighborTable<T>,
    want: &[Vec<Neighbor<T>>],
    ctx: &str,
) {
    assert_eq!(got.len(), want.len(), "{ctx}: row count");
    for (i, w) in want.iter().enumerate() {
        let got_ids: Vec<u32> = got.row(i)[..w.len()].iter().map(|n| n.idx).collect();
        let want_ids: Vec<u32> = w.iter().map(|n| n.idx).collect();
        assert_eq!(got_ids, want_ids, "{ctx}: row {i} ids");
        for (g, w) in got.row(i).iter().zip(w) {
            let (g, w) = (g.dist.to_f64(), w.dist.to_f64());
            assert!(
                (g - w).abs() <= 1e-6 * w.max(1.0),
                "{ctx}: row {i} distance {g} vs oracle {w}"
            );
        }
    }
}

/// Spawn an exact (single-leaf) server; `partition` turns on GSPK
/// replies. Returns the bound address and the drain handle.
fn spawn_server(
    addr: &str,
    refs: PointSet,
    partition: Option<PartitionCfg>,
) -> (String, JoinHandle<()>) {
    let n = refs.len();
    let cfg = ServerConfig {
        addr: addr.to_string(),
        partition,
        ..ServerConfig::default()
    };
    let index = ServeIndex::build(refs, 1, n, 7);
    let server = Server::bind(cfg, index).expect("bind backend");
    let bound = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        server.run();
    });
    (bound, handle)
}

fn shutdown(addr: &str) {
    Client::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
}

fn router_metrics(addr: &str) -> String {
    Client::connect(addr)
        .expect("connect router")
        .metrics_text()
        .expect("metrics")
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn router_is_bit_identical_then_degrades_then_recovers() {
    let full = uniform(N, D, 1);
    let half = N / 2;
    let queries = uniform(M, D, 99);
    let coords64: Vec<f64> = (0..M).flat_map(|i| queries.point(i).to_vec()).collect();

    // two partitioned backends + one single-node reference server
    let (b0, h0) = spawn_server(
        "127.0.0.1:0",
        slice_rows(&full, 0, half),
        Some(PartitionCfg::solo(0, 2, 0, EPOCH)),
    );
    let (b1, h1) = spawn_server(
        "127.0.0.1:0",
        slice_rows(&full, half, N),
        Some(PartitionCfg::solo(1, 2, half as u32, EPOCH)),
    );
    let (single, hs) = spawn_server("127.0.0.1:0", full.clone(), None);

    let router = Router::bind(RouterConfig {
        backends: vec![b0.clone(), b1.clone()],
        epoch: EPOCH,
        probe_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let raddr = router.local_addr().expect("router addr").to_string();
    let hr = std::thread::spawn(move || router.run());

    let mut client = Client::connect(&raddr).expect("connect router");
    let mut single_client = Client::connect(&single).expect("connect single");

    // Phase 1 — healthy: router == single node == oracle, bitwise, both
    // precisions.
    let want64: Vec<_> = (0..M)
        .map(|i| oracle_row::<f64>(&full, 0..N, queries.point(i), K))
        .collect();
    let reply = client
        .query::<f64>(&coords64, M, K, 2000)
        .expect("router query");
    let routed = match reply.outcome {
        Outcome::Neighbors(t) => t,
        other => panic!("healthy router answered {other:?}"),
    };
    assert_rows_match_oracle(&routed, &want64, "router vs oracle (f64)");
    let single_reply = single_client
        .query::<f64>(&coords64, M, K, 2000)
        .expect("single query");
    match single_reply.outcome {
        Outcome::Neighbors(t) => {
            for i in 0..M {
                assert_eq!(routed.row(i), t.row(i), "router vs single node, row {i}");
            }
        }
        other => panic!("single node answered {other:?}"),
    }

    let full32 = full.cast::<f32>();
    let queries32 = queries.cast::<f32>();
    let coords32: Vec<f32> = (0..M).flat_map(|i| queries32.point(i).to_vec()).collect();
    let want32: Vec<_> = (0..M)
        .map(|i| oracle_row::<f32>(&full32, 0..N, queries32.point(i), K))
        .collect();
    match client
        .query::<f32>(&coords32, M, K, 2000)
        .expect("router f32 query")
        .outcome
    {
        Outcome::Neighbors(t) => assert_rows_match_oracle(&t, &want32, "router vs oracle (f32)"),
        other => panic!("healthy router answered {other:?} (f32)"),
    }

    // Phase 2 — kill backend 1 mid-flight: the router must keep
    // answering with a typed partial (exact merge of partition 0) and
    // flip the health gauge.
    shutdown(&b1);
    h1.join().expect("backend 1 drain");
    let want_part0: Vec<_> = (0..M)
        .map(|i| oracle_row::<f64>(&full, 0..half, queries.point(i), K))
        .collect();
    let mut degraded_seen = false;
    for _ in 0..20 {
        let reply = client
            .query::<f64>(&coords64, M, K, 2000)
            .expect("degraded query");
        match reply.outcome {
            Outcome::DegradedPartial {
                table,
                contributed,
                total,
            } => {
                assert_eq!((contributed, total), (1, 2), "partition counts");
                assert_rows_match_oracle(
                    &table,
                    &want_part0,
                    "degraded merge vs partition-0 oracle",
                );
                degraded_seen = true;
                break;
            }
            // the first query after the kill may still ride the old
            // connection's buffered state — retry while it settles
            Outcome::Neighbors(_) | Outcome::Failed(_) => {
                std::thread::sleep(Duration::from_millis(50))
            }
            other => panic!("unexpected outcome while degraded: {other:?}"),
        }
    }
    assert!(degraded_seen, "router never produced a DegradedPartial");
    let metrics = router_metrics(&raddr);
    assert!(
        metrics.contains("gsknn_router_backend_up{backend=\"1\"} 0"),
        "health gauge for the dead backend should read 0:\n{metrics}"
    );
    assert!(
        metrics.contains("gsknn_router_backend_up{backend=\"0\"} 1"),
        "surviving backend should stay up:\n{metrics}"
    );

    // Phase 3 — restart backend 1 on the same address: the prober must
    // fold it back in and exact answers must return.
    let (_b1_again, h1b) = spawn_server(
        &b1,
        slice_rows(&full, half, N),
        Some(PartitionCfg::solo(1, 2, half as u32, EPOCH)),
    );
    wait_for(
        || router_metrics(&raddr).contains("gsknn_router_backend_up{backend=\"1\"} 1"),
        "backend 1 to rejoin",
    );
    let mut exact_again = false;
    for _ in 0..20 {
        match client
            .query::<f64>(&coords64, M, K, 2000)
            .expect("recovered query")
            .outcome
        {
            Outcome::Neighbors(t) => {
                assert_rows_match_oracle(&t, &want64, "post-recovery router vs oracle");
                exact_again = true;
                break;
            }
            Outcome::DegradedPartial { .. } => std::thread::sleep(Duration::from_millis(50)),
            other => panic!("unexpected outcome after rejoin: {other:?}"),
        }
    }
    assert!(exact_again, "router never returned to exact answers");
    let metrics = router_metrics(&raddr);
    assert!(
        metrics.contains("gsknn_router_rejoins_total 1"),
        "rejoin counter:\n{metrics}"
    );

    // drain everything
    Client::connect(&raddr).unwrap().shutdown().unwrap();
    hr.join().expect("router drain");
    shutdown(&b0);
    shutdown(&b1);
    h0.join().expect("backend 0 drain");
    h1b.join().expect("backend 1 drain (restart)");
    shutdown(&single);
    hs.join().expect("single drain");
}

#[test]
fn router_rejects_stale_epoch_partials() {
    let full = uniform(120, D, 3);
    let (b0, h0) = spawn_server(
        "127.0.0.1:0",
        full.clone(),
        Some(PartitionCfg::solo(0, 1, 0, 99)), // epoch stale relative to the router's map
    );
    let router = Router::bind(RouterConfig {
        backends: vec![b0.clone()],
        epoch: EPOCH,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let raddr = router.local_addr().expect("router addr").to_string();
    let hr = std::thread::spawn(move || router.run());

    let mut client = Client::connect(&raddr).expect("connect router");
    let q = vec![0.25f64; D];
    match client.query::<f64>(&q, 1, 4, 2000).expect("query").outcome {
        Outcome::Failed(msg) => {
            assert!(msg.contains("no partition answered"), "message: {msg}")
        }
        other => panic!("stale-epoch fan-out answered {other:?}"),
    }
    let metrics = router_metrics(&raddr);
    assert!(
        metrics.contains("gsknn_router_epoch_rejects_total 1"),
        "epoch reject counter:\n{metrics}"
    );

    Client::connect(&raddr).unwrap().shutdown().unwrap();
    hr.join().expect("router drain");
    shutdown(&b0);
    h0.join().expect("backend drain");
}

/// Spawn one replica of a partition slice: same rows, same global
/// numbering, distinct replica identity in the GSPK envelope.
fn spawn_replica(
    full: &PointSet,
    lo: usize,
    hi: usize,
    part: u16,
    replica: u16,
    replicas: u16,
) -> (String, JoinHandle<()>) {
    spawn_server(
        "127.0.0.1:0",
        slice_rows(full, lo, hi),
        Some(PartitionCfg {
            id: part,
            total: 2,
            offset: lo as u32,
            epoch: EPOCH,
            replica,
            replicas,
        }),
    )
}

fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
}

#[test]
fn replicated_router_survives_replica_loss_without_degrading() {
    let full = uniform(N, D, 2);
    let half = N / 2;
    let queries = uniform(M, D, 42);
    let coords: Vec<f64> = (0..M).flat_map(|i| queries.point(i).to_vec()).collect();

    // 2 partitions x 2 replicas, backends listed partition-major
    let (p0r0, h00) = spawn_replica(&full, 0, half, 0, 0, 2);
    let (p0r1, h01) = spawn_replica(&full, 0, half, 0, 1, 2);
    let (p1r0, h10) = spawn_replica(&full, half, N, 1, 0, 2);
    let (p1r1, h11) = spawn_replica(&full, half, N, 1, 1, 2);

    let router = Router::bind(RouterConfig {
        backends: vec![p0r0.clone(), p0r1.clone(), p1r0.clone(), p1r1.clone()],
        replicas: 2,
        epoch: EPOCH,
        backend_timeout: Duration::from_secs(1),
        probe_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let raddr = router.local_addr().expect("router addr").to_string();
    let hr = std::thread::spawn(move || router.run());
    let mut client = Client::connect(&raddr).expect("connect router");

    // Phase 1 — healthy: exact answers, matching the oracle.
    let want: Vec<_> = (0..M)
        .map(|i| oracle_row::<f64>(&full, 0..N, queries.point(i), K))
        .collect();
    let healthy = match client
        .query::<f64>(&coords, M, K, 2000)
        .expect("healthy query")
        .outcome
    {
        Outcome::Neighbors(t) => t,
        other => panic!("healthy replicated router answered {other:?}"),
    };
    assert_rows_match_oracle(&healthy, &want, "replicated router vs oracle");

    // Phase 2 — kill one replica of partition 1. Every subsequent query
    // must stay *undegraded* and bitwise-identical to the healthy run:
    // the sibling replica covers the slice.
    shutdown(&p1r0);
    h10.join().expect("p1r0 drain");
    for round in 0..10 {
        match client
            .query::<f64>(&coords, M, K, 2000)
            .expect("query after replica loss")
            .outcome
        {
            Outcome::Neighbors(t) => {
                for i in 0..M {
                    assert_eq!(
                        t.row(i),
                        healthy.row(i),
                        "round {round}: row {i} differs from the healthy run"
                    );
                }
            }
            other => panic!("round {round}: replica loss degraded the answer: {other:?}"),
        }
    }
    let metrics = router_metrics(&raddr);
    assert_eq!(
        metric_value(&metrics, "gsknn_router_degraded_total"),
        0,
        "no degraded answers with a live sibling:\n{metrics}"
    );
    assert!(
        metric_value(&metrics, "gsknn_router_replica_failovers_total") >= 1,
        "the dead replica must have been failed over:\n{metrics}"
    );
    wait_for(
        || {
            router_metrics(&raddr)
                .contains("gsknn_router_replica_up{partition=\"1\",replica=\"0\"} 0")
        },
        "replica gauge to flip down",
    );

    // Phase 3 — kill the second replica of partition 1: the whole
    // replica set is down, so the router must now produce the *typed*
    // degraded answer, exactly the surviving partition's oracle.
    shutdown(&p1r1);
    h11.join().expect("p1r1 drain");
    let want_part0: Vec<_> = (0..M)
        .map(|i| oracle_row::<f64>(&full, 0..half, queries.point(i), K))
        .collect();
    let mut degraded_seen = false;
    for _ in 0..20 {
        match client
            .query::<f64>(&coords, M, K, 2000)
            .expect("query with a dead replica set")
            .outcome
        {
            Outcome::DegradedPartial {
                table,
                contributed,
                total,
            } => {
                assert_eq!((contributed, total), (1, 2), "partition counts");
                assert_rows_match_oracle(
                    &table,
                    &want_part0,
                    "degraded merge vs partition-0 oracle",
                );
                degraded_seen = true;
                break;
            }
            Outcome::Neighbors(_) | Outcome::Failed(_) => {
                std::thread::sleep(Duration::from_millis(50))
            }
            other => panic!("unexpected outcome with the replica set down: {other:?}"),
        }
    }
    assert!(
        degraded_seen,
        "dead replica set never produced DegradedPartial"
    );

    Client::connect(&raddr).unwrap().shutdown().unwrap();
    hr.join().expect("router drain");
    shutdown(&p0r0);
    shutdown(&p0r1);
    h00.join().expect("p0r0 drain");
    h01.join().expect("p0r1 drain");
}

#[test]
fn partitioned_backend_answers_with_global_ids() {
    // a lone partitioned backend queried directly: Outcome::Partial with
    // ids offset into the global numbering
    let full = uniform(200, D, 5);
    let lo = 120;
    let (b, h) = spawn_server(
        "127.0.0.1:0",
        slice_rows(&full, lo, 200),
        Some(PartitionCfg::solo(1, 2, lo as u32, EPOCH)),
    );
    let mut client = Client::connect(&b).expect("connect backend");
    let queries = uniform(1, D, 17);
    let q = queries.point(0);
    match client.query::<f64>(q, 1, 5, 2000).expect("query").outcome {
        Outcome::Partial { header, table } => {
            assert_eq!(header.partition_id, 1);
            assert_eq!(header.epoch, EPOCH);
            assert_eq!((header.contributed, header.total), (1, 2));
            let want = oracle_row::<f64>(&full, lo..200, q, 5);
            assert_rows_match_oracle(&table, &[want], "lone partition vs oracle");
        }
        other => panic!("partitioned backend answered {other:?}"),
    }
    shutdown(&b);
    h.join().expect("drain");
}
