//! # gsknn-router — scatter-gather over partitioned gsknn-serve backends
//!
//! A single `gsknn-serve` node holds the whole reference set. Past the
//! memory (or latency) budget of one machine, the reference set is
//! partitioned by row range across N backends, each running with
//! [`gsknn_serve::PartitionCfg`] so its replies are `GSPK` partial
//! envelopes with *globally numbered* neighbor ids. This crate is the
//! tier in front of them:
//!
//! * **Exactness.** The global top-k of a union is contained in the
//!   union of per-partition top-ks, and every implementation in this
//!   workspace orders candidates by `(distance, index)`. So the router's
//!   truncated merge ([`knn_select::merge_partial_tables`]) of all N
//!   partials is **bit-identical** to what one node holding the full
//!   reference set would answer — asserted against the brute-force
//!   oracle in this crate's e2e tests and the chaos suite.
//! * **Fan-out.** The router speaks the same wire protocol as a single
//!   node — clients need no changes. Each handler thread owns one
//!   persistent [`gsknn_serve::Client`] per backend; a query is written
//!   to every healthy backend *before* the first reply is awaited, so
//!   the wall-clock cost is the slowest partition, not the sum.
//! * **Replication.** Each partition may be served by R replicas
//!   ([`RouterConfig::replicas`], backends listed partition-major). The
//!   router sends each query to the partition's *preferred* replica —
//!   the live one with the lowest EWMA reply latency (untried replicas
//!   sort first, which spreads initial load) — and a query succeeds
//!   **undegraded** as long as one replica per partition answers within
//!   budget. A failed fan-out write fails over to a sibling replica
//!   (`gsknn_router_replica_failovers_total`); a primary that stays
//!   quiet past a model-derived hedge delay (~3 EWMA reply latencies)
//!   is raced against a sibling (`gsknn_router_replica_hedges_won_total`
//!   / `_lost_total`), and if both end up answering, the merge
//!   deduplicates the duplicate global ids, keeping answers bit-exact.
//! * **Degradation.** A backend that misses its per-backend deadline (or
//!   drops the connection) gets one hedged re-send on a fresh
//!   connection (unreplicated) or a sibling-replica race (replicated);
//!   failing all of that, it is marked down
//!   (`gsknn_router_backend_up 0`, `gsknn_router_replica_up 0`) and the
//!   surviving partials are merged and shipped as `Status::OkDegraded`
//!   with a partial envelope carrying `contributed`/`total` — a typed
//!   answer, not an error, and with replication only reachable when an
//!   *entire* replica set is down. A background prober pings downed
//!   backends and folds them back into the fan-out when they recover.
//! * **Safety against splits.** Every partial carries the partition-map
//!   epoch it was computed under and is validated *per replica*; the
//!   router drops partials from any other epoch
//!   (`gsknn_router_epoch_rejects_total`) or the wrong partition slice,
//!   so a stale or miswired replica can never leak rows from an old
//!   partitioning into a merged answer.
//! * **Observability.** The same stack as the serve tier: per-backend
//!   latency histograms and `gsknn_router_*` counter families (wire
//!   `Metrics` op or `--metrics-addr` HTTP), fan-out / per-backend-wait
//!   / merge spans in the slowest-traces ring (wire `Traces` op), and a
//!   slow-query log line.

mod metrics;
mod router;

pub use metrics::{BackendStat, RouterMetrics, RouterReport};
pub use router::{Router, RouterConfig};
