//! # gsknn-router — scatter-gather over partitioned gsknn-serve backends
//!
//! A single `gsknn-serve` node holds the whole reference set. Past the
//! memory (or latency) budget of one machine, the reference set is
//! partitioned by row range across N backends, each running with
//! [`gsknn_serve::PartitionCfg`] so its replies are `GSPK` partial
//! envelopes with *globally numbered* neighbor ids. This crate is the
//! tier in front of them:
//!
//! * **Exactness.** The global top-k of a union is contained in the
//!   union of per-partition top-ks, and every implementation in this
//!   workspace orders candidates by `(distance, index)`. So the router's
//!   truncated merge ([`knn_select::merge_partial_tables`]) of all N
//!   partials is **bit-identical** to what one node holding the full
//!   reference set would answer — asserted against the brute-force
//!   oracle in this crate's e2e tests and the chaos suite.
//! * **Fan-out.** The router speaks the same wire protocol as a single
//!   node — clients need no changes. Each handler thread owns one
//!   persistent [`gsknn_serve::Client`] per backend; a query is written
//!   to every healthy backend *before* the first reply is awaited, so
//!   the wall-clock cost is the slowest partition, not the sum.
//! * **Degradation.** A backend that misses its per-backend deadline (or
//!   drops the connection) gets one hedged re-send on a fresh
//!   connection; failing that, it is marked down
//!   (`gsknn_router_backend_up 0`) and the surviving partials are merged
//!   and shipped as `Status::OkDegraded` with a partial envelope
//!   carrying `contributed`/`total` — a typed answer, not an error. A
//!   background prober pings downed backends and folds them back into
//!   the fan-out when they recover.
//! * **Safety against splits.** Every partial carries the partition-map
//!   epoch it was computed under; the router drops partials from any
//!   other epoch (`gsknn_router_epoch_rejects_total`), so a stale
//!   backend can never leak rows from an old partitioning into a merged
//!   answer.
//! * **Observability.** The same stack as the serve tier: per-backend
//!   latency histograms and `gsknn_router_*` counter families (wire
//!   `Metrics` op or `--metrics-addr` HTTP), fan-out / per-backend-wait
//!   / merge spans in the slowest-traces ring (wire `Traces` op), and a
//!   slow-query log line.

mod metrics;
mod router;

pub use metrics::{BackendStat, RouterMetrics, RouterReport};
pub use router::{Router, RouterConfig};
