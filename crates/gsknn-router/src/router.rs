//! The router proper: accept loop, per-connection handler with a
//! persistent backend pool, the scatter-gather query path, the health
//! prober and the metrics listener.

use crate::metrics::{RouterMetrics, RouterReport};
use gsknn_obs::{align_spans, chrome_trace_json, StageBreakdown, Trace, TraceRing, TraceSpan};
use gsknn_scalar::GsknnScalar;
use gsknn_serve::wire::{
    decode_partial, encode_response, read_frame_poll, write_frame, PartialHeader, Precision,
    QueryBody, Request, Response, Status,
};
use gsknn_serve::{wire, Client};
use knn_select::{encoded_len_of, merge_partial_tables, NeighborTable};
use serde_json::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide SIGTERM flag (the handler may not touch anything else).
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Register a minimal SIGTERM handler that flips [`SIGTERM`], so `kill`
/// drains the router exactly like the wire `Shutdown` op. No-op off unix.
fn install_sigterm() {
    #[cfg(unix)]
    {
        extern "C" fn on_term(_signum: i32) {
            SIGTERM.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM_NUM: i32 = 15;
        unsafe {
            signal(SIGTERM_NUM, on_term as *const () as usize);
        }
    }
}

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Backend addresses, **partition-major**:
    /// `backends[p * replicas + r]` must be the server running
    /// `--partition p/N --replica r/R`. With `replicas == 1` this is
    /// the plain one-backend-per-partition list of the
    /// pre-replication router.
    pub backends: Vec<String>,
    /// Replicas per partition. Each partition's replica set is a slice
    /// of `replicas` consecutive backends; a query needs one live
    /// replica per partition to answer undegraded.
    pub replicas: usize,
    /// Partition-map epoch: partials stamped with any other epoch are
    /// rejected. Must match the backends' `--partition-epoch`.
    pub epoch: u64,
    /// Per-backend wait for a partial (also the hedged re-send's
    /// budget). The effective bound is the smaller of this and the
    /// query's own deadline.
    pub backend_timeout: Duration,
    /// After a failed write, retry once on a fresh connection before
    /// failing over; and while a primary replica stays quiet past the
    /// model-derived hedge delay, race a sibling replica against it
    /// (`replicas > 1`). Off, the first failure degrades and no hedges
    /// fire.
    pub hedge: bool,
    /// Bound on dialing a backend.
    pub connect_timeout: Duration,
    /// How often the prober pings downed backends.
    pub probe_interval: Duration,
    /// Serve the Prometheus exposition over plain HTTP on this address.
    pub metrics_addr: Option<String>,
    /// Log a stderr line for every routed query slower than this many
    /// milliseconds end-to-end.
    pub slow_query_ms: Option<u64>,
    /// Capacity of the slowest-traces ring (wire `Traces` op).
    pub trace_ring: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            replicas: 1,
            epoch: 1,
            backend_timeout: Duration::from_secs(2),
            hedge: true,
            connect_timeout: Duration::from_secs(2),
            probe_interval: Duration::from_millis(250),
            metrics_addr: None,
            slow_query_ms: None,
            trace_ring: 32,
        }
    }
}

/// State shared by the acceptor, the handlers, the prober and the
/// metrics listener.
pub(crate) struct Shared {
    cfg: RouterConfig,
    pub(crate) metrics: RouterMetrics,
    shutdown: AtomicBool,
    /// Per-backend health: `true` = in the fan-out. Optimistic at start;
    /// a failed exchange flips it off, a successful probe flips it back.
    health: Vec<AtomicBool>,
    traces: TraceRing,
    /// Router start; trace timestamps are microseconds since this.
    t0: Instant,
    /// Ids for queries that arrived with `trace_id = 0`.
    next_trace: AtomicU64,
}

impl Shared {
    fn new(cfg: RouterConfig) -> Shared {
        let n = cfg.backends.len();
        let trace_ring = cfg.trace_ring;
        Shared {
            metrics: RouterMetrics::new(n, cfg.replicas.max(1)),
            shutdown: AtomicBool::new(false),
            health: (0..n).map(|_| AtomicBool::new(true)).collect(),
            traces: TraceRing::new(trace_ring),
            t0: Instant::now(),
            next_trace: AtomicU64::new(1),
            cfg,
        }
    }

    fn up(&self, i: usize) -> bool {
        self.health[i].load(Ordering::SeqCst)
    }

    fn mark(&self, i: usize, up: bool) {
        self.health[i].store(up, Ordering::SeqCst);
    }

    fn health_snapshot(&self) -> Vec<bool> {
        self.health
            .iter()
            .map(|h| h.load(Ordering::SeqCst))
            .collect()
    }

    /// Replicas per partition (≥ 1).
    fn replicas(&self) -> usize {
        self.cfg.replicas.max(1)
    }

    /// Partitions in the fan-out.
    fn partitions(&self) -> usize {
        self.cfg.backends.len() / self.replicas()
    }

    /// The live replicas of partition `p`, in preference order:
    /// ascending EWMA reply latency, so the router sends to the replica
    /// that has been answering fastest (replicas with no history yet
    /// sort first and get tried, which spreads initial load).
    fn replica_order(&self, p: usize) -> Vec<usize> {
        let r = self.replicas();
        let mut order: Vec<usize> = (p * r..(p + 1) * r).filter(|&i| self.up(i)).collect();
        order.sort_by_key(|&i| self.metrics.ewma_ns(i));
        order
    }

    fn stats_json(&self) -> String {
        let r = self.metrics.report(&self.health_snapshot());
        Value::Object(vec![
            ("role".into(), Value::String("router".into())),
            ("backends".into(), Value::from(r.backends as u64)),
            ("partitions".into(), Value::from(self.partitions() as u64)),
            ("replicas".into(), Value::from(self.replicas() as u64)),
            ("healthy".into(), Value::from(r.healthy as u64)),
            ("epoch".into(), Value::from(self.cfg.epoch)),
            ("queries".into(), Value::from(r.queries)),
            ("degraded".into(), Value::from(r.degraded)),
            ("hedges".into(), Value::from(r.hedges)),
            ("epoch_rejects".into(), Value::from(r.epoch_rejects)),
            ("rejoins".into(), Value::from(r.rejoins)),
            ("replica_failovers".into(), Value::from(r.replica_failovers)),
            ("stages".into(), r.stages.to_json()),
            (
                "replica_hedges_won".into(),
                Value::from(r.replica_hedges_won),
            ),
            (
                "replica_hedges_lost".into(),
                Value::from(r.replica_hedges_lost),
            ),
            (
                "backend_up".into(),
                Value::Array(
                    self.health_snapshot()
                        .into_iter()
                        .map(|u| Value::from(u as u64))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }
}

/// One slot of a handler's persistent backend pool. The connection is
/// dialed lazily and survives across queries; a failed exchange drops it
/// so the next use (or the hedge) redials.
struct BackendConn {
    addr: String,
    client: Option<Client>,
}

impl BackendConn {
    fn ensure(&mut self, connect_timeout: Duration, io: Duration) -> io::Result<&mut Client> {
        if self.client.is_none() {
            let mut c = Client::connect_with_timeout(self.addr.as_str(), connect_timeout)?;
            c.set_io_timeout(Some(io))?;
            self.client = Some(c);
        }
        Ok(self.client.as_mut().unwrap())
    }
}

/// A bound, not-yet-running router. `bind` then `run`; the split lets
/// in-process callers learn the ephemeral port before blocking.
pub struct Router {
    listener: TcpListener,
    cfg: RouterConfig,
}

impl Router {
    /// Bind the client-facing listener. Backends are dialed lazily per
    /// handler — a down backend at start is a degraded fan-out, not a
    /// bind failure.
    pub fn bind(cfg: RouterConfig) -> io::Result<Router> {
        if cfg.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        if cfg.replicas == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one replica per partition",
            ));
        }
        if !cfg.backends.len().is_multiple_of(cfg.replicas) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} backends do not divide into replica sets of {}",
                    cfg.backends.len(),
                    cfg.replicas
                ),
            ));
        }
        if cfg.backends.len() / cfg.replicas > u16::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "more partitions than partition ids",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Router { listener, cfg })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Route until `Shutdown` / SIGTERM, then drain and return the final
    /// tallies.
    pub fn run(self) -> RouterReport {
        install_sigterm();
        let shared = Shared::new(self.cfg);
        let shared = &shared;
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking accept");
        std::thread::scope(|s| {
            s.spawn(move || prober(shared));
            if let Some(addr) = shared.cfg.metrics_addr.clone() {
                s.spawn(move || metrics_listener(&addr, shared));
            }
            loop {
                if SIGTERM.load(Ordering::SeqCst) {
                    shared.shutdown.store(true, Ordering::SeqCst);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        s.spawn(move || handle_conn(stream, shared));
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            // scope join: handlers notice the shutdown flag on their next
            // read-timeout tick and exit
        });
        shared.metrics.report(&shared.health_snapshot())
    }
}

/// One client connection: read frames, answer frames. Owns a persistent
/// pool of backend connections for the scatter-gather path.
fn handle_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    // the read timeout is the shutdown poll tick, not a client deadline
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut pool: Vec<BackendConn> = shared
        .cfg
        .backends
        .iter()
        .map(|a| BackendConn {
            addr: a.clone(),
            client: None,
        })
        .collect();
    let stop = || shared.shutdown.load(Ordering::SeqCst);
    loop {
        let payload = match read_frame_poll(&mut stream, &stop) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let resp = match wire::decode_request(&payload) {
            Err(e) => Response::error(format!("bad request: {e}")),
            Ok(Request::Query(q)) => {
                if stop() {
                    Response::empty(Status::ShuttingDown).with_trace(q.trace_id)
                } else {
                    route_query(&mut pool, q, shared)
                }
            }
            Ok(Request::Ping) => Response::empty(Status::Ok),
            Ok(Request::Stats) => Response::ok_body(shared.stats_json().into_bytes()),
            Ok(Request::Metrics) => Response::ok_body(
                shared
                    .metrics
                    .render_prometheus(&shared.health_snapshot())
                    .into_bytes(),
            ),
            Ok(Request::Traces) => Response::ok_body(
                chrome_trace_json(&shared.traces.snapshot())
                    .to_string()
                    .into_bytes(),
            ),
            Ok(Request::TraceFetch(id)) => {
                // one stitched cross-tier trace by id, as Chrome
                // trace-event JSON (empty event list when the id has
                // aged out of the slowest-traces ring)
                let hits: Vec<Trace> = shared
                    .traces
                    .snapshot()
                    .into_iter()
                    .filter(|t| t.trace_id == id)
                    .collect();
                Response::ok_body(chrome_trace_json(&hits).to_string().into_bytes())
            }
            Ok(Request::TimeSeries) => {
                // the router has no per-second load sampler (yet); answer
                // the same shape a no-obs server does so `top` degrades
                Response::ok_body(b"{\"enabled\": false, \"samples\": []}".to_vec())
            }
            Ok(Request::Shutdown) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = write_frame(&mut stream, &encode_response(&Response::empty(Status::Ok)));
                return;
            }
        };
        if write_frame(&mut stream, &encode_response(&resp)).is_err() {
            return;
        }
    }
}

/// Monomorphization split: the merge is typed by the request precision.
fn route_query(pool: &mut [BackendConn], q: QueryBody, shared: &Shared) -> Response {
    match q.precision {
        Precision::F64 => route_query_t::<f64>(pool, q, shared),
        Precision::F32 => route_query_t::<f32>(pool, q, shared),
    }
}

/// Why a backend's reply did not contribute to the merge.
#[derive(Debug)]
enum Reject {
    /// Transport/protocol failure — marks the backend down.
    Error(String),
    /// Stale partition map — marks the backend down.
    EpochMismatch(u64),
    /// Typed transient refusal (`Busy`): the backend is healthy, the
    /// query just didn't get in.
    Busy,
    /// The backend's own deadline ran out (`Timeout`): healthy, late.
    TimedOut,
    /// The backend deterministically rejected the request
    /// (`BadRequest`, e.g. a dimension mismatch): the backend is
    /// healthy — the *request* is wrong, and the rejection is forwarded
    /// to the client instead of counting against backend health.
    Bad(String),
}

/// Check one backend response: must be a `PartialTopK` envelope from the
/// expected epoch, partition universe and *partition slice*, carrying a
/// table of `m` rows. The slice check means a replica wired into the
/// wrong set (serving partition 1 where the router expects partition 0)
/// can never contribute the wrong rows to a merge.
fn validate_partial<T: GsknnScalar>(
    resp: &Response,
    epoch: u64,
    n_parts: u16,
    m: usize,
    expect_part: u32,
) -> Result<(PartialHeader, NeighborTable<T>, Vec<wire::AnnexSpan>), Reject> {
    match resp.status {
        Status::PartialTopK => {}
        Status::Busy => return Err(Reject::Busy),
        Status::Timeout => return Err(Reject::TimedOut),
        Status::BadRequest => {
            return Err(Reject::Bad(
                String::from_utf8_lossy(&resp.body).into_owned(),
            ))
        }
        other => {
            return Err(Reject::Error(format!(
                "backend answered {other:?} (not in partition mode?)"
            )))
        }
    }
    let (header, table_bytes) =
        decode_partial(&resp.body).map_err(|e| Reject::Error(format!("bad partial: {e}")))?;
    if header.epoch != epoch {
        return Err(Reject::EpochMismatch(header.epoch));
    }
    if header.total != n_parts {
        return Err(Reject::Error(format!(
            "backend partitioned {} ways, router fans out {}",
            header.total, n_parts
        )));
    }
    if header.partition_id != expect_part {
        return Err(Reject::Error(format!(
            "partial from partition {}, expected partition {expect_part}",
            header.partition_id
        )));
    }
    let table = NeighborTable::<T>::from_bytes(table_bytes)
        .map_err(|e| Reject::Error(format!("bad partial table: {e}")))?;
    if table.len() != m {
        return Err(Reject::Error(format!(
            "partial has {} rows, query has {m}",
            table.len()
        )));
    }
    // The optional span annex rides after the table bytes. It is pure
    // observability: a missing or malformed annex never rejects an
    // otherwise valid partial.
    let annex = if header.has_span_annex() {
        encoded_len_of(table_bytes)
            .and_then(|n| table_bytes.get(n..))
            .map(|b| wire::decode_span_annex(b).unwrap_or_default())
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    Ok((header, table, annex))
}

/// Model-derived hedge delay: wait about three EWMA reply latencies for
/// the selected replica before racing a sibling — shorter re-sends on
/// every healthy tail, longer forfeits the transparency window a replica
/// exists to provide. Before any latency history, a quarter of the
/// partition budget; always at least 1 ms and at most half the budget so
/// the sibling keeps a real share of it.
fn hedge_delay(ewma_ns: u64, budget: Duration) -> Duration {
    let model = if ewma_ns == 0 {
        budget / 4
    } else {
        Duration::from_nanos(ewma_ns.saturating_mul(3))
    };
    model.clamp(
        Duration::from_millis(1),
        (budget / 2).max(Duration::from_millis(1)),
    )
}

/// What consuming one backend's pending reply produced.
enum Pulled<T: GsknnScalar> {
    /// A validated partial for the expected partition slice, with the
    /// span fragments the backend shipped inline (empty when the
    /// backend traces nothing).
    Good(PartialHeader, NeighborTable<T>, Vec<wire::AnnexSpan>),
    /// Typed transient refusal — the backend is healthy.
    Busy,
    /// The backend's own deadline ran out — healthy, late.
    Late,
    /// Deterministic request rejection, forwarded to the client.
    Bad(String),
    /// Transport/protocol/epoch failure; the backend was marked down.
    Dead,
}

/// Read and validate the reply a backend owes for partition `p`. The
/// caller has established (via [`Client::poll_readable`] or by accepting
/// a block) that reading now is intended; health bookkeeping happens
/// here so every exit leaves the pool consistent.
fn pull_reply<T: GsknnScalar>(
    shared: &Shared,
    i: usize,
    b: &mut BackendConn,
    p: usize,
    n_parts: u16,
    m: usize,
    budget: Duration,
) -> Pulled<T> {
    let resp = match b.client.as_mut() {
        Some(c) => c
            .set_io_timeout(Some(budget.max(Duration::from_millis(1))))
            .and_then(|_| c.recv_response()),
        None => Err(io::Error::from(io::ErrorKind::NotConnected)),
    };
    match resp {
        Ok(r) => match validate_partial::<T>(&r, shared.cfg.epoch, n_parts, m, p as u32) {
            Ok((header, table, annex)) => Pulled::Good(header, table, annex),
            Err(Reject::Busy) => Pulled::Busy,
            Err(Reject::TimedOut) => Pulled::Late,
            Err(Reject::Bad(msg)) => Pulled::Bad(msg),
            Err(Reject::EpochMismatch(got)) => {
                shared.metrics.epoch_rejects.fetch_add(1, Ordering::Relaxed);
                backend_down(
                    shared,
                    i,
                    b,
                    &format!("partial from epoch {got}, router at {}", shared.cfg.epoch),
                );
                Pulled::Dead
            }
            Err(Reject::Error(msg)) => {
                backend_down(shared, i, b, &msg);
                Pulled::Dead
            }
        },
        Err(e) => {
            backend_down(shared, i, b, &e.to_string());
            Pulled::Dead
        }
    }
}

/// One partition's in-flight state after the fan-out writes.
struct Flight {
    /// Backend currently owed a reply (the selected replica), if any
    /// accepted the write.
    primary: Option<usize>,
    /// Live replicas at send time, preference order (primary first).
    order: Vec<usize>,
    /// When the fan-out write to the primary completed — the start of
    /// the RTT bracket its span fragments align into.
    sent_at: Instant,
}

/// One backend attempt that contributed a validated partial: its
/// send→recv bracket on the router's clock plus the span fragments it
/// shipped inline. Each becomes a parallel lane of the stitched trace,
/// so hedge/failover siblings render side by side.
struct LaneRec {
    backend: usize,
    part: usize,
    sent_at: Instant,
    recv_at: Instant,
    spans: Vec<wire::AnnexSpan>,
}

/// The scatter-gather path: pipelined fan-out writes to each partition's
/// preferred replica (lowest EWMA reply latency), send-time failover to
/// sibling replicas, deadline-bounded collection that hedges a quiet
/// primary against a sibling replica after a model-derived delay, exact
/// deduplicating truncated merge, and a typed degraded reply only when
/// an *entire* replica set is missing.
fn route_query_t<T: GsknnScalar>(
    pool: &mut [BackendConn],
    mut q: QueryBody,
    shared: &Shared,
) -> Response {
    let cfg = &shared.cfg;
    let parts = shared.partitions();
    let total = parts as u16;
    shared.metrics.queries.fetch_add(1, Ordering::Relaxed);
    if q.trace_id == 0 {
        q.trace_id = shared.next_trace.fetch_add(1, Ordering::Relaxed);
    }
    let trace_id = q.trace_id;
    let t_start = Instant::now();
    let deadline = Duration::from_millis(u64::from(q.deadline_ms.max(1)));
    let per_backend = cfg.backend_timeout.min(deadline);
    let req = Request::Query(q.clone());
    let mut spans: Vec<TraceSpan> = Vec::new();
    let span_of = |name: &str, from: Instant, to: Instant| {
        TraceSpan::new(
            name,
            (from - t_start).as_secs_f64() * 1e6,
            (to - from).as_secs_f64() * 1e6,
        )
    };

    // Phase 1 — fan-out: write the query to every partition's preferred
    // replica before blocking on any reply, so partitions compute their
    // partials in parallel. A failed write gets one immediate retry on a
    // fresh connection (the failure is usually a stale pooled socket),
    // then fails over to the next sibling replica in preference order.
    let mut flights: Vec<Flight> = Vec::with_capacity(parts);
    for p in 0..parts {
        let order = shared.replica_order(p);
        let mut primary = None;
        let mut sent_at = t_start;
        for (tried, &i) in order.iter().enumerate() {
            let attempt = |b: &mut BackendConn| -> io::Result<()> {
                b.ensure(cfg.connect_timeout, per_backend)?
                    .send_request(&req)
            };
            let b = &mut pool[i];
            let sent = match attempt(b) {
                Ok(()) => true,
                Err(_) if cfg.hedge => {
                    b.client = None;
                    shared.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                    match attempt(b) {
                        Ok(()) => true,
                        Err(e) => {
                            backend_down(shared, i, b, &e.to_string());
                            false
                        }
                    }
                }
                Err(e) => {
                    backend_down(shared, i, b, &e.to_string());
                    false
                }
            };
            if sent {
                if tried > 0 {
                    shared
                        .metrics
                        .replica_failovers
                        .fetch_add(1, Ordering::Relaxed);
                }
                primary = Some(i);
                sent_at = Instant::now();
                break;
            }
            if !cfg.hedge {
                // hedging off: the first failure degrades, no failover
                break;
            }
        }
        flights.push(Flight {
            primary,
            order,
            sent_at,
        });
    }
    let t_sent = Instant::now();
    spans.push(span_of("fanout write", t_start, t_sent));

    // Phase 2 — collect: read each partition's partial, bounded by the
    // per-backend budget measured from the fan-out start (partitions
    // work concurrently, so budgets overlap rather than add). While the
    // selected replica stays quiet past the model-derived hedge delay
    // and a live sibling exists, the same query is raced against the
    // sibling; the first valid partial wins and duplicate global ids
    // from a double answer are deduplicated by the merge.
    let mut tables: Vec<NeighborTable<T>> = Vec::with_capacity(parts);
    let mut lanes: Vec<LaneRec> = Vec::new();
    let mut contributed: u16 = 0;
    let mut any_lane_degraded = false;
    let (mut busy, mut late) = (0usize, 0usize);
    let mut bad: Option<String> = None;
    for (p, fl) in flights.iter().enumerate() {
        let Some(prim) = fl.primary else { continue };
        let t_wait = Instant::now();
        let budget = per_backend
            .saturating_sub(t_wait - t_start)
            .max(Duration::from_millis(5));
        let p_deadline = t_wait + budget;
        // the sibling a hedge would race (live, not the primary)
        let sibling = if cfg.hedge {
            fl.order
                .iter()
                .copied()
                .find(|&i| i != prim && shared.up(i))
        } else {
            None
        };
        let mut partition_ok = false;
        let mut hedge_attempt: Option<(usize, Instant)> = None;
        let mut fold =
            |shared: &Shared, i: usize, sent_at: Instant, pulled: Pulled<T>, ok: &mut bool| {
                match pulled {
                    Pulled::Good(header, table, annex) => {
                        tables.push(table);
                        lanes.push(LaneRec {
                            backend: i,
                            part: p,
                            sent_at,
                            recv_at: Instant::now(),
                            spans: annex,
                        });
                        any_lane_degraded |= header.lane_degraded();
                        shared.metrics.record_reply(i, Instant::now() - t_sent);
                        if !shared.up(i) {
                            shared.mark(i, true);
                        }
                        *ok = true;
                    }
                    Pulled::Busy => busy += 1,
                    Pulled::Late => late += 1,
                    Pulled::Bad(msg) => {
                        bad.get_or_insert(msg);
                    }
                    Pulled::Dead => {}
                }
            };
        match sibling {
            None => {
                // unreplicated partition (or no live sibling): block on
                // the primary; a dead exchange hedges once with a full
                // round trip on a fresh connection, same backend — the
                // pre-replication contract.
                let b = &mut pool[prim];
                let resp = match b.client.as_mut() {
                    Some(c) => c
                        .set_io_timeout(Some(budget))
                        .and_then(|_| c.recv_response()),
                    None => Err(io::Error::from(io::ErrorKind::NotConnected)),
                };
                let mut attempt_sent = fl.sent_at;
                let resp = match resp {
                    Ok(r) => Ok(r),
                    Err(_) if cfg.hedge => {
                        b.client = None;
                        shared.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                        attempt_sent = Instant::now();
                        b.ensure(cfg.connect_timeout, budget)
                            .and_then(|c| c.request(&req))
                    }
                    Err(e) => Err(e),
                };
                let pulled = match resp {
                    Ok(r) => match validate_partial::<T>(&r, cfg.epoch, total, q.m, p as u32) {
                        Ok((h, t, annex)) => Pulled::Good(h, t, annex),
                        Err(Reject::Busy) => Pulled::Busy,
                        Err(Reject::TimedOut) => Pulled::Late,
                        Err(Reject::Bad(msg)) => Pulled::Bad(msg),
                        Err(Reject::EpochMismatch(got)) => {
                            shared.metrics.epoch_rejects.fetch_add(1, Ordering::Relaxed);
                            backend_down(
                                shared,
                                prim,
                                b,
                                &format!("partial from epoch {got}, router at {}", cfg.epoch),
                            );
                            Pulled::Dead
                        }
                        Err(Reject::Error(msg)) => {
                            backend_down(shared, prim, b, &msg);
                            Pulled::Dead
                        }
                    },
                    Err(e) => {
                        backend_down(shared, prim, b, &e.to_string());
                        Pulled::Dead
                    }
                };
                fold(shared, prim, attempt_sent, pulled, &mut partition_ok);
            }
            Some(sib) => {
                // replicated partition: give the primary its hedge
                // window, then race the sibling against it.
                let window = hedge_delay(shared.metrics.ewma_ns(prim), budget);
                let primary_ready = match pool[prim].client.as_mut() {
                    Some(c) => c.poll_readable(window).unwrap_or(false),
                    None => false,
                };
                if primary_ready {
                    let left = p_deadline.saturating_duration_since(Instant::now());
                    let pulled =
                        pull_reply::<T>(shared, prim, &mut pool[prim], p, total, q.m, left);
                    fold(shared, prim, fl.sent_at, pulled, &mut partition_ok);
                }
                if !partition_ok {
                    // hedge: send the query to the sibling replica (a
                    // failed write burns the hedge — the merge will
                    // degrade only if the primary also stays quiet)
                    shared.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                    let t_hedge = Instant::now();
                    let sib_sent = pool[sib]
                        .ensure(cfg.connect_timeout, budget)
                        .and_then(|c| c.send_request(&req))
                        .inspect_err(|e| {
                            backend_down(shared, sib, &mut pool[sib], &e.to_string());
                        })
                        .is_ok();
                    if sib_sent {
                        hedge_attempt = Some((sib, t_hedge));
                    }
                    let mut primary_pending = !primary_ready && pool[prim].client.is_some();
                    let mut sibling_pending = sib_sent;
                    let mut primary_good = false;
                    let mut sibling_good = false;
                    while !partition_ok
                        && (primary_pending || sibling_pending)
                        && Instant::now() < p_deadline
                    {
                        let slice = Duration::from_millis(2)
                            .min(p_deadline.saturating_duration_since(Instant::now()));
                        if primary_pending {
                            match pool[prim].client.as_mut().map(|c| c.poll_readable(slice)) {
                                Some(Ok(true)) => {
                                    primary_pending = false;
                                    let left = p_deadline.saturating_duration_since(Instant::now());
                                    let pulled = pull_reply::<T>(
                                        shared,
                                        prim,
                                        &mut pool[prim],
                                        p,
                                        total,
                                        q.m,
                                        left,
                                    );
                                    primary_good = matches!(pulled, Pulled::Good(..));
                                    fold(shared, prim, fl.sent_at, pulled, &mut partition_ok);
                                }
                                Some(Ok(false)) => {}
                                Some(Err(e)) => {
                                    primary_pending = false;
                                    backend_down(shared, prim, &mut pool[prim], &e.to_string());
                                }
                                None => primary_pending = false,
                            }
                        }
                        if partition_ok {
                            break;
                        }
                        if sibling_pending {
                            match pool[sib].client.as_mut().map(|c| c.poll_readable(slice)) {
                                Some(Ok(true)) => {
                                    sibling_pending = false;
                                    let left = p_deadline.saturating_duration_since(Instant::now());
                                    let pulled = pull_reply::<T>(
                                        shared,
                                        sib,
                                        &mut pool[sib],
                                        p,
                                        total,
                                        q.m,
                                        left,
                                    );
                                    sibling_good = matches!(pulled, Pulled::Good(..));
                                    fold(shared, sib, t_hedge, pulled, &mut partition_ok);
                                }
                                Some(Ok(false)) => {}
                                Some(Err(e)) => {
                                    sibling_pending = false;
                                    backend_down(shared, sib, &mut pool[sib], &e.to_string());
                                }
                                None => sibling_pending = false,
                            }
                        }
                    }
                    // an unread in-flight reply would poison the next
                    // query on that socket: fold it if it is already
                    // here (the merge dedups the duplicate global ids a
                    // double answer carries); a silent replica at a
                    // missed budget is marked down so the prober owns
                    // its recovery; a merely-slow loser's connection is
                    // dropped so the next query redials.
                    for (idx, pending) in [(prim, primary_pending), (sib, sibling_pending)] {
                        if !pending {
                            continue;
                        }
                        let ready = pool[idx]
                            .client
                            .as_mut()
                            .map(|c| c.poll_readable(Duration::from_millis(1)).unwrap_or(false))
                            .unwrap_or(false);
                        if ready {
                            let pulled = pull_reply::<T>(
                                shared,
                                idx,
                                &mut pool[idx],
                                p,
                                total,
                                q.m,
                                Duration::from_millis(5),
                            );
                            if matches!(pulled, Pulled::Good(..)) {
                                if idx == prim {
                                    primary_good = true;
                                } else {
                                    sibling_good = true;
                                }
                            }
                            let sent = if idx == prim { fl.sent_at } else { t_hedge };
                            fold(shared, idx, sent, pulled, &mut partition_ok);
                        } else if !partition_ok {
                            backend_down(
                                shared,
                                idx,
                                &mut pool[idx],
                                "no partial within the partition budget",
                            );
                        } else {
                            pool[idx].client = None;
                        }
                    }
                    // settle the race's books: a hedge is *lost* when
                    // the primary produced a valid partial after all,
                    // *won* when only the sibling saved the partition —
                    // which is also a failover (the selected replica
                    // failed mid-query and a sibling's answer was used).
                    if primary_good {
                        shared
                            .metrics
                            .replica_hedges_lost
                            .fetch_add(1, Ordering::Relaxed);
                    } else if sibling_good {
                        shared
                            .metrics
                            .replica_hedges_won
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .metrics
                            .replica_failovers
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let t_got = Instant::now();
        // One wait span per replica attempt, named distinctly so hedge
        // races read as parallel attempts in the stitched trace.
        let r = shared.replicas();
        spans.push(span_of(
            &format!("partition {p} replica {} wait", prim % r),
            t_wait,
            t_got,
        ));
        if let Some((sib, t_hedge)) = hedge_attempt {
            spans.push(span_of(
                &format!("partition {p} replica {} wait", sib % r),
                t_hedge,
                t_got,
            ));
        }
        if partition_ok {
            contributed += 1;
        }
    }

    // Phase 3 — merge the survivors and pick the reply shape.
    let t_merge = Instant::now();
    let resp = if contributed == 0 {
        if let Some(msg) = bad {
            // deterministic rejection — the request, not a backend, is
            // at fault, so forward the backend's own message
            Response::bad_request(msg)
        } else if busy > 0 && busy == flights.iter().filter(|f| f.primary.is_some()).count() {
            Response::empty(Status::Busy)
        } else if late > 0 {
            Response::empty(Status::Timeout)
        } else {
            Response::internal_error("no partition answered")
        }
        .with_trace(trace_id)
    } else {
        let refs: Vec<&NeighborTable<T>> = tables.iter().collect();
        match merge_partial_tables(&refs, q.k) {
            None => Response::internal_error("partition shape mismatch in merge"),
            Some(merged) => {
                let mut body = Vec::with_capacity(merged.encoded_len());
                if contributed < total {
                    shared.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                    PartialHeader {
                        partition_id: u32::MAX,
                        epoch: cfg.epoch,
                        contributed,
                        total,
                        flags: any_lane_degraded as u8,
                        // a router-merged answer is not a replica
                        replica_id: 0,
                        replicas: 1,
                    }
                    .encode_into(&mut body);
                    merged.encode_into(&mut body);
                    Response {
                        status: Status::OkDegraded,
                        trace_id,
                        body,
                    }
                } else {
                    // all partitions answered: the merged table is
                    // bit-identical to a single node's — reply exactly
                    // like one (degraded lane included)
                    merged.encode_into(&mut body);
                    let status = if any_lane_degraded {
                        Status::OkDegraded
                    } else {
                        Status::Ok
                    };
                    Response {
                        status,
                        trace_id,
                        body,
                    }
                }
            }
        }
    };
    let t_done = Instant::now();
    spans.push(span_of("merge", t_merge, t_done));

    // Per-stage attribution. The fan-out reaches every partition up
    // front, so the per-partition rtt brackets overlap in wall clock —
    // summing raw backend span durations would attribute more time than
    // the route took. Instead, sweep the winning lanes' brackets in
    // collection order and charge each lane only its not-yet-accounted
    // segment, split between kernel and queue/coalesce wait in the
    // proportion the backend itself reported. merge is measured
    // directly; network is the non-negative residual, so the four
    // stages add up to (about) the client-observed rtt.
    let mut stages = StageBreakdown::default();
    let mut seen = vec![false; parts];
    let mut cursor = t_start;
    for l in &lanes {
        if std::mem::replace(&mut seen[l.part], true) {
            continue; // a hedge double answer: only the first lane counts
        }
        let (mut wait_ns, mut kernel_ns) = (0u64, 0u64);
        for s in &l.spans {
            if s.name.starts_with("kernel: ") {
                kernel_ns += s.dur_ns;
            } else {
                wait_ns += s.dur_ns;
            }
        }
        let lo = if l.sent_at > cursor {
            l.sent_at
        } else {
            cursor
        };
        let seg_ns = l.recv_at.saturating_duration_since(lo).as_nanos() as u64;
        if l.recv_at > cursor {
            cursor = l.recv_at;
        }
        let reported_ns = wait_ns + kernel_ns;
        if reported_ns > 0 && seg_ns > 0 {
            stages.kernel_ns += (kernel_ns as u128 * seg_ns as u128 / reported_ns as u128) as u64;
            stages.backend_wait_ns +=
                (wait_ns as u128 * seg_ns as u128 / reported_ns as u128) as u64;
        }
    }
    stages.merge_ns = (t_done - t_merge).as_nanos() as u64;
    let route_ns = (t_done - t_start).as_nanos() as u64;
    stages.network_ns =
        route_ns.saturating_sub(stages.backend_wait_ns + stages.kernel_ns + stages.merge_ns);
    shared.metrics.record_stages(&stages);

    // Stitch: every contributing backend attempt becomes one parallel
    // lane of the trace. Backend spans are on the backend's clock (ns
    // since it received the request); align them into the router-side
    // send→recv bracket by centering on its midpoint, clamped so they
    // nest inside it even when the clocks disagree.
    for (lane_no, l) in lanes.iter().enumerate() {
        let frag: Vec<TraceSpan> = l
            .spans
            .iter()
            .map(|s| {
                TraceSpan::new(
                    format!("b{}: {}", l.backend, s.name),
                    s.start_ns as f64 / 1e3,
                    s.dur_ns as f64 / 1e3,
                )
            })
            .collect();
        let bracket_lo = (l.sent_at - t_start).as_secs_f64() * 1e6;
        let bracket_hi = (l.recv_at - t_start).as_secs_f64() * 1e6;
        for sp in align_spans(&frag, bracket_lo, bracket_hi) {
            spans.push(sp.on_track(lane_no as u32 + 1));
        }
    }

    let total_us = (t_done - t_start).as_secs_f64() * 1e6;
    if let Some(ms) = cfg.slow_query_ms {
        if t_done - t_start >= Duration::from_millis(ms) {
            eprintln!(
                "gsknn-router: slow query trace {trace_id:016x}: {:.1} ms, {} of {} partitions, status {:?} [{}]",
                total_us / 1e3,
                contributed,
                total,
                resp.status,
                stages.render_line()
            );
        }
    }
    shared.traces.offer(Trace {
        trace_id,
        lane: q.precision.name().to_string(),
        status: status_label(resp.status).to_string(),
        m: q.m,
        k: q.k,
        t0_us: (t_start - shared.t0).as_secs_f64() * 1e6,
        total_us,
        spans,
    });
    resp
}

/// Flip backend `i` out of the fan-out and drop its pooled connection.
fn backend_down(shared: &Shared, i: usize, b: &mut BackendConn, why: &str) {
    b.client = None;
    shared
        .metrics
        .backend(i)
        .errors
        .fetch_add(1, Ordering::Relaxed);
    if shared.up(i) {
        shared.mark(i, false);
        eprintln!("gsknn-router: backend {i} ({}) down: {why}", b.addr);
    }
}

/// Trace/metrics label for a wire status.
fn status_label(s: Status) -> &'static str {
    match s {
        Status::Ok => "ok",
        Status::Busy => "busy",
        Status::Timeout => "timeout",
        Status::ShuttingDown => "shutting_down",
        Status::Error => "error",
        Status::BadRequest => "bad_request",
        Status::InternalError => "internal_error",
        Status::OkDegraded => "ok_degraded",
        Status::PartialTopK => "partial_topk",
    }
}

/// Ping downed backends; a reply folds them back into the fan-out. The
/// epoch guard on the query path keeps a *wrongly configured* rejoiner
/// from contributing — this probe only proves liveness.
fn prober(shared: &Shared) {
    let n = shared.cfg.backends.len();
    while !shared.shutdown.load(Ordering::SeqCst) {
        for i in 0..n {
            if shared.up(i) {
                continue;
            }
            let addr = shared.cfg.backends[i].as_str();
            let alive = Client::connect_with_timeout(addr, shared.cfg.connect_timeout)
                .and_then(|mut c| {
                    c.set_io_timeout(Some(shared.cfg.backend_timeout))?;
                    c.ping()
                })
                .is_ok();
            if alive {
                shared.mark(i, true);
                shared.metrics.rejoins.fetch_add(1, Ordering::Relaxed);
                eprintln!("gsknn-router: backend {i} ({addr}) rejoined");
            }
        }
        // sleep in small ticks so drain isn't held up by a long interval
        let mut left = shared.cfg.probe_interval;
        while left > Duration::ZERO && !shared.shutdown.load(Ordering::SeqCst) {
            let tick = left.min(Duration::from_millis(25));
            std::thread::sleep(tick);
            left = left.saturating_sub(tick);
        }
    }
}

/// Minimal HTTP/1.1 responder for the Prometheus exposition — same
/// best-effort contract as the serve tier's listener.
fn metrics_listener(addr: &str, shared: &Shared) {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gsknn-router: metrics listener failed to bind {addr}: {e}");
            return;
        }
    };
    let _ = listener.set_nonblocking(true);
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut head = Vec::new();
                let mut buf = [0u8; 1024];
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            head.extend_from_slice(&buf[..n]);
                            if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                let body = shared.metrics.render_prometheus(&shared.health_snapshot());
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
                     charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(resp.as_bytes());
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_select::Neighbor;

    fn partial_resp(
        partition_id: u32,
        epoch: u64,
        total: u16,
        flags: u8,
        table: &NeighborTable<f64>,
    ) -> Response {
        let mut body = Vec::new();
        PartialHeader {
            partition_id,
            epoch,
            contributed: 1,
            total,
            flags,
            replica_id: 0,
            replicas: 2,
        }
        .encode_into(&mut body);
        table.encode_into(&mut body);
        Response {
            status: Status::PartialTopK,
            trace_id: 7,
            body,
        }
    }

    fn table_of(rows: &[&[(f64, u32)]], k: usize) -> NeighborTable<f64> {
        let mut t = NeighborTable::new(rows.len(), k);
        for (i, row) in rows.iter().enumerate() {
            let nbs: Vec<Neighbor<f64>> = row.iter().map(|&(d, j)| Neighbor::new(d, j)).collect();
            t.set_row(i, &nbs);
        }
        t
    }

    #[test]
    fn validate_accepts_matching_partial() {
        let t = table_of(&[&[(0.5, 3), (1.0, 9)]], 2);
        let resp = partial_resp(0, 1, 2, 0, &t);
        let (h, got, annex) = validate_partial::<f64>(&resp, 1, 2, 1, 0).expect("valid");
        assert_eq!(h.partition_id, 0);
        assert!(!h.lane_degraded());
        assert_eq!(got.row(0), t.row(0));
        assert!(annex.is_empty(), "no annex flag, no spans");
    }

    #[test]
    fn validate_extracts_the_span_annex_when_flagged() {
        use gsknn_serve::wire::{encode_span_annex, AnnexSpan, PARTIAL_FLAG_SPAN_ANNEX};
        let t = table_of(&[&[(0.5, 3), (1.0, 9)]], 2);
        let mut body = Vec::new();
        PartialHeader {
            partition_id: 0,
            epoch: 1,
            contributed: 1,
            total: 2,
            flags: PARTIAL_FLAG_SPAN_ANNEX,
            replica_id: 0,
            replicas: 2,
        }
        .encode_into(&mut body);
        t.encode_into(&mut body);
        encode_span_annex(
            &[
                AnnexSpan {
                    name: "coalesce wait".into(),
                    start_ns: 1_000,
                    dur_ns: 90_000,
                },
                AnnexSpan {
                    name: "kernel: distances".into(),
                    start_ns: 91_000,
                    dur_ns: 400_000,
                },
            ],
            &mut body,
        );
        let resp = Response {
            status: Status::PartialTopK,
            trace_id: 7,
            body,
        };
        let (h, got, annex) = validate_partial::<f64>(&resp, 1, 2, 1, 0).expect("valid");
        assert!(h.has_span_annex());
        assert_eq!(got.row(0), t.row(0));
        assert_eq!(annex.len(), 2);
        assert_eq!(annex[0].name, "coalesce wait");
        assert_eq!(annex[1].name, "kernel: distances");
        assert_eq!(annex[1].dur_ns, 400_000);

        // a truncated annex degrades to "no spans", never to a reject
        let mut short = Response {
            status: Status::PartialTopK,
            trace_id: 7,
            body: resp.body.clone(),
        };
        short.body.truncate(resp.body.len() - 3);
        let (_, _, annex) = validate_partial::<f64>(&short, 1, 2, 1, 0).expect("still valid");
        assert!(annex.is_empty());
    }

    #[test]
    fn validate_rejects_wrong_epoch_total_shape_slice_and_status() {
        let t = table_of(&[&[(0.5, 3)]], 1);
        assert!(matches!(
            validate_partial::<f64>(&partial_resp(0, 9, 2, 0, &t), 1, 2, 1, 0),
            Err(Reject::EpochMismatch(9))
        ));
        assert!(matches!(
            validate_partial::<f64>(&partial_resp(0, 1, 3, 0, &t), 1, 2, 1, 0),
            Err(Reject::Error(_))
        ));
        assert!(matches!(
            validate_partial::<f64>(&partial_resp(0, 1, 2, 0, &t), 1, 2, 5, 0),
            Err(Reject::Error(_))
        ));
        // a replica wired into the wrong set answers for the wrong
        // partition slice — it must never contribute to the merge
        assert!(matches!(
            validate_partial::<f64>(&partial_resp(1, 1, 2, 0, &t), 1, 2, 1, 0),
            Err(Reject::Error(_))
        ));
        assert!(matches!(
            validate_partial::<f64>(&Response::empty(Status::Busy), 1, 2, 1, 0),
            Err(Reject::Busy)
        ));
        assert!(matches!(
            validate_partial::<f64>(&Response::empty(Status::Timeout), 1, 2, 1, 0),
            Err(Reject::TimedOut)
        ));
        assert!(matches!(
            validate_partial::<f64>(&Response::empty(Status::Ok), 1, 2, 1, 0),
            Err(Reject::Error(_))
        ));
        // a deterministic rejection carries the backend's message and
        // must NOT be classed as a backend failure
        match validate_partial::<f64>(&Response::bad_request("dimension mismatch"), 1, 2, 1, 0) {
            Err(Reject::Bad(msg)) => assert!(msg.contains("dimension mismatch")),
            other => panic!("expected Reject::Bad, got {other:?}"),
        }
    }

    #[test]
    fn validate_surfaces_degraded_lane_flag() {
        let t = table_of(&[&[(0.5, 3)]], 1);
        let resp = partial_resp(1, 1, 2, 1, &t);
        let (h, _, _) = validate_partial::<f64>(&resp, 1, 2, 1, 1).expect("valid");
        assert!(h.lane_degraded());
    }

    #[test]
    fn bind_rejects_empty_backend_list() {
        let err = match Router::bind(RouterConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("bind accepted an empty backend list"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn bind_rejects_bad_replica_shapes() {
        let cfg = |backends: usize, replicas: usize| RouterConfig {
            backends: (0..backends)
                .map(|i| format!("127.0.0.1:{}", 6000 + i))
                .collect(),
            replicas,
            ..RouterConfig::default()
        };
        // zero replicas per partition is meaningless
        assert_eq!(
            Router::bind(cfg(2, 0)).map(|_| ()).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        // 3 backends cannot form replica sets of 2
        assert_eq!(
            Router::bind(cfg(3, 2)).map(|_| ()).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn hedge_delay_follows_the_ewma_model() {
        let budget = Duration::from_millis(100);
        // no history: a quarter of the budget
        assert_eq!(hedge_delay(0, budget), Duration::from_millis(25));
        // 3x the EWMA when that fits under half the budget
        assert_eq!(
            hedge_delay(Duration::from_millis(4).as_nanos() as u64, budget),
            Duration::from_millis(12)
        );
        // capped at half the budget so the sibling keeps a real share
        assert_eq!(
            hedge_delay(Duration::from_millis(40).as_nanos() as u64, budget),
            Duration::from_millis(50)
        );
        // floored at 1 ms even for a microsecond-fast replica
        assert_eq!(hedge_delay(10_000, budget), Duration::from_millis(1));
    }
}
