//! Router-tier counters and per-backend latency histograms, rendered as
//! a Prometheus-style text exposition (`gsknn_router_*` families) and as
//! the final [`RouterReport`] the `route` command prints on drain.

use gsknn_obs::{LatencyHistogram, StageBreakdown};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-backend tallies: replies folded into merges, exchange failures,
/// and the fan-out→reply latency distribution.
pub struct BackendStat {
    /// Partials from this backend folded into merged answers.
    pub replies: AtomicU64,
    /// Failed exchanges (connect/send/receive error, bad status, epoch
    /// or shape mismatch) — each one marks the backend down until the
    /// prober sees it answer a ping again.
    pub errors: AtomicU64,
    /// Send → validated-partial latency.
    pub latency: LatencyHistogram,
    /// EWMA (α = 1/4) of the reply latency in nanoseconds, 0 until the
    /// first sample. The router's replica selection prefers the lowest
    /// live EWMA and its hedge-delay model is derived from it.
    pub ewma_ns: AtomicU64,
}

/// Shared router counters. All lock-free; handler threads bump them
/// directly.
pub struct RouterMetrics {
    /// Query/batch requests routed (any outcome).
    pub queries: AtomicU64,
    /// Merged answers that shipped with partitions missing
    /// (`Status::OkDegraded` + partial envelope).
    pub degraded: AtomicU64,
    /// Hedged re-sends: a backend exchange failed and the router retried
    /// it once on a fresh connection inside the deadline.
    pub hedges: AtomicU64,
    /// Partials rejected for carrying a different partition-map epoch
    /// than the router's.
    pub epoch_rejects: AtomicU64,
    /// Downed backends that passed a liveness probe and rejoined the
    /// fan-out.
    pub rejoins: AtomicU64,
    /// Send-time failovers: the preferred replica of a partition
    /// refused the fan-out write and a sibling replica took the query
    /// instead.
    pub replica_failovers: AtomicU64,
    /// Hedges that turned out necessary: the sibling's reply was folded
    /// into the merge while the primary never produced a valid one.
    pub replica_hedges_won: AtomicU64,
    /// Hedges that turned out wasted: the primary answered after the
    /// hedge to a sibling had already fired.
    pub replica_hedges_lost: AtomicU64,
    /// Cumulative per-stage time attribution across routed queries, in
    /// nanoseconds ([`StageBreakdown::STAGES`] order: network,
    /// backend_wait, kernel, merge). Fed by the stitched-trace
    /// attribution on every routed query; exposed as the
    /// `gsknn_router_stage_ns_total{stage}` family.
    stage_ns: [AtomicU64; 4],
    /// Replicas per partition (1 = unreplicated); backends are
    /// partition-major, so backend `i` is replica `i % replicas` of
    /// partition `i / replicas`.
    replicas: usize,
    backends: Vec<BackendStat>,
}

impl RouterMetrics {
    /// Zeroed metrics for `n` backends serving `n / replicas`
    /// partitions.
    pub fn new(n: usize, replicas: usize) -> Self {
        RouterMetrics {
            queries: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            epoch_rejects: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            replica_failovers: AtomicU64::new(0),
            replica_hedges_won: AtomicU64::new(0),
            replica_hedges_lost: AtomicU64::new(0),
            stage_ns: Default::default(),
            replicas: replicas.max(1),
            backends: (0..n)
                .map(|_| BackendStat {
                    replies: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                    latency: LatencyHistogram::new(),
                    ewma_ns: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Stats for backend `i`.
    pub fn backend(&self, i: usize) -> &BackendStat {
        &self.backends[i]
    }

    /// Backend `i`'s EWMA reply latency in nanoseconds (0 = no samples
    /// yet).
    pub fn ewma_ns(&self, i: usize) -> u64 {
        self.backends[i].ewma_ns.load(Ordering::Relaxed)
    }

    /// Record one successful exchange with backend `i`.
    pub fn record_reply(&self, i: usize, rtt: Duration) {
        self.backends[i].replies.fetch_add(1, Ordering::Relaxed);
        self.backends[i].latency.record(rtt);
        let ns = rtt.as_nanos().min(u128::from(u64::MAX)) as u64;
        let _ =
            self.backends[i]
                .ewma_ns
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                    Some(if old == 0 { ns } else { old - old / 4 + ns / 4 })
                });
    }

    /// Fold one routed query's per-stage attribution into the lifetime
    /// counters.
    pub fn record_stages(&self, s: &StageBreakdown) {
        for (counter, ns) in self.stage_ns.iter().zip(s.totals()) {
            counter.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Snapshot of the cumulative stage attribution.
    pub fn stages(&self) -> StageBreakdown {
        let t: Vec<u64> = self
            .stage_ns
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        StageBreakdown {
            network_ns: t[0],
            backend_wait_ns: t[1],
            kernel_ns: t[2],
            merge_ns: t[3],
        }
    }

    /// The Prometheus-style text exposition. `up[i]` is the live health
    /// gauge for backend `i`.
    pub fn render_prometheus(&self, up: &[bool]) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "gsknn_router_queries_total",
            "Query requests routed (any outcome).",
            self.queries.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_degraded_total",
            "Merged answers shipped with partitions missing.",
            self.degraded.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_hedges_total",
            "Hedged re-sends after a failed backend exchange.",
            self.hedges.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_epoch_rejects_total",
            "Partials rejected for a mismatched partition-map epoch.",
            self.epoch_rejects.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_rejoins_total",
            "Downed backends that rejoined after a successful probe.",
            self.rejoins.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_replica_failovers_total",
            "Fan-out writes failed over to a sibling replica.",
            self.replica_failovers.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_replica_hedges_won_total",
            "Hedged sibling replies folded in while the primary never answered.",
            self.replica_hedges_won.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_replica_hedges_lost_total",
            "Hedges wasted because the primary replica answered after all.",
            self.replica_hedges_lost.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "# HELP gsknn_router_stage_ns_total Routed-query time attributed per cross-tier stage, nanoseconds."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_stage_ns_total counter");
        for (stage, counter) in StageBreakdown::STAGES.iter().zip(&self.stage_ns) {
            let _ = writeln!(
                out,
                "gsknn_router_stage_ns_total{{stage=\"{stage}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP gsknn_router_backend_up Backend health (1 = in the fan-out)."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_backend_up gauge");
        for (i, &u) in up.iter().enumerate() {
            let _ = writeln!(
                out,
                "gsknn_router_backend_up{{backend=\"{i}\"}} {}",
                u as u8
            );
        }
        let _ = writeln!(
            out,
            "# HELP gsknn_router_replica_up Replica health by partition (1 = in the fan-out)."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_replica_up gauge");
        for (i, &u) in up.iter().enumerate() {
            let _ = writeln!(
                out,
                "gsknn_router_replica_up{{partition=\"{}\",replica=\"{}\"}} {}",
                i / self.replicas,
                i % self.replicas,
                u as u8
            );
        }
        let _ = writeln!(
            out,
            "# HELP gsknn_router_backend_replies_total Partials folded into merged answers."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_backend_replies_total counter");
        for (i, b) in self.backends.iter().enumerate() {
            let _ = writeln!(
                out,
                "gsknn_router_backend_replies_total{{backend=\"{i}\"}} {}",
                b.replies.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP gsknn_router_backend_errors_total Failed backend exchanges."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_backend_errors_total counter");
        for (i, b) in self.backends.iter().enumerate() {
            let _ = writeln!(
                out,
                "gsknn_router_backend_errors_total{{backend=\"{i}\"}} {}",
                b.errors.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP gsknn_router_backend_latency_seconds Send-to-partial latency quantiles."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_backend_latency_seconds summary");
        for (i, b) in self.backends.iter().enumerate() {
            let snap = b.latency.snapshot();
            for (q, v) in [
                (0.5, snap.p50_ns()),
                (0.9, snap.p90_ns()),
                (0.99, snap.p99_ns()),
            ] {
                if let Some(ns) = v {
                    let _ = writeln!(
                        out,
                        "gsknn_router_backend_latency_seconds{{backend=\"{i}\",quantile=\"{q}\"}} {:.9}",
                        ns as f64 / 1e9
                    );
                }
            }
            let _ = writeln!(
                out,
                "gsknn_router_backend_latency_seconds_count{{backend=\"{i}\"}} {}",
                snap.count()
            );
        }
        out
    }

    /// The drain-time summary.
    pub fn report(&self, up: &[bool]) -> RouterReport {
        RouterReport {
            backends: self.backends.len(),
            replicas: self.replicas,
            healthy: up.iter().filter(|&&u| u).count(),
            queries: self.queries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            epoch_rejects: self.epoch_rejects.load(Ordering::Relaxed),
            rejoins: self.rejoins.load(Ordering::Relaxed),
            replica_failovers: self.replica_failovers.load(Ordering::Relaxed),
            replica_hedges_won: self.replica_hedges_won.load(Ordering::Relaxed),
            replica_hedges_lost: self.replica_hedges_lost.load(Ordering::Relaxed),
            stages: self.stages(),
            backend_replies: self
                .backends
                .iter()
                .map(|b| b.replies.load(Ordering::Relaxed))
                .collect(),
            backend_errors: self
                .backends
                .iter()
                .map(|b| b.errors.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Final tallies printed when the router drains.
#[derive(Clone, Debug)]
pub struct RouterReport {
    pub backends: usize,
    /// Replicas per partition (backends are partition-major).
    pub replicas: usize,
    pub healthy: usize,
    pub queries: u64,
    pub degraded: u64,
    pub hedges: u64,
    pub epoch_rejects: u64,
    pub rejoins: u64,
    pub replica_failovers: u64,
    pub replica_hedges_won: u64,
    pub replica_hedges_lost: u64,
    /// Cumulative per-stage time attribution across routed queries.
    pub stages: StageBreakdown,
    pub backend_replies: Vec<u64>,
    pub backend_errors: Vec<u64>,
}

impl RouterReport {
    /// Plain-text rendering for the CLI.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "router: {} queries over {} backends ({} partitions x {} replicas, {} healthy at drain)",
            self.queries,
            self.backends,
            self.backends / self.replicas.max(1),
            self.replicas,
            self.healthy
        );
        let _ = writeln!(
            out,
            "  degraded {} | hedges {} | epoch rejects {} | rejoins {}",
            self.degraded, self.hedges, self.epoch_rejects, self.rejoins
        );
        let _ = writeln!(
            out,
            "  replica failovers {} | hedges won {} | hedges lost {}",
            self.replica_failovers, self.replica_hedges_won, self.replica_hedges_lost
        );
        if self.stages.total_ns() > 0 {
            let _ = writeln!(out, "  stages: {}", self.stages.render_line());
        }
        for i in 0..self.backends {
            let _ = writeln!(
                out,
                "  backend {i} (partition {} replica {}): {} replies, {} errors",
                i / self.replicas.max(1),
                i % self.replicas.max(1),
                self.backend_replies[i],
                self.backend_errors[i]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_carries_all_families_and_labels() {
        let m = RouterMetrics::new(2, 1);
        m.queries.fetch_add(3, Ordering::Relaxed);
        m.degraded.fetch_add(1, Ordering::Relaxed);
        m.record_reply(0, Duration::from_millis(2));
        m.backend(1).errors.fetch_add(1, Ordering::Relaxed);
        let text = m.render_prometheus(&[true, false]);
        assert!(text.contains("gsknn_router_queries_total 3"));
        assert!(text.contains("gsknn_router_degraded_total 1"));
        assert!(text.contains("gsknn_router_replica_failovers_total 0"));
        assert!(text.contains("gsknn_router_replica_hedges_won_total 0"));
        assert!(text.contains("gsknn_router_replica_hedges_lost_total 0"));
        assert!(text.contains("gsknn_router_backend_up{backend=\"0\"} 1"));
        assert!(text.contains("gsknn_router_backend_up{backend=\"1\"} 0"));
        assert!(text.contains("gsknn_router_replica_up{partition=\"0\",replica=\"0\"} 1"));
        assert!(text.contains("gsknn_router_replica_up{partition=\"1\",replica=\"0\"} 0"));
        assert!(text.contains("gsknn_router_backend_replies_total{backend=\"0\"} 1"));
        assert!(text.contains("gsknn_router_backend_errors_total{backend=\"1\"} 1"));
        assert!(text.contains("gsknn_router_backend_latency_seconds_count{backend=\"0\"} 1"));
        assert!(text.contains("gsknn_router_stage_ns_total{stage=\"network\"} 0"));
        assert!(text.contains("gsknn_router_stage_ns_total{stage=\"merge\"} 0"));
    }

    #[test]
    fn stage_attribution_accumulates_and_reaches_the_report() {
        let m = RouterMetrics::new(1, 1);
        m.record_stages(&StageBreakdown {
            network_ns: 100,
            backend_wait_ns: 300,
            kernel_ns: 500,
            merge_ns: 100,
        });
        m.record_stages(&StageBreakdown {
            network_ns: 100,
            backend_wait_ns: 0,
            kernel_ns: 0,
            merge_ns: 0,
        });
        let s = m.stages();
        assert_eq!(s.totals(), [200, 300, 500, 100]);
        let text = m.render_prometheus(&[true]);
        assert!(text.contains("gsknn_router_stage_ns_total{stage=\"network\"} 200"));
        assert!(text.contains("gsknn_router_stage_ns_total{stage=\"backend_wait\"} 300"));
        assert!(text.contains("gsknn_router_stage_ns_total{stage=\"kernel\"} 500"));
        assert!(text.contains("gsknn_router_stage_ns_total{stage=\"merge\"} 100"));
        let r = m.report(&[true]);
        assert_eq!(r.stages.kernel_ns, 500);
        let table = r.render_table();
        assert!(table.contains("stages: network"));
        assert!(table.contains("merge"));
    }

    #[test]
    fn replica_gauge_labels_are_partition_major() {
        let m = RouterMetrics::new(4, 2);
        m.replica_failovers.fetch_add(2, Ordering::Relaxed);
        let text = m.render_prometheus(&[true, false, true, true]);
        // backend 1 is partition 0's replica 1; backend 2 is partition
        // 1's replica 0
        assert!(text.contains("gsknn_router_replica_up{partition=\"0\",replica=\"1\"} 0"));
        assert!(text.contains("gsknn_router_replica_up{partition=\"1\",replica=\"0\"} 1"));
        assert!(text.contains("gsknn_router_replica_failovers_total 2"));
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let m = RouterMetrics::new(1, 1);
        assert_eq!(m.ewma_ns(0), 0);
        m.record_reply(0, Duration::from_nanos(1000));
        assert_eq!(m.ewma_ns(0), 1000, "first sample seeds the EWMA");
        m.record_reply(0, Duration::from_nanos(2000));
        // 1000 - 1000/4 + 2000/4 = 1250
        assert_eq!(m.ewma_ns(0), 1250);
    }

    #[test]
    fn report_rolls_up_per_backend_tallies() {
        let m = RouterMetrics::new(3, 1);
        m.record_reply(2, Duration::from_micros(10));
        let r = m.report(&[true, true, false]);
        assert_eq!(r.backends, 3);
        assert_eq!(r.healthy, 2);
        assert_eq!(r.backend_replies, vec![0, 0, 1]);
        assert!(r
            .render_table()
            .contains("backend 2 (partition 2 replica 0): 1 replies"));
    }
}
