//! Router-tier counters and per-backend latency histograms, rendered as
//! a Prometheus-style text exposition (`gsknn_router_*` families) and as
//! the final [`RouterReport`] the `route` command prints on drain.

use gsknn_obs::LatencyHistogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-backend tallies: replies folded into merges, exchange failures,
/// and the fan-out→reply latency distribution.
pub struct BackendStat {
    /// Partials from this backend folded into merged answers.
    pub replies: AtomicU64,
    /// Failed exchanges (connect/send/receive error, bad status, epoch
    /// or shape mismatch) — each one marks the backend down until the
    /// prober sees it answer a ping again.
    pub errors: AtomicU64,
    /// Send → validated-partial latency.
    pub latency: LatencyHistogram,
}

/// Shared router counters. All lock-free; handler threads bump them
/// directly.
pub struct RouterMetrics {
    /// Query/batch requests routed (any outcome).
    pub queries: AtomicU64,
    /// Merged answers that shipped with partitions missing
    /// (`Status::OkDegraded` + partial envelope).
    pub degraded: AtomicU64,
    /// Hedged re-sends: a backend exchange failed and the router retried
    /// it once on a fresh connection inside the deadline.
    pub hedges: AtomicU64,
    /// Partials rejected for carrying a different partition-map epoch
    /// than the router's.
    pub epoch_rejects: AtomicU64,
    /// Downed backends that passed a liveness probe and rejoined the
    /// fan-out.
    pub rejoins: AtomicU64,
    backends: Vec<BackendStat>,
}

impl RouterMetrics {
    /// Zeroed metrics for `n` backends.
    pub fn new(n: usize) -> Self {
        RouterMetrics {
            queries: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            epoch_rejects: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            backends: (0..n)
                .map(|_| BackendStat {
                    replies: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                    latency: LatencyHistogram::new(),
                })
                .collect(),
        }
    }

    /// Stats for backend `i`.
    pub fn backend(&self, i: usize) -> &BackendStat {
        &self.backends[i]
    }

    /// Record one successful exchange with backend `i`.
    pub fn record_reply(&self, i: usize, rtt: Duration) {
        self.backends[i].replies.fetch_add(1, Ordering::Relaxed);
        self.backends[i].latency.record(rtt);
    }

    /// The Prometheus-style text exposition. `up[i]` is the live health
    /// gauge for backend `i`.
    pub fn render_prometheus(&self, up: &[bool]) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "gsknn_router_queries_total",
            "Query requests routed (any outcome).",
            self.queries.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_degraded_total",
            "Merged answers shipped with partitions missing.",
            self.degraded.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_hedges_total",
            "Hedged re-sends after a failed backend exchange.",
            self.hedges.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_epoch_rejects_total",
            "Partials rejected for a mismatched partition-map epoch.",
            self.epoch_rejects.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gsknn_router_rejoins_total",
            "Downed backends that rejoined after a successful probe.",
            self.rejoins.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "# HELP gsknn_router_backend_up Backend health (1 = in the fan-out)."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_backend_up gauge");
        for (i, &u) in up.iter().enumerate() {
            let _ = writeln!(
                out,
                "gsknn_router_backend_up{{backend=\"{i}\"}} {}",
                u as u8
            );
        }
        let _ = writeln!(
            out,
            "# HELP gsknn_router_backend_replies_total Partials folded into merged answers."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_backend_replies_total counter");
        for (i, b) in self.backends.iter().enumerate() {
            let _ = writeln!(
                out,
                "gsknn_router_backend_replies_total{{backend=\"{i}\"}} {}",
                b.replies.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP gsknn_router_backend_errors_total Failed backend exchanges."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_backend_errors_total counter");
        for (i, b) in self.backends.iter().enumerate() {
            let _ = writeln!(
                out,
                "gsknn_router_backend_errors_total{{backend=\"{i}\"}} {}",
                b.errors.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP gsknn_router_backend_latency_seconds Send-to-partial latency quantiles."
        );
        let _ = writeln!(out, "# TYPE gsknn_router_backend_latency_seconds summary");
        for (i, b) in self.backends.iter().enumerate() {
            let snap = b.latency.snapshot();
            for (q, v) in [
                (0.5, snap.p50_ns()),
                (0.9, snap.p90_ns()),
                (0.99, snap.p99_ns()),
            ] {
                if let Some(ns) = v {
                    let _ = writeln!(
                        out,
                        "gsknn_router_backend_latency_seconds{{backend=\"{i}\",quantile=\"{q}\"}} {:.9}",
                        ns as f64 / 1e9
                    );
                }
            }
            let _ = writeln!(
                out,
                "gsknn_router_backend_latency_seconds_count{{backend=\"{i}\"}} {}",
                snap.count()
            );
        }
        out
    }

    /// The drain-time summary.
    pub fn report(&self, up: &[bool]) -> RouterReport {
        RouterReport {
            backends: self.backends.len(),
            healthy: up.iter().filter(|&&u| u).count(),
            queries: self.queries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            epoch_rejects: self.epoch_rejects.load(Ordering::Relaxed),
            rejoins: self.rejoins.load(Ordering::Relaxed),
            backend_replies: self
                .backends
                .iter()
                .map(|b| b.replies.load(Ordering::Relaxed))
                .collect(),
            backend_errors: self
                .backends
                .iter()
                .map(|b| b.errors.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Final tallies printed when the router drains.
#[derive(Clone, Debug)]
pub struct RouterReport {
    pub backends: usize,
    pub healthy: usize,
    pub queries: u64,
    pub degraded: u64,
    pub hedges: u64,
    pub epoch_rejects: u64,
    pub rejoins: u64,
    pub backend_replies: Vec<u64>,
    pub backend_errors: Vec<u64>,
}

impl RouterReport {
    /// Plain-text rendering for the CLI.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "router: {} queries over {} backends ({} healthy at drain)",
            self.queries, self.backends, self.healthy
        );
        let _ = writeln!(
            out,
            "  degraded {} | hedges {} | epoch rejects {} | rejoins {}",
            self.degraded, self.hedges, self.epoch_rejects, self.rejoins
        );
        for i in 0..self.backends {
            let _ = writeln!(
                out,
                "  backend {i}: {} replies, {} errors",
                self.backend_replies[i], self.backend_errors[i]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_carries_all_families_and_labels() {
        let m = RouterMetrics::new(2);
        m.queries.fetch_add(3, Ordering::Relaxed);
        m.degraded.fetch_add(1, Ordering::Relaxed);
        m.record_reply(0, Duration::from_millis(2));
        m.backend(1).errors.fetch_add(1, Ordering::Relaxed);
        let text = m.render_prometheus(&[true, false]);
        assert!(text.contains("gsknn_router_queries_total 3"));
        assert!(text.contains("gsknn_router_degraded_total 1"));
        assert!(text.contains("gsknn_router_backend_up{backend=\"0\"} 1"));
        assert!(text.contains("gsknn_router_backend_up{backend=\"1\"} 0"));
        assert!(text.contains("gsknn_router_backend_replies_total{backend=\"0\"} 1"));
        assert!(text.contains("gsknn_router_backend_errors_total{backend=\"1\"} 1"));
        assert!(text.contains("gsknn_router_backend_latency_seconds_count{backend=\"0\"} 1"));
    }

    #[test]
    fn report_rolls_up_per_backend_tallies() {
        let m = RouterMetrics::new(3);
        m.record_reply(2, Duration::from_micros(10));
        let r = m.report(&[true, true, false]);
        assert_eq!(r.backends, 3);
        assert_eq!(r.healthy, 2);
        assert_eq!(r.backend_replies, vec![0, 0, 1]);
        assert!(r.render_table().contains("backend 2: 1 replies"));
    }
}
