//! `--key value` flag parsing with typed accessors and defaults.

use std::collections::HashMap;

/// CLI failure: a message and the exit code to use.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parsed `--key value` pairs (keys without the `--` prefix).
#[derive(Debug, Default)]
pub struct ArgMap {
    vals: HashMap<String, String>,
}

impl ArgMap {
    /// Parse a flat list of tokens. Every flag must be `--key` followed
    /// by one value; repeated keys keep the last value.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, CliError> {
        let mut vals = HashMap::new();
        let mut it = tokens.into_iter();
        while let Some(t) = it.next() {
            let key = t
                .strip_prefix("--")
                .ok_or_else(|| CliError(format!("expected --flag, got '{t}'")))?;
            let val = it
                .next()
                .ok_or_else(|| CliError(format!("--{key} needs a value")))?;
            vals.insert(key.to_string(), val);
        }
        Ok(ArgMap { vals })
    }

    /// String value or default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.vals
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Required string value.
    pub fn str_req(&self, key: &str) -> Result<String, CliError> {
        self.vals
            .get(key)
            .cloned()
            .ok_or_else(|| CliError(format!("missing required --{key}")))
    }

    /// Typed value or default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.vals.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("--{key}: cannot parse '{v}'"))),
        }
    }

    /// Typed optional value: `None` when the flag is absent.
    pub fn opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.vals.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError(format!("--{key}: cannot parse '{v}'"))),
        }
    }
}

/// Parse a distance-kind label (`sq-l2`, `l1`, `linf`, `cosine`, `l<p>`).
pub fn parse_kind(s: &str) -> Result<dataset::DistanceKind, CliError> {
    use dataset::DistanceKind::*;
    match s {
        "sq-l2" | "l2" => Ok(SqL2),
        "l1" => Ok(L1),
        "linf" => Ok(LInf),
        "cosine" => Ok(Cosine),
        other => {
            if let Some(p) = other.strip_prefix('l') {
                let p: f64 = p
                    .parse()
                    .map_err(|_| CliError(format!("unknown metric '{other}'")))?;
                if p > 0.0 {
                    return Ok(Lp(p));
                }
            }
            Err(CliError(format!("unknown metric '{other}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs_with_defaults() {
        let a = ArgMap::parse(toks("--n 100 --kind l1")).unwrap();
        assert_eq!(a.get_or("n", 0usize).unwrap(), 100);
        assert_eq!(a.get_or("d", 16usize).unwrap(), 16);
        assert_eq!(a.str_or("kind", "sq-l2"), "l1");
    }

    #[test]
    fn rejects_bare_values_and_missing_values() {
        assert!(ArgMap::parse(toks("n 100")).is_err());
        assert!(ArgMap::parse(toks("--n")).is_err());
    }

    #[test]
    fn typed_parse_errors_are_reported() {
        let a = ArgMap::parse(toks("--n banana")).unwrap();
        let e = a.get_or("n", 0usize).unwrap_err();
        assert!(e.0.contains("banana"));
    }

    #[test]
    fn required_flags() {
        let a = ArgMap::parse(toks("--out x.csv")).unwrap();
        assert_eq!(a.str_req("out").unwrap(), "x.csv");
        assert!(a.str_req("in").is_err());
    }

    #[test]
    fn metric_labels() {
        assert_eq!(parse_kind("l2").unwrap(), dataset::DistanceKind::SqL2);
        assert_eq!(parse_kind("cosine").unwrap(), dataset::DistanceKind::Cosine);
        assert_eq!(parse_kind("l3.5").unwrap(), dataset::DistanceKind::Lp(3.5));
        assert!(parse_kind("l-1").is_err());
        assert!(parse_kind("hamming").is_err());
    }
}
