//! `gsknn-cli` — the command-line face of the GSKNN reproduction.

use cli::commands;
use cli::ArgMap;

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = match argv.next() {
        Some(c) => c,
        None => {
            eprint!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    let rest: Vec<String> = argv.collect();
    let result = ArgMap::parse(rest).and_then(|args| match cmd.as_str() {
        "gen" => commands::cmd_gen(&args),
        "knn" => commands::cmd_knn(&args),
        "allnn" => commands::cmd_allnn(&args),
        "query" => commands::cmd_query(&args),
        "kmeans" => commands::cmd_kmeans(&args),
        "graph" => commands::cmd_graph(&args),
        "model" => commands::cmd_model(&args),
        "profile" => commands::cmd_profile(&args),
        "stream" => commands::cmd_stream(&args),
        "tune" => commands::cmd_tune(&args),
        "serve" => commands::cmd_serve(&args),
        "route" => commands::cmd_route(&args),
        "query-remote" => commands::cmd_query_remote(&args),
        "trace" => commands::cmd_trace(&args),
        "top" => commands::cmd_top(&args),
        "bench-diff" => commands::cmd_bench_diff(&args),
        "help" | "--help" | "-h" => Ok(commands::usage()),
        other => Err(cli::CliError(format!(
            "unknown command '{other}'\n{}",
            commands::usage()
        ))),
    });
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
