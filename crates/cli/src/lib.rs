//! Argument parsing and command implementations for `gsknn-cli`.
//!
//! A deliberately dependency-free flag parser (`--key value` pairs after
//! a subcommand) plus one function per subcommand, kept in a library so
//! the parsing and command logic are unit-testable without spawning the
//! binary.

pub mod args;
pub mod commands;

pub use args::{ArgMap, CliError};
