//! One function per `gsknn-cli` subcommand. Each returns the text it
//! would print (so tests can assert on output without capturing stdout).

use crate::args::{parse_kind, ArgMap, CliError};
use cluster::{kmeans, KMeansConfig};
use dataset::{gaussian_embedded, io, uniform, PointSet};
use gsknn_core::model::Approach;
use gsknn_core::{FusedScalar, Gsknn, GsknnConfig, GsknnScalar, MachineParams, Model, ProblemSize};
use knn_graph::{build_with_forest, connected_components, Symmetrize};
use rkdt::{AllNnSolver, Forest, GsknnLeaf, RkdtConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The `--precision` flag: which element type a command computes in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Precision {
    F64,
    F32,
}

fn parse_precision(args: &ArgMap) -> Result<Precision, CliError> {
    match args.str_or("precision", "f64").as_str() {
        "f64" | "double" => Ok(Precision::F64),
        "f32" | "single" | "float" => Ok(Precision::F32),
        other => Err(CliError(format!(
            "unknown --precision '{other}' (expected f64 or f32)"
        ))),
    }
}

/// `gen`: synthesize a dataset and write it as CSV.
pub fn cmd_gen(args: &ArgMap) -> Result<String, CliError> {
    let n: usize = args.get_or("n", 1000)?;
    let d: usize = args.get_or("d", 16)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let dist = args.str_or("dist", "uniform");
    let out = PathBuf::from(args.str_req("out")?);
    let x = match dist.as_str() {
        "uniform" => uniform(n, d, seed),
        "gaussian" => {
            let clusters: usize = args.get_or("clusters", 8)?;
            gaussian_embedded(n, d, clusters, seed)
        }
        other => return Err(CliError(format!("unknown --dist '{other}'"))),
    };
    io::save_csv(&x, &out).map_err(|e| CliError(e.to_string()))?;
    Ok(format!("wrote {n} x {d} ({dist}) to {}", out.display()))
}

fn load(args: &ArgMap) -> Result<PointSet, CliError> {
    let path = PathBuf::from(args.str_req("in")?);
    io::load_csv(&path).map_err(|e| CliError(format!("{}: {e}", path.display())))
}

/// `knn`: exact k nearest neighbors of the first `--m` points (or all).
/// `--precision f32` casts the dataset and runs the single-precision
/// fused kernel (8×8 micro-tiles) instead of the paper's double path.
pub fn cmd_knn(args: &ArgMap) -> Result<String, CliError> {
    let x = load(args)?;
    match parse_precision(args)? {
        Precision::F64 => knn_run(&x, args),
        Precision::F32 => knn_run(&x.cast::<f32>(), args),
    }
}

fn knn_run<T: FusedScalar>(x: &PointSet<T>, args: &ArgMap) -> Result<String, CliError> {
    let k: usize = args.get_or("k", 8)?;
    let m: usize = args.get_or("m", x.len().min(10))?;
    let kind = parse_kind(&args.str_or("kind", "sq-l2"))?;
    let q: Vec<usize> = (0..m.min(x.len())).collect();
    let r: Vec<usize> = (0..x.len()).collect();
    let t0 = std::time::Instant::now();
    let table = Gsknn::<T>::new(GsknnConfig::for_scalar::<T>()).run(x, &q, &r, k, kind);
    let dt = t0.elapsed();
    let mut out = format!(
        "exact {}-NN ({}, {}) of {} queries against {} points in {dt:.2?}\n",
        k,
        kind.name(),
        T::NAME,
        q.len(),
        x.len()
    );
    for (i, &qi) in q.iter().enumerate().take(10) {
        write!(out, "{qi}:").unwrap();
        for nb in table.row(i).iter().filter(|nb| nb.idx != u32::MAX) {
            write!(out, " {}({:.4})", nb.idx, nb.dist).unwrap();
        }
        out.push('\n');
    }
    Ok(out)
}

/// `allnn`: approximate all-nearest-neighbors with the rkdt solver.
/// `--precision f32` runs the whole tree/leaf pipeline in single
/// precision; `--lpt P` swaps the rayon leaf loop for the paper's §2.5
/// model-guided LPT schedule over `P` workers.
pub fn cmd_allnn(args: &ArgMap) -> Result<String, CliError> {
    let x = load(args)?;
    match parse_precision(args)? {
        Precision::F64 => allnn_run(&x, args),
        Precision::F32 => allnn_run(&x.cast::<f32>(), args),
    }
}

fn allnn_run<T: FusedScalar>(x: &PointSet<T>, args: &ArgMap) -> Result<String, CliError> {
    let k: usize = args.get_or("k", 8)?;
    let kind = parse_kind(&args.str_or("kind", "sq-l2"))?;
    let cfg = RkdtConfig {
        leaf_size: args.get_or("leaf", 1024)?,
        iterations: args.get_or("iters", 6)?,
        seed: args.get_or("seed", 1)?,
        parallel_leaves: true,
        lpt_workers: args.opt("lpt")?,
    };
    let t0 = std::time::Instant::now();
    let (table, stats) = AllNnSolver::new(cfg).solve(
        x,
        k,
        || GsknnLeaf::<T>::new(GsknnConfig::for_scalar::<T>(), kind),
        None,
    );
    let dt = t0.elapsed();
    let mut out = format!(
        "all-{k}-NN ({}) of {} points in {dt:.2?}\n",
        T::NAME,
        x.len()
    );
    for s in &stats {
        writeln!(
            out,
            "iter {:>2}: {:>5.1}% rows improved, kernel {:.3}s",
            s.iter,
            100.0 * s.changed_fraction,
            s.kernel_seconds
        )
        .unwrap();
    }
    if let Some(path) = args.vals_out() {
        save_table(&table, &path)?;
        writeln!(out, "neighbor table written to {}", path.display()).unwrap();
    }
    Ok(out)
}

impl ArgMap {
    fn vals_out(&self) -> Option<PathBuf> {
        let s = self.str_or("out", "");
        if s.is_empty() {
            None
        } else {
            Some(PathBuf::from(s))
        }
    }
}

fn save_table<T: GsknnScalar>(
    table: &knn_select::NeighborTable<T>,
    path: &std::path::Path,
) -> Result<(), CliError> {
    let mut s = String::new();
    for i in 0..table.len() {
        for (p, nb) in table.row(i).iter().enumerate() {
            if p > 0 {
                s.push(',');
            }
            write!(s, "{}:{:.6e}", nb.idx as i64, nb.dist.to_f64()).unwrap();
        }
        s.push('\n');
    }
    std::fs::write(path, s).map_err(|e| CliError(e.to_string()))
}

/// `query`: out-of-sample forest search (`--in` references, `--queries`).
pub fn cmd_query(args: &ArgMap) -> Result<String, CliError> {
    let x = load(args)?;
    let qpath = PathBuf::from(args.str_req("queries")?);
    let queries = io::load_csv(&qpath).map_err(|e| CliError(e.to_string()))?;
    let k: usize = args.get_or("k", 8)?;
    let kind = parse_kind(&args.str_or("kind", "sq-l2"))?;
    let trees: usize = args.get_or("trees", 8)?;
    let leaf: usize = args.get_or("leaf", 512)?;
    let forest = Forest::build(&x, trees, leaf, args.get_or("seed", 1)?);
    let t0 = std::time::Instant::now();
    let table = forest.query(&x, &queries, k, kind, GsknnConfig::default());
    let dt = t0.elapsed();
    let mut out = format!(
        "{} queries x {k}-NN via {trees} trees in {dt:.2?}\n",
        queries.len()
    );
    for i in 0..queries.len().min(10) {
        write!(out, "q{i}:").unwrap();
        for nb in table.row(i).iter().filter(|nb| nb.idx != u32::MAX) {
            write!(out, " {}({:.4})", nb.idx, nb.dist).unwrap();
        }
        out.push('\n');
    }
    Ok(out)
}

/// `kmeans`: Lloyd's clustering.
pub fn cmd_kmeans(args: &ArgMap) -> Result<String, CliError> {
    let x = load(args)?;
    let cfg = KMeansConfig {
        clusters: args.get_or("clusters", 8)?,
        max_iters: args.get_or("iters", 50)?,
        tol: args.get_or("tol", 1e-6)?,
        seed: args.get_or("seed", 0xC1)?,
    };
    let t0 = std::time::Instant::now();
    let res = kmeans(&x, &cfg);
    let dt = t0.elapsed();
    let mut sizes = vec![0usize; cfg.clusters];
    for &a in &res.assignment {
        sizes[a as usize] += 1;
    }
    Ok(format!(
        "k-means: {} clusters over {} points, {} iterations in {dt:.2?}\ninertia {:.4}\ncluster sizes {:?}\n",
        cfg.clusters,
        x.len(),
        res.iterations,
        res.inertia,
        sizes
    ))
}

/// `graph`: approximate kNN graph + component statistics.
pub fn cmd_graph(args: &ArgMap) -> Result<String, CliError> {
    let x = load(args)?;
    let k: usize = args.get_or("k", 8)?;
    let kind = parse_kind(&args.str_or("kind", "sq-l2"))?;
    let sym = match args.str_or("sym", "union").as_str() {
        "none" => Symmetrize::None,
        "union" => Symmetrize::Union,
        "mutual" => Symmetrize::Mutual,
        other => return Err(CliError(format!("unknown --sym '{other}'"))),
    };
    let cfg = RkdtConfig {
        leaf_size: args.get_or("leaf", 512)?,
        iterations: args.get_or("iters", 6)?,
        seed: args.get_or("seed", 1)?,
        parallel_leaves: true,
        lpt_workers: args.opt("lpt")?,
    };
    let t0 = std::time::Instant::now();
    let g = build_with_forest(&x, k, kind, sym, cfg);
    let comps = connected_components(&g);
    let dt = t0.elapsed();
    let (dmin, dmean, dmax) = g.degree_stats();
    let mut sizes = comps.sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes.truncate(10);
    Ok(format!(
        "kNN graph: {} vertices, {} edges in {dt:.2?}\ndegree min/mean/max = {dmin}/{dmean:.2}/{dmax}\n{} components; largest: {:?}\n",
        g.num_vertices(),
        g.num_edges(),
        comps.count(),
        sizes
    ))
}

/// `model`: §2.6 performance-model predictions for a problem size.
pub fn cmd_model(args: &ArgMap) -> Result<String, CliError> {
    let m: usize = args.get_or("m", 8192)?;
    let n: usize = args.get_or("n", 8192)?;
    let d: usize = args.get_or("d", 64)?;
    let k: usize = args.get_or("k", 16)?;
    let model = Model::new(MachineParams::ivy_bridge_1core());
    let p = ProblemSize { m, n, d, k };
    let mut out =
        format!("performance model (paper Ivy Bridge constants), m={m} n={n} d={d} k={k}\n");
    for (name, a) in [
        ("GSKNN Var#1", Approach::Var1),
        ("GSKNN Var#6", Approach::Var6),
        ("GEMM+heap  ", Approach::Gemm),
    ] {
        writeln!(
            out,
            "{name}: {:>8.2} ms predicted, {:>7.2} GFLOPS",
            model.predict(&p, a) * 1e3,
            model.gflops(&p, a)
        )
        .unwrap();
    }
    if let Some(thr) = model.threshold_k(m, n, d, 8192) {
        writeln!(out, "predicted Var#1→Var#6 switch at k = {thr}").unwrap();
    }
    Ok(out)
}

/// `stream`: demonstrate the streaming all-NN maintainer — seed from
/// `--in`, then insert the points of `--batch` and report how the table
/// grew (the paper's "frequent updates of X" scenario).
pub fn cmd_stream(args: &ArgMap) -> Result<String, CliError> {
    use rkdt::{GsknnLeaf, StreamingAllNn, StreamingConfig};
    let x = load(args)?;
    let batch_path = PathBuf::from(args.str_req("batch")?);
    let batch = io::load_csv(&batch_path).map_err(|e| CliError(e.to_string()))?;
    if batch.dim() != x.dim() {
        return Err(CliError(format!(
            "dimension mismatch: --in is {}-d, --batch is {}-d",
            x.dim(),
            batch.dim()
        )));
    }
    let k: usize = args.get_or("k", 8)?;
    let kind = parse_kind(&args.str_or("kind", "sq-l2"))?;
    let cfg = StreamingConfig {
        leaf_size: args.get_or("leaf", 1024)?,
        initial_iterations: args.get_or("iters", 4)?,
        seed: args.get_or("seed", 1)?,
    };
    let n0 = x.len();
    let t0 = std::time::Instant::now();
    let mut s = StreamingAllNn::new(x, k, cfg, GsknnLeaf::new(GsknnConfig::default(), kind));
    let seed_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let range = s.insert(batch.as_slice());
    let insert_time = t1.elapsed();
    let fresh = range
        .clone()
        .filter(|&i| s.table().row(i)[0].dist.is_finite())
        .count();
    Ok(format!(
        "streamed all-{k}-NN: seeded {n0} points in {seed_time:.2?}, \
inserted {} more in {insert_time:.2?}\ntable now covers {} points; \
{fresh}/{} new points have neighbors immediately\n",
        range.len(),
        s.points().len(),
        range.len(),
    ))
}

/// `profile`: run a synthetic problem under the observability layer and
/// report phase times, model-vs-measured drift, the variant verdict and
/// scheduler telemetry. `--precision f32` profiles the single-precision
/// path against the rescaled machine model. Writes the full report as
/// JSON under `--outdir` (default `bench_out/`).
pub fn cmd_profile(args: &ArgMap) -> Result<String, CliError> {
    match parse_precision(args)? {
        Precision::F64 => profile_run_cmd::<f64>(args),
        Precision::F32 => profile_run_cmd::<f32>(args),
    }
}

fn profile_run_cmd<T: FusedScalar>(args: &ArgMap) -> Result<String, CliError> {
    use gsknn_core::scheduler::{run_task_parallel_traced, KnnTask};
    use gsknn_obs::{profile_synthetic, SchedulerReport};

    let m: usize = args.get_or("m", 8192)?;
    let n: usize = args.get_or("n", 8192)?;
    let d: usize = args.get_or("d", 64)?;
    let k: usize = args.get_or("k", 16)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let reps: usize = args.get_or("reps", 3)?;
    let kind = parse_kind(&args.str_or("kind", "sq-l2"))?;
    let workers: usize = args.get_or("p", 4)?;
    let ntasks: usize = args.get_or("tasks", 2 * workers.max(1))?;
    let outdir = PathBuf::from(args.str_or("outdir", "bench_out"));

    let machine = MachineParams::ivy_bridge_1core();
    let report = profile_synthetic::<T>(m, n, d, k, seed, kind, machine, reps);
    let mut out = report.render_table();

    // Scheduler telemetry: the same problem split into `--tasks` query
    // chunks, LPT-scheduled over `--p` workers by model-predicted cost.
    let x = dataset::uniform(m.max(n).max(1), d, seed).cast::<T>();
    let chunk = m.div_ceil(ntasks.max(1)).max(1);
    let tasks: Vec<KnnTask> = (0..m)
        .step_by(chunk)
        .map(|lo| KnnTask {
            q_idx: (lo..(lo + chunk).min(m)).collect(),
            r_idx: (0..n).collect(),
            k,
        })
        .collect();
    let sched = if tasks.is_empty() {
        None
    } else {
        let (_, tel) = run_task_parallel_traced(
            &x,
            &tasks,
            kind,
            &GsknnConfig::for_scalar::<T>(),
            machine,
            workers.max(1),
        );
        let sr = SchedulerReport::from_telemetry(&tel);
        out.push('\n');
        out.push_str(&sr.render_table());
        Some(sr)
    };

    let mut doc = vec![("profile".to_string(), report.to_json())];
    if let Some(sr) = &sched {
        doc.push(("scheduler".to_string(), sr.to_json()));
    }
    let json = serde_json::Value::Object(doc);
    std::fs::create_dir_all(&outdir).map_err(|e| CliError(e.to_string()))?;
    let path = outdir.join(format!("profile_m{m}_n{n}_d{d}_k{k}_{}.json", T::NAME));
    std::fs::write(&path, json.to_string()).map_err(|e| CliError(e.to_string()))?;
    writeln!(out, "\nreport written to {}", path.display()).unwrap();
    Ok(out)
}

/// `tune`: show detected caches and the §2.4 analytically derived
/// blocking parameters next to the paper's.
pub fn cmd_tune(_args: &ArgMap) -> Result<String, CliError> {
    use gsknn_core::GemmParams;
    let mut out = String::new();
    match gemm_kernel::CacheSizes::detect() {
        Some(c) => {
            writeln!(
                out,
                "detected caches: L1d {} KB, L2 {} KB, L3 {} KB",
                c.l1d / 1024,
                c.l2 / 1024,
                c.l3 / 1024
            )
            .unwrap();
            let p = GemmParams::for_caches(&c);
            writeln!(
                out,
                "derived  : dc = {:>5}, mc = {:>5}, nc = {:>6}",
                p.dc, p.mc, p.nc
            )
            .unwrap();
        }
        None => writeln!(out, "cache detection failed; using paper parameters").unwrap(),
    }
    let ivy = GemmParams::ivy_bridge();
    writeln!(
        out,
        "paper    : dc = {:>5}, mc = {:>5}, nc = {:>6} (Ivy Bridge)",
        ivy.dc, ivy.mc, ivy.nc
    )
    .unwrap();
    Ok(out)
}

/// `serve`: load (or synthesize) an index and answer kNN queries over
/// TCP until `query-remote --op shutdown` or SIGTERM. Blocks; prints the
/// final [`gsknn_serve::ServeReport`] when it drains.
/// Parse an `i/N` slot spec (`--partition 0/2`, `--replica 1/2`) into
/// `(id, total)`, rejecting `N == 0` and `i >= N` with a typed error
/// naming the flag — a misconfigured index must fail the command, not
/// build a server that poisons merges.
fn parse_slot_spec(flag: &str, spec: &str) -> Result<(u16, u16), CliError> {
    let bad = || CliError(format!("--{flag} expects i/N (e.g. 0/2), got '{spec}'"));
    let (i, n) = spec.split_once('/').ok_or_else(bad)?;
    let id: u16 = i.trim().parse().map_err(|_| bad())?;
    let total: u16 = n.trim().parse().map_err(|_| bad())?;
    if total == 0 || id >= total {
        return Err(CliError(format!(
            "--{flag} index must satisfy i < N >= 1, got '{spec}'"
        )));
    }
    Ok((id, total))
}

pub fn cmd_serve(args: &ArgMap) -> Result<String, CliError> {
    use gsknn_serve::{PartitionCfg, ServeIndex, Server, ServerConfig};

    if args.opt::<usize>("workers")?.is_some() {
        eprintln!(
            "gsknn-serve: warning: --workers is deprecated and ignored \
             (shards run kernels inline; use --shards to scale)"
        );
    }
    let x = if args.opt::<String>("in")?.is_some() {
        load(args)?
    } else {
        let n: usize = args.get_or("n", 2000)?;
        let d: usize = args.get_or("d", 16)?;
        let seed: u64 = args.get_or("seed", 42)?;
        match args.str_or("dist", "uniform").as_str() {
            "uniform" => uniform(n, d, seed),
            "gaussian" => gaussian_embedded(n, d, args.get_or("clusters", 8)?, seed),
            other => return Err(CliError(format!("unknown --dist '{other}'"))),
        }
    };
    // `--partition i/N` keeps only this server's contiguous slice of the
    // reference rows; the row offset recorded in PartitionCfg globalizes
    // neighbor ids on the wire so the router merges without translation.
    let (x, partition) = match args.opt::<String>("partition")? {
        Some(spec) => {
            let (id, total) = parse_slot_spec("partition", &spec)?;
            // `--replica r/R` identifies this copy of the partition; the
            // slice served is identical across replicas
            let (replica, replicas) = match args.opt::<String>("replica")? {
                Some(rspec) => parse_slot_spec("replica", &rspec)?,
                None => (0, 1),
            };
            let epoch = args.get_or("partition-epoch", 1u64)?;
            if epoch == 0 {
                return Err(CliError(
                    "--partition-epoch 0 is reserved (the router would reject every \
                     partial); epochs start at 1"
                        .to_string(),
                ));
            }
            let (n, d) = (x.len(), x.dim());
            let lo = n * id as usize / total as usize;
            let hi = n * (id as usize + 1) / total as usize;
            if lo == hi {
                return Err(CliError(format!(
                    "partition {id}/{total} of a {n}-row dataset is empty"
                )));
            }
            let slice = PointSet::from_vec(d, hi - lo, x.as_slice()[lo * d..hi * d].to_vec());
            let cfg = PartitionCfg {
                id,
                total,
                offset: lo as u32,
                epoch,
                replica,
                replicas,
            };
            (slice, Some(cfg))
        }
        None => {
            if args.opt::<String>("replica")?.is_some() {
                return Err(CliError(
                    "--replica only makes sense with --partition (a replica is a copy \
                     of a partition slice)"
                        .to_string(),
                ));
            }
            (x, None)
        }
    };
    let trees: usize = args.get_or("trees", 4)?;
    let leaf: usize = args.get_or("leaf", 512)?;
    let forest_seed: u64 = args.get_or("forest-seed", 7)?;
    let overload_threshold: f64 = args.get_or("overload-threshold", 0.75)?;
    if !(overload_threshold > 0.0 && overload_threshold <= 1.0) {
        return Err(CliError(format!(
            "--overload-threshold must be in (0, 1], got {overload_threshold}"
        )));
    }
    let cfg = ServerConfig {
        addr: args.str_or("addr", "127.0.0.1:7979"),
        shards: args.get_or("shards", 1usize)?,
        pin_cores: args.get_or("pin-cores", false)?,
        adaptive_coalesce: args.get_or("adaptive-coalesce", false)?,
        workers_per_lane: args.get_or("workers", 1)?,
        queue_cap: args.get_or("queue-cap", 1024)?,
        coalesce_frac: args.get_or("frac", 0.9)?,
        max_batch: args.get_or("max-batch", 512)?,
        k_max: args.get_or("k-max", 128)?,
        kind: parse_kind(&args.str_or("kind", "sq-l2"))?,
        degrade_precision: args.get_or("degrade-precision", false)?,
        overload_threshold,
        overload_window: std::time::Duration::from_millis(
            args.get_or("overload-window-ms", 250u64)?,
        ),
        slow_query_ms: match args.get_or("slow-query-ms", 0u64)? {
            0 => None,
            ms => Some(ms),
        },
        metrics_addr: args.opt::<String>("metrics-addr")?,
        trace_ring: args.get_or("trace-ring", 32)?,
        partition,
    };
    let (n, d) = (x.len(), x.dim());
    let index = ServeIndex::build(x, trees, leaf, forest_seed);
    let server = Server::bind(cfg, index).map_err(|e| CliError(format!("bind: {e}")))?;
    let addr = server.local_addr().map_err(|e| CliError(e.to_string()))?;
    let targets: Vec<String> = server
        .batch_targets()
        .iter()
        .map(|(p, t)| format!("{p} m* = {t}"))
        .collect();
    // readiness banner on stderr — stdout stays reserved for the final
    // report (the command's return value)
    let part_note = partition
        .map(|p| {
            format!(
                " partition {}/{} replica {}/{} offset {} epoch {}",
                p.id, p.total, p.replica, p.replicas, p.offset, p.epoch
            )
        })
        .unwrap_or_default();
    eprintln!(
        "gsknn-serve: {n} x {d} index ({trees} trees, leaf {leaf}) listening on {addr} [{}]{part_note}",
        targets.join(", ")
    );
    let report = server.run();
    Ok(report.render_table())
}

/// `route`: scatter-gather front over partitioned `serve --partition i/N`
/// backends. Speaks the same wire protocol as a single server — clients
/// point at the router unchanged — and merges per-partition partials
/// into answers bit-identical to a single node holding the full
/// reference set. Blocks until `query-remote --op shutdown` or SIGTERM;
/// prints the final [`gsknn_router::RouterReport`] when it drains.
pub fn cmd_route(args: &ArgMap) -> Result<String, CliError> {
    use gsknn_router::{Router, RouterConfig};
    use std::time::Duration;

    let backends: Vec<String> = args
        .str_req("backends")?
        .split(',')
        .map(|b| b.trim().to_string())
        .filter(|b| !b.is_empty())
        .collect();
    if backends.is_empty() {
        return Err(CliError(
            "--backends expects a comma-separated list of host:port".to_string(),
        ));
    }
    let replicas: usize = args.get_or("replicas", 1usize)?;
    if replicas == 0 {
        return Err(CliError(
            "--replicas must be at least 1 (1 = unreplicated partitions)".to_string(),
        ));
    }
    if !backends.len().is_multiple_of(replicas) {
        return Err(CliError(format!(
            "{} backends do not divide into replica sets of {replicas} \
             (list backends partition-major: p0r0,p0r1,p1r0,p1r1,...)",
            backends.len()
        )));
    }
    let cfg = RouterConfig {
        addr: args.str_or("addr", "127.0.0.1:7980"),
        backends,
        replicas,
        // must match the backends' --partition-epoch (both default to 1)
        epoch: args.get_or("epoch", 1u64)?,
        backend_timeout: Duration::from_millis(args.get_or("backend-timeout-ms", 2000u64)?),
        hedge: args.get_or("hedge", true)?,
        connect_timeout: Duration::from_millis(args.get_or("connect-timeout-ms", 2000u64)?),
        probe_interval: Duration::from_millis(args.get_or("probe-ms", 250u64)?),
        metrics_addr: args.opt::<String>("metrics-addr")?,
        slow_query_ms: match args.get_or("slow-query-ms", 0u64)? {
            0 => None,
            ms => Some(ms),
        },
        trace_ring: args.get_or("trace-ring", 32)?,
    };
    let n_backends = cfg.backends.len();
    let backend_list = cfg.backends.join(", ");
    let n_partitions = n_backends / cfg.replicas;
    let replica_note = if cfg.replicas > 1 {
        format!(" ({n_partitions} partitions x {replicas} replicas)")
    } else {
        String::new()
    };
    let router = Router::bind(cfg).map_err(|e| CliError(format!("bind: {e}")))?;
    let addr = router.local_addr().map_err(|e| CliError(e.to_string()))?;
    // readiness banner on stderr — stdout stays reserved for the final
    // report (the command's return value)
    eprintln!(
        "gsknn-route: listening on {addr}, fan-out over {n_backends} backends{replica_note} [{backend_list}]"
    );
    let report = router.run();
    Ok(report.render_table())
}

/// Connect with retries so scripts can race the client against a server
/// that is still building its forest.
fn connect_retry(addr: &str, wait_ms: u64) -> Result<gsknn_serve::Client, CliError> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wait_ms);
    loop {
        match gsknn_serve::Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(CliError(format!("connect {addr}: {e}")));
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        }
    }
}

/// `query-remote`: talk to a running `serve` instance. `--op query`
/// (default) sends synthetic or CSV query points and summarizes the
/// outcomes; with `--expect-in F` (the server's dataset) it verifies the
/// answers against client-side brute force and enforces `--min-recall`.
/// `--op ping|stats|shutdown` are the operational probes.
pub fn cmd_query_remote(args: &ArgMap) -> Result<String, CliError> {
    let addr = args.str_req("addr")?;
    let mut client = connect_retry(&addr, args.get_or("connect-wait-ms", 5000)?)?;
    // socket-level bound on any single read/write (0 = wait forever)
    let timeout_ms: u64 = args.get_or("timeout-ms", 60_000)?;
    let io_timeout = (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms));
    client
        .set_io_timeout(io_timeout)
        .map_err(|e| CliError(e.to_string()))?;
    match args.str_or("op", "query").as_str() {
        "ping" => {
            client.ping().map_err(|e| CliError(e.to_string()))?;
            Ok("pong\n".to_string())
        }
        "stats" => {
            let json = client.stats().map_err(|e| CliError(e.to_string()))?;
            Ok(json + "\n")
        }
        "shutdown" => {
            client.shutdown().map_err(|e| CliError(e.to_string()))?;
            Ok("server draining\n".to_string())
        }
        "metrics" => {
            let text = client.metrics_text().map_err(|e| CliError(e.to_string()))?;
            Ok(text)
        }
        "traces" => {
            let json = client.traces_json().map_err(|e| CliError(e.to_string()))?;
            Ok(json + "\n")
        }
        "timeseries" => {
            let json = client
                .timeseries_json()
                .map_err(|e| CliError(e.to_string()))?;
            Ok(json + "\n")
        }
        "query" => {
            let queries = if args.opt::<String>("queries")?.is_some() {
                let path = PathBuf::from(args.str_req("queries")?);
                io::load_csv(&path).map_err(|e| CliError(format!("{}: {e}", path.display())))?
            } else {
                uniform(
                    args.get_or("m", 10)?,
                    args.get_or("d", 16)?,
                    args.get_or("seed", 12345)?,
                )
            };
            let expect = match args.opt::<String>("expect-in")? {
                Some(p) => {
                    let path = PathBuf::from(p);
                    Some(
                        io::load_csv(&path)
                            .map_err(|e| CliError(format!("{}: {e}", path.display())))?,
                    )
                }
                None => None,
            };
            match parse_precision(args)? {
                Precision::F64 => query_remote_run::<f64>(client, &queries, expect, args),
                Precision::F32 => query_remote_run::<f32>(client, &queries, expect, args),
            }
        }
        other => Err(CliError(format!(
            "unknown --op '{other}' (expected query, ping, stats, metrics, traces, \
             timeseries or shutdown)"
        ))),
    }
}

fn query_remote_run<T: FusedScalar>(
    mut client: gsknn_serve::Client,
    queries64: &PointSet,
    expect64: Option<PointSet>,
    args: &ArgMap,
) -> Result<String, CliError> {
    use gsknn_serve::Outcome;

    let k: usize = args.get_or("k", 8)?;
    let deadline_ms: u32 = args.get_or("deadline-ms", 250)?;
    let kind = parse_kind(&args.str_or("kind", "sq-l2"))?;
    let min_recall: f64 = args.get_or("min-recall", if expect64.is_some() { 1.0 } else { 0.0 })?;
    let retries: u32 = args.get_or("retries", 0)?;
    let policy = gsknn_serve::RetryPolicy {
        max_attempts: retries + 1,
        ..gsknn_serve::RetryPolicy::default()
    };
    let queries = queries64.cast::<T>();
    let expect = expect64.map(|x| x.cast::<T>());

    let (mut ok, mut degraded, mut busy, mut timed_out, mut rejected, mut failed) =
        (0usize, 0usize, 0usize, 0usize, 0usize, 0usize);
    let (mut hit, mut total) = (0usize, 0usize);
    let mut rtts: Vec<std::time::Duration> = Vec::with_capacity(queries.len());
    let t0 = std::time::Instant::now();
    for i in 0..queries.len() {
        let q = queries.point(i);
        let mut check_recall = |table: &knn_select::NeighborTable<T>| {
            if let Some(refs) = &expect {
                let mut cands: Vec<knn_select::Neighbor<T>> = (0..refs.len())
                    .map(|j| knn_select::Neighbor::new(kind.eval(q, refs.point(j)), j as u32))
                    .collect();
                cands.sort_unstable_by(knn_select::Neighbor::cmp_dist_idx);
                let want: Vec<u32> = cands[..k.min(cands.len())]
                    .iter()
                    .map(|nb| nb.idx)
                    .collect();
                let got: Vec<u32> = table.row(0).iter().map(|nb| nb.idx).collect();
                total += want.len();
                hit += got.iter().zip(&want).filter(|(g, w)| g == w).count();
            }
        };
        let reply = client
            .query_with_retry::<T>(q, 1, k, deadline_ms, &policy)
            .map_err(|e| CliError(format!("query {i}: {e}")))?;
        rtts.push(reply.rtt);
        match reply.outcome {
            Outcome::Neighbors(table) => {
                ok += 1;
                check_recall(&table);
            }
            Outcome::Degraded(table) => {
                eprintln!("query {i}: degraded answer (trace {:016x})", reply.trace_id);
                degraded += 1;
                check_recall(&table);
            }
            Outcome::DegradedPartial {
                table,
                contributed,
                total,
            } => {
                eprintln!(
                    "query {i}: degraded answer from {contributed}/{total} partitions \
                     (trace {:016x})",
                    reply.trace_id
                );
                degraded += 1;
                check_recall(&table);
            }
            Outcome::Partial { header, table } => {
                // a lone partition answered directly (bypassing the
                // router): its ids are already global, so score it like
                // a normal reply
                eprintln!(
                    "query {i}: raw partial from partition {} (epoch {})",
                    header.partition_id, header.epoch
                );
                ok += 1;
                check_recall(&table);
            }
            Outcome::Busy => busy += 1,
            Outcome::TimedOut => timed_out += 1,
            Outcome::ShuttingDown => rejected += 1,
            Outcome::Failed(msg) => {
                eprintln!(
                    "query {i} failed after retries (trace {:016x}): {msg}",
                    reply.trace_id
                );
                failed += 1;
            }
            Outcome::Rejected(msg) => {
                return Err(CliError(format!("query {i} rejected: {msg}")));
            }
        }
    }
    let dt = t0.elapsed();
    // status breakdown under the server-side histogram labels, so client
    // and server tallies line up one-to-one
    let breakdown = format!(
        "status breakdown: ok {ok}, ok_degraded {degraded}, busy {busy}, timeout {timed_out}, \
         shutting_down {rejected}, error {failed}"
    );
    let ok = ok + degraded;
    let mut out = format!(
        "{} queries ({}, k = {k}, {}) in {dt:.2?}: {ok} ok ({degraded} degraded), {busy} busy, {timed_out} timed out, {rejected} refused, {failed} failed\n",
        queries.len(),
        T::NAME,
        kind.name()
    );
    if !rtts.is_empty() {
        rtts.sort_unstable();
        let q = |f: f64| rtts[((rtts.len() - 1) as f64 * f).round() as usize];
        writeln!(
            out,
            "client rtt: p50 {:.2?}, p90 {:.2?}, p99 {:.2?}, p999 {:.2?}, max {:.2?}",
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999),
            rtts[rtts.len() - 1]
        )
        .unwrap();
    }
    writeln!(out, "{breakdown}").unwrap();
    if total > 0 {
        let recall = hit as f64 / total as f64;
        writeln!(out, "recall vs brute force: {recall:.3}").unwrap();
        if recall < min_recall {
            return Err(CliError(format!(
                "recall {recall:.3} below --min-recall {min_recall}\n{out}"
            )));
        }
    }
    // degraded answers (reduced precision, or a partial merge from a
    // router with a partition down) are typed successes, not failures
    if ok + degraded == 0 {
        return Err(CliError(format!("no query succeeded\n{out}")));
    }
    Ok(out)
}

/// `trace`: pull the slowest-request ring from a running `serve`
/// instance (or a router) as Chrome trace-event JSON (open in
/// `chrome://tracing` or <https://ui.perfetto.dev>). Validates the
/// export parses before writing it; with `--out F` the JSON lands in
/// the file and a summary goes to stdout, otherwise the JSON itself is
/// the output.
///
/// `--distributed true` treats the target as a router whose ring holds
/// stitched cross-tier traces: the summary then breaks each trace down
/// by lane (router timeline + one lane per backend attempt, hedged
/// siblings included). `--trace-id <hex>` fetches one specific stitched
/// trace by id via the `TraceFetch` wire op instead of the whole ring.
pub fn cmd_trace(args: &ArgMap) -> Result<String, CliError> {
    let addr = args.str_req("addr")?;
    let mut client = connect_retry(&addr, args.get_or("connect-wait-ms", 5000)?)?;
    let distributed: bool = args.get_or("distributed", false)?;
    let json = match args.opt::<String>("trace-id")? {
        Some(raw) => {
            let hex = raw.trim_start_matches("0x");
            let id = u64::from_str_radix(hex, 16)
                .map_err(|_| CliError(format!("--trace-id: cannot parse '{raw}' as hex")))?;
            let body = client
                .trace_fetch(id)
                .map_err(|e| CliError(e.to_string()))?;
            String::from_utf8(body).map_err(|_| {
                CliError(
                    "trace-fetch reply is not JSON — point --addr at a router \
                     (backends answer TraceFetch with a raw span annex)"
                        .into(),
                )
            })?
        }
        None => client.traces_json().map_err(|e| CliError(e.to_string()))?,
    };
    let doc: serde_json::Value = serde_json::from_str(&json)
        .map_err(|e| CliError(format!("server sent unparseable trace JSON: {e}")))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| CliError("trace JSON has no traceEvents array".into()))?;
    let spans = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    // one "M" metadata event per lane; the router lane (track 0) has
    // tid ≡ 1 (mod 256), so counting those counts traces
    let traces = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("tid").and_then(|t| t.as_u64()).map(|t| t % 256) == Some(1)
        })
        .count();
    let summary = if distributed {
        distributed_trace_summary(events)
    } else {
        String::new()
    };
    match args.opt::<String>("out")? {
        Some(path) => {
            let path = PathBuf::from(path);
            std::fs::write(&path, &json)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            Ok(format!(
                "{summary}wrote {} traces ({spans} spans) to {}\n",
                traces,
                path.display()
            ))
        }
        None if distributed => Ok(format!("{summary}{json}\n")),
        None => Ok(json + "\n"),
    }
}

/// Per-trace lane breakdown for stitched router traces: span count,
/// lane count, which backends contributed, and the wall-clock extent.
fn distributed_trace_summary(events: &[serde_json::Value]) -> String {
    use std::collections::{BTreeMap, BTreeSet};
    #[derive(Default)]
    struct TraceSum {
        spans: usize,
        lanes: BTreeSet<u64>,
        backends: BTreeSet<String>,
        lo_us: f64,
        hi_us: f64,
    }
    let mut by_id: BTreeMap<String, TraceSum> = BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let Some(id) = e
            .get("args")
            .and_then(|a| a.get("trace_id"))
            .and_then(|v| v.as_str())
        else {
            continue;
        };
        let tid = e.get("tid").and_then(|t| t.as_u64()).unwrap_or(0);
        let ts = e.get("ts").and_then(|t| t.as_f64()).unwrap_or(0.0);
        let dur = e.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0);
        let s = by_id.entry(id.to_string()).or_insert_with(|| TraceSum {
            lo_us: f64::INFINITY,
            ..Default::default()
        });
        s.spans += 1;
        s.lanes.insert(tid % 256);
        if tid % 256 != 1 {
            // backend-lane spans are named "b<backend>: <span>"
            if let Some(name) = e.get("name").and_then(|n| n.as_str()) {
                if let Some((prefix, _)) = name.split_once(": ") {
                    if prefix.starts_with('b') && prefix[1..].chars().all(|c| c.is_ascii_digit()) {
                        s.backends.insert(prefix.to_string());
                    }
                }
            }
        }
        s.lo_us = s.lo_us.min(ts);
        s.hi_us = s.hi_us.max(ts + dur);
    }
    let mut out = String::new();
    for (id, s) in &by_id {
        let backends: Vec<&str> = s.backends.iter().map(|b| b.as_str()).collect();
        writeln!(
            out,
            "trace {id}: {} spans across {} lanes (backends: {}), extent {:.2} ms",
            s.spans,
            s.lanes.len(),
            if backends.is_empty() {
                "none".to_string()
            } else {
                backends.join(", ")
            },
            (s.hi_us - s.lo_us) / 1e3
        )
        .unwrap();
    }
    out
}

/// `top`: live terminal view of a running server's per-second load
/// time-series (arrival rate, queue depth, batch sizes, flush reasons,
/// aggregate kernel-phase split). Polls the `TimeSeries` wire op every
/// `--interval-ms`; `--iters N` bounds the refresh count (default:
/// forever, or a single fetch when `--timeseries-out F` asks for a JSON
/// dump instead of a live view).
pub fn cmd_top(args: &ArgMap) -> Result<String, CliError> {
    let addr = args.str_req("addr")?;
    let mut client = connect_retry(&addr, args.get_or("connect-wait-ms", 5000)?)?;
    let interval_ms: u64 = args.get_or("interval-ms", 1000)?;
    let rows: usize = args.get_or("rows", 20)?;
    let ts_out = args.opt::<String>("timeseries-out")?;
    let iters: u64 = args.get_or("iters", if ts_out.is_some() { 1 } else { 0 })?;

    let mut frame;
    let mut raw;
    let mut i = 0u64;
    loop {
        raw = client
            .timeseries_json()
            .map_err(|e| CliError(e.to_string()))?;
        let doc: serde_json::Value = serde_json::from_str(&raw)
            .map_err(|e| CliError(format!("server sent unparseable time-series JSON: {e}")))?;
        let (enabled, window_s, samples) = gsknn_obs::parse_timeseries(&doc)
            .ok_or_else(|| CliError("time-series JSON is missing required fields".into()))?;
        if !enabled {
            return Err(CliError(
                "server was built without its obs feature; no time-series to show".into(),
            ));
        }
        frame = format!(
            "gsknn top — {addr} (window {window_s}s, {} live seconds)\n{}",
            samples.len(),
            gsknn_obs::render_top(&samples, rows)
        );
        i += 1;
        if iters != 0 && i >= iters {
            break;
        }
        // live view: repaint the terminal, then sleep out the interval
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    if let Some(path) = ts_out {
        let path = PathBuf::from(path);
        std::fs::write(&path, &raw).map_err(|e| CliError(format!("{}: {e}", path.display())))?;
        writeln!(frame, "\ntime-series dump written to {}", path.display()).unwrap();
    }
    Ok(frame)
}

/// One gated metric of a `bench-diff` comparison.
struct DiffMetric {
    name: String,
    baseline: Vec<f64>,
    candidate: f64,
    /// Whether a *decrease* is the regression direction (throughput-like
    /// metrics) as opposed to an increase (latency-like).
    down_bad: bool,
}

/// Median of an unsorted sample (mean of the middle pair when even).
fn median(vals: &[f64]) -> Option<f64> {
    if vals.is_empty() {
        return None;
    }
    let mut v = vals.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    })
}

/// Read a trajectory file's `runs` array; `Ok(None)` when the file does
/// not exist (that benchmark just isn't gated this time).
fn load_runs(path: &PathBuf) -> Result<Option<Vec<serde_json::Value>>, CliError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CliError(format!("{}: {e}", path.display()))),
    };
    let doc: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| CliError(format!("{}: not valid JSON: {e}", path.display())))?;
    let runs = doc
        .get("runs")
        .and_then(|v| v.as_array())
        .ok_or_else(|| CliError(format!("{}: no runs array", path.display())))?;
    Ok(Some(runs.clone()))
}

/// Split a trajectory into the newest run and its comparable priors:
/// same `--smoke` flag, and (when both carry one) the same `workload`.
fn candidate_and_priors(
    runs: &[serde_json::Value],
    smoke_ok: bool,
    label: &str,
) -> Result<Option<(serde_json::Value, Vec<serde_json::Value>)>, CliError> {
    let Some(cand) = runs.last() else {
        return Ok(None);
    };
    let cand_smoke = cand.get("smoke").and_then(|v| v.as_bool()).unwrap_or(false);
    if cand_smoke && !smoke_ok {
        return Err(CliError(format!(
            "{label}: newest run is a --smoke run; pass --smoke-ok true to gate on it"
        )));
    }
    let comparable = |r: &serde_json::Value| {
        r.get("smoke").and_then(|v| v.as_bool()).unwrap_or(false) == cand_smoke
            && match (r.get("workload"), cand.get("workload")) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    };
    let priors: Vec<serde_json::Value> = runs[..runs.len() - 1]
        .iter()
        .filter(|r| comparable(r))
        .cloned()
        .collect();
    Ok(Some((cand.clone(), priors)))
}

/// Pull the kernel trajectory's gated metrics: per-(shape × precision ×
/// kernel) GFLOPS, where a drop is the regression direction.
fn kernel_metrics(cand: &serde_json::Value, priors: &[serde_json::Value]) -> Vec<DiffMetric> {
    let row_key = |r: &serde_json::Value| {
        Some(format!(
            "m{} n{} d{} k{} {} {}",
            r.get("m")?.as_u64()?,
            r.get("n")?.as_u64()?,
            r.get("d")?.as_u64()?,
            r.get("k")?.as_u64()?,
            r.get("precision")?.as_str()?,
            r.get("kernel")?.as_str()?
        ))
    };
    let rows_of = |run: &serde_json::Value| -> Vec<(String, f64)> {
        run.get("rows")
            .and_then(|v| v.as_array())
            .map(|rows| {
                rows.iter()
                    .filter_map(|r| Some((row_key(r)?, r.get("gflops")?.as_f64()?)))
                    .collect()
            })
            .unwrap_or_default()
    };
    rows_of(cand)
        .into_iter()
        .map(|(key, gf)| DiffMetric {
            baseline: priors
                .iter()
                .flat_map(&rows_of)
                .filter(|(k, _)| *k == key)
                .map(|(_, v)| v)
                .collect(),
            name: format!("kernel gflops {key}"),
            candidate: gf,
            down_bad: true,
        })
        .collect()
}

/// Pull the serve trajectory's gated metrics: per-lane latency quantiles
/// (up bad) and throughput (down bad), plus the server's realized mean
/// batch size (down bad — a collapsing coalescer shows up here even when
/// closed-loop client latency improves). The batch-size gate only
/// baselines against runs with the same coalescing policy
/// (`server_cfg.adaptive_coalesce`): the adaptive policy flushes small
/// batches at low arrival rates *on purpose*, so its realized mean is
/// not comparable with the fixed deadline-half policy's.
fn serve_metrics(cand: &serde_json::Value, priors: &[serde_json::Value]) -> Vec<DiffMetric> {
    let mut out = Vec::new();
    let lane_val = |run: &serde_json::Value, precision: &str, field: &str| -> Option<f64> {
        run.get("lanes")?
            .as_array()?
            .iter()
            .find(|l| l.get("precision").and_then(|v| v.as_str()) == Some(precision))?
            .get(field)?
            .as_f64()
    };
    if let Some(lanes) = cand.get("lanes").and_then(|v| v.as_array()) {
        for lane in lanes {
            let Some(precision) = lane.get("precision").and_then(|v| v.as_str()) else {
                continue;
            };
            for (field, down_bad) in [("p50_us", false), ("p99_us", false), ("qps", true)] {
                let Some(val) = lane.get(field).and_then(|v| v.as_f64()) else {
                    continue;
                };
                out.push(DiffMetric {
                    name: format!("serve {precision} {field}"),
                    baseline: priors
                        .iter()
                        .filter_map(|r| lane_val(r, precision, field))
                        .collect(),
                    candidate: val,
                    down_bad,
                });
            }
        }
    }
    // Router-tier lanes, gated only against priors that also ran
    // `bench_serve --router`: the filter below yields an empty baseline
    // (a "no baseline" note, not a failure) for runs without one, so
    // turning the mode on doesn't trip the gate retroactively.
    let router_lane_val = |run: &serde_json::Value, precision: &str, field: &str| -> Option<f64> {
        run.get("router")?
            .get("lanes")?
            .as_array()?
            .iter()
            .find(|l| l.get("precision").and_then(|v| v.as_str()) == Some(precision))?
            .get(field)?
            .as_f64()
    };
    if let Some(lanes) = cand
        .get("router")
        .and_then(|r| r.get("lanes"))
        .and_then(|v| v.as_array())
    {
        for lane in lanes {
            let Some(precision) = lane.get("precision").and_then(|v| v.as_str()) else {
                continue;
            };
            for (field, down_bad) in [("p50_us", false), ("p99_us", false), ("qps", true)] {
                let Some(val) = lane.get(field).and_then(|v| v.as_f64()) else {
                    continue;
                };
                out.push(DiffMetric {
                    name: format!("router {precision} {field}"),
                    baseline: priors
                        .iter()
                        .filter_map(|r| router_lane_val(r, precision, field))
                        .collect(),
                    candidate: val,
                    down_bad,
                });
            }
        }
    }
    // Stage-attribution drift: the kernel's share of routed query time
    // shrinking is a regression even when p99 holds — it means the
    // overhead stages (network residual, backend queue/coalesce wait,
    // router merge) grew. The kernel share is gated rather than the
    // three overhead shares because it is the dominant term: relative
    // drift on a 1%-share stage is all noise, while the complement
    // moves only when attribution really shifted. Only present (and
    // only baselined) when the run's backends were built with `obs`.
    let stage_val = |run: &serde_json::Value| -> Option<f64> {
        run.get("router")?
            .get("attribution")?
            .get("kernel_pct")?
            .as_f64()
    };
    if let Some(val) = stage_val(cand).filter(|&v| v > 0.0) {
        out.push(DiffMetric {
            name: "router kernel_pct".to_string(),
            baseline: priors
                .iter()
                .filter_map(|r| stage_val(r))
                .filter(|&v| v > 0.0)
                .collect(),
            candidate: val,
            down_bad: true,
        });
    }
    let server_mean = |run: &serde_json::Value| -> Option<f64> {
        run.get("server")?.get("batch_m_mean")?.as_f64()
    };
    let coalesce_mode = |run: &serde_json::Value| -> bool {
        run.get("server_cfg")
            .and_then(|c| c.get("adaptive_coalesce"))
            .and_then(|v| v.as_bool())
            .unwrap_or(false)
    };
    if let Some(mean) = server_mean(cand) {
        out.push(DiffMetric {
            name: "serve batch_m_mean".to_string(),
            baseline: priors
                .iter()
                .filter(|r| coalesce_mode(r) == coalesce_mode(cand))
                .filter_map(server_mean)
                .collect(),
            candidate: mean,
            down_bad: true,
        });
    }
    out
}

/// `bench-diff`: the trajectory regression gate. Compares the newest
/// run of `BENCH_kernel.json` / `BENCH_serve.json` against a baseline
/// built from the comparable prior runs (`--baseline median` of them by
/// default, `prev` for just the previous run) and fails — nonzero exit —
/// when any gated metric regressed by more than `--threshold-pct`.
/// Metrics with no comparable baseline pass with a note, so the gate is
/// safe to wire into CI before a trajectory exists.
pub fn cmd_bench_diff(args: &ArgMap) -> Result<String, CliError> {
    let kernel_path = PathBuf::from(args.str_or("kernel", "BENCH_kernel.json"));
    let serve_path = PathBuf::from(args.str_or("serve", "BENCH_serve.json"));
    let threshold_pct: f64 = args.get_or("threshold-pct", 10.0)?;
    let smoke_ok: bool = args.get_or("smoke-ok", false)?;
    let baseline_mode = args.str_or("baseline", "median");
    if !matches!(baseline_mode.as_str(), "median" | "prev") {
        return Err(CliError(format!(
            "unknown --baseline '{baseline_mode}' (expected median or prev)"
        )));
    }
    if !threshold_pct.is_finite() || threshold_pct <= 0.0 {
        return Err(CliError(format!(
            "--threshold-pct must be positive, got {threshold_pct}"
        )));
    }

    let mut metrics: Vec<DiffMetric> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    let mut gated_files = 0usize;
    for (path, label, pull) in [
        (
            &kernel_path,
            "kernel",
            kernel_metrics as fn(&serde_json::Value, &[serde_json::Value]) -> Vec<DiffMetric>,
        ),
        (&serve_path, "serve", serve_metrics),
    ] {
        match load_runs(path)? {
            None => notes.push(format!("{label}: {} not found, skipped", path.display())),
            Some(runs) => match candidate_and_priors(&runs, smoke_ok, label)? {
                None => notes.push(format!("{label}: trajectory is empty, skipped")),
                Some((cand, priors)) => {
                    gated_files += 1;
                    if priors.is_empty() {
                        notes.push(format!("{label}: no comparable prior run, nothing gated"));
                    }
                    metrics.extend(pull(&cand, &priors));
                }
            },
        }
    }
    if gated_files == 0 {
        return Err(CliError(format!(
            "neither {} nor {} holds a trajectory",
            kernel_path.display(),
            serve_path.display()
        )));
    }

    let mut out = format!(
        "bench-diff: newest run vs {baseline_mode}-of-prior baseline, threshold {threshold_pct}%\n"
    );
    writeln!(
        out,
        "{:<44} {:>12} {:>12} {:>9}  verdict",
        "metric", "baseline", "candidate", "delta"
    )
    .unwrap();
    let mut breaches = 0usize;
    let mut compared = 0usize;
    for m in &metrics {
        let base = match baseline_mode.as_str() {
            "prev" => m.baseline.last().copied(),
            _ => median(&m.baseline),
        };
        let Some(base) = base else {
            writeln!(
                out,
                "{:<44} {:>12} {:>12.2} {:>9}  no baseline",
                m.name, "-", m.candidate, "-"
            )
            .unwrap();
            continue;
        };
        if base <= 0.0 {
            writeln!(
                out,
                "{:<44} {:>12.2} {:>12.2} {:>9}  zero baseline",
                m.name, base, m.candidate, "-"
            )
            .unwrap();
            continue;
        }
        compared += 1;
        let delta_pct = (m.candidate - base) / base * 100.0;
        let bad_pct = if m.down_bad { -delta_pct } else { delta_pct };
        let verdict = if bad_pct > threshold_pct {
            breaches += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        writeln!(
            out,
            "{:<44} {:>12.2} {:>12.2} {:>+8.1}%  {verdict}",
            m.name, base, m.candidate, delta_pct
        )
        .unwrap();
    }
    for n in &notes {
        writeln!(out, "note: {n}").unwrap();
    }
    writeln!(
        out,
        "{compared} metrics compared, {breaches} regression(s) past {threshold_pct}%"
    )
    .unwrap();
    if breaches > 0 {
        return Err(CliError(out));
    }
    Ok(out)
}

/// Top-level usage text.
pub fn usage() -> String {
    "gsknn-cli <command> [--flag value ...]\n\
     commands:\n\
     \x20 gen     --out F [--n 1000 --d 16 --dist uniform|gaussian --clusters 8 --seed 42]\n\
     \x20 knn     --in F [--k 8 --m 10 --kind sq-l2|l1|linf|cosine|l<p> --precision f64|f32]\n\
     \x20 allnn   --in F [--k 8 --leaf 1024 --iters 6 --kind ... --out TABLE\n\
     \x20                 --precision f64|f32 --lpt P]\n\
     \x20 query   --in F --queries F [--k 8 --trees 8 --leaf 512 --kind ...]\n\
     \x20 kmeans  --in F [--clusters 8 --iters 50 --tol 1e-6 --seed 193]\n\
     \x20 graph   --in F [--k 8 --sym none|union|mutual --leaf 512 --iters 6 --lpt P]\n\
     \x20 model   [--m 8192 --n 8192 --d 64 --k 16]\n\
     \x20 profile [--m 8192 --n 8192 --d 64 --k 16 --reps 3 --p 4 --tasks 8\n\
     \x20                 --precision f64|f32 --outdir bench_out]\n\
     \x20 stream  --in F --batch F [--k 8 --leaf 1024 --iters 4]\n\
     \x20 tune    (show detected caches + derived blocking parameters)\n\
     \x20 serve   [--in F | --n 2000 --d 16 --dist ... --seed 42]\n\
     \x20                 [--addr 127.0.0.1:7979 --trees 4 --leaf 512\n\
     \x20                 --shards 1 --pin-cores false --adaptive-coalesce false\n\
     \x20                 --queue-cap 1024 --frac 0.9 --max-batch 512 --k-max 128\n\
     \x20                 --degrade-precision true --overload-threshold 0.75\n\
     \x20                 --overload-window-ms 250 --slow-query-ms 0\n\
     \x20                 --metrics-addr H:P --trace-ring 32\n\
     \x20                 --partition i/N --replica r/R --partition-epoch 1]\n\
     \x20 route   --backends H:P,H:P,... [--addr 127.0.0.1:7980 --epoch 1\n\
     \x20                 --replicas 1 --backend-timeout-ms 2000 --hedge true\n\
     \x20                 --connect-timeout-ms 2000 --probe-ms 250\n\
     \x20                 --slow-query-ms 0 --metrics-addr H:P --trace-ring 32]\n\
     \x20                 (scatter-gather front over serve --partition backends;\n\
     \x20                 same wire protocol, so query-remote/trace/top work as-is;\n\
     \x20                 --replicas R reads the backend list partition-major,\n\
     \x20                 R consecutive addresses per partition)\n\
     \x20 query-remote --addr H:P [--op query|ping|stats|metrics|traces|timeseries|shutdown\n\
     \x20                 --precision f64|f32\n\
     \x20                 --m 10 --d 16 --k 8 --deadline-ms 250 --queries F\n\
     \x20                 --expect-in F --min-recall 1.0 --connect-wait-ms 5000\n\
     \x20                 --timeout-ms 60000 --retries 0]\n\
     \x20 trace   --addr H:P [--out F --distributed false --trace-id HEX\n\
     \x20                 --connect-wait-ms 5000]\n\
     \x20                 (slowest-request ring as Chrome trace-event JSON;\n\
     \x20                 --distributed true summarizes stitched router traces\n\
     \x20                 per backend lane, --trace-id fetches one by id)\n\
     \x20 top     --addr H:P [--interval-ms 1000 --iters N --rows 20\n\
     \x20                 --timeseries-out F --connect-wait-ms 5000]\n\
     \x20                 (live per-second load view; --timeseries-out dumps the JSON)\n\
     \x20 bench-diff [--kernel BENCH_kernel.json --serve BENCH_serve.json\n\
     \x20                 --threshold-pct 10 --baseline median|prev --smoke-ok true]\n\
     \x20                 (gate the newest bench run against the trajectory; nonzero\n\
     \x20                 exit when a metric regressed past the threshold)\n\
     flags:\n\
     \x20 --precision f64|f32   element type (f32 uses the 8-lane/16-lane\n\
     \x20                       single-precision micro-kernels)\n\
     \x20 --lpt P               schedule tree leaves on P workers with the\n\
     \x20                       model-guided LPT scheme (default: rayon)\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let p = std::env::temp_dir().join(format!("gsknn-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn argmap(s: &str) -> ArgMap {
        ArgMap::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn gen_then_knn_round_trip() {
        let dir = tmpdir();
        let f = dir.join("pts.csv");
        let msg = cmd_gen(&argmap(&format!("--n 200 --d 8 --out {}", f.display()))).unwrap();
        assert!(msg.contains("200 x 8"));
        let out = cmd_knn(&argmap(&format!("--in {} --k 3 --m 5", f.display()))).unwrap();
        // each of the first queries is its own nearest neighbor
        assert!(out.contains("0: 0(0.0000)"), "{out}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn gen_rejects_unknown_dist() {
        let e = cmd_gen(&argmap("--out /tmp/x.csv --dist banana")).unwrap_err();
        assert!(e.0.contains("banana"));
    }

    #[test]
    fn model_reports_all_three() {
        let out = cmd_model(&argmap("--d 16 --k 16")).unwrap();
        assert!(out.contains("Var#1") && out.contains("GEMM"));
        assert!(out.contains("switch at k"));
    }

    #[test]
    fn graph_and_kmeans_run_end_to_end() {
        let dir = tmpdir();
        let f = dir.join("blob.csv");
        cmd_gen(&argmap(&format!(
            "--n 300 --d 16 --dist gaussian --clusters 3 --out {}",
            f.display()
        )))
        .unwrap();
        let g = cmd_graph(&argmap(&format!(
            "--in {} --k 4 --iters 3 --leaf 64",
            f.display()
        )))
        .unwrap();
        assert!(g.contains("components"), "{g}");
        let km = cmd_kmeans(&argmap(&format!("--in {} --clusters 3", f.display()))).unwrap();
        assert!(km.contains("inertia"), "{km}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn stream_inserts_batch() {
        let dir = tmpdir();
        let base = dir.join("base.csv");
        let batch = dir.join("batch.csv");
        cmd_gen(&argmap(&format!("--n 150 --d 5 --out {}", base.display()))).unwrap();
        cmd_gen(&argmap(&format!(
            "--n 30 --d 5 --seed 7 --out {}",
            batch.display()
        )))
        .unwrap();
        let out = cmd_stream(&argmap(&format!(
            "--in {} --batch {} --k 3 --leaf 64",
            base.display(),
            batch.display()
        )))
        .unwrap();
        assert!(out.contains("table now covers 180 points"), "{out}");
        assert!(out.contains("30/30 new points"), "{out}");
        std::fs::remove_file(base).ok();
        std::fs::remove_file(batch).ok();
    }

    #[test]
    fn stream_rejects_dim_mismatch() {
        let dir = tmpdir();
        let base = dir.join("b5.csv");
        let batch = dir.join("b6.csv");
        cmd_gen(&argmap(&format!("--n 20 --d 5 --out {}", base.display()))).unwrap();
        cmd_gen(&argmap(&format!("--n 5 --d 6 --out {}", batch.display()))).unwrap();
        let err = cmd_stream(&argmap(&format!(
            "--in {} --batch {}",
            base.display(),
            batch.display()
        )))
        .unwrap_err();
        assert!(err.0.contains("dimension mismatch"));
        std::fs::remove_file(base).ok();
        std::fs::remove_file(batch).ok();
    }

    #[test]
    fn profile_reports_and_writes_json() {
        let dir = tmpdir().join("profout");
        let out = cmd_profile(&argmap(&format!(
            "--m 96 --n 256 --d 16 --k 8 --reps 1 --p 2 --tasks 4 --outdir {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("profile: m=96 n=256 d=16 k=8 f64"), "{out}");
        assert!(out.contains("variant: model picks"), "{out}");
        assert!(out.contains("makespan: predicted"), "{out}");
        let path = dir.join("profile_m96_n256_d16_k8_f64.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = serde_json::from_str(&text).unwrap();
        assert!(doc.get("profile").and_then(|p| p.get("m")).is_some());
        assert!(doc
            .get("scheduler")
            .and_then(|s| s.get("workers"))
            .is_some());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn knn_precision_f32_finds_self() {
        let dir = tmpdir();
        let f = dir.join("pts32.csv");
        cmd_gen(&argmap(&format!("--n 150 --d 8 --out {}", f.display()))).unwrap();
        let out = cmd_knn(&argmap(&format!(
            "--in {} --k 3 --m 5 --precision f32",
            f.display()
        )))
        .unwrap();
        assert!(out.contains("(sq-l2, f32)"), "{out}");
        assert!(out.contains("0: 0(0.0000)"), "{out}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn allnn_precision_f32_with_lpt_writes_table() {
        let dir = tmpdir();
        let f = dir.join("allnn32.csv");
        let table = dir.join("table32.txt");
        cmd_gen(&argmap(&format!("--n 200 --d 6 --out {}", f.display()))).unwrap();
        let out = cmd_allnn(&argmap(&format!(
            "--in {} --k 4 --leaf 64 --iters 3 --precision f32 --lpt 2 --out {}",
            f.display(),
            table.display()
        )))
        .unwrap();
        assert!(out.contains("all-4-NN (f32) of 200 points"), "{out}");
        let text = std::fs::read_to_string(&table).unwrap();
        assert_eq!(text.lines().count(), 200);
        std::fs::remove_file(f).ok();
        std::fs::remove_file(table).ok();
    }

    #[test]
    fn profile_precision_f32_writes_tagged_json() {
        let dir = tmpdir().join("profout32");
        let out = cmd_profile(&argmap(&format!(
            "--m 96 --n 256 --d 16 --k 8 --reps 1 --p 2 --tasks 4 --precision f32 --outdir {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("profile: m=96 n=256 d=16 k=8 f32"), "{out}");
        let text = std::fs::read_to_string(dir.join("profile_m96_n256_d16_k8_f32.json")).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            doc.get("profile")
                .and_then(|p| p.get("precision"))
                .and_then(|v| v.as_str()),
            Some("f32")
        );
        std::fs::remove_dir_all(dir).ok();
    }

    /// The fault registry is process-global and the in-process servers
    /// below answer deadline-bounded queries; run the tests that spin
    /// one up serially so a concurrently configured fault plan (or plain
    /// CPU contention from a neighboring server's client threads) cannot
    /// leak into another test's latency and flush behavior.
    static SERVE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn serve_and_query_remote_round_trip() {
        let _serial = SERVE_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = tmpdir();
        let f = dir.join("serve_refs.csv");
        // cmd_gen with --n 300 --d 8 --seed 1 writes exactly uniform(300, 8, 1),
        // so the in-process server below and --expect-in see the same table.
        cmd_gen(&argmap(&format!(
            "--n 300 --d 8 --seed 1 --out {}",
            f.display()
        )))
        .unwrap();
        // exact setup: one tree, leaf covers everything
        let index = gsknn_serve::ServeIndex::build(uniform(300, 8, 1), 1, 300, 7);
        let server =
            gsknn_serve::Server::bind(gsknn_serve::ServerConfig::default(), index).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());

        for precision in ["f64", "f32"] {
            let out = cmd_query_remote(&argmap(&format!(
                "--addr {addr} --m 12 --d 8 --k 5 --seed 99 --precision {precision} \
                 --expect-in {} --min-recall 1.0",
                f.display()
            )))
            .unwrap();
            assert!(out.contains("12 ok"), "{out}");
            assert!(out.contains("recall vs brute force: 1.000"), "{out}");
        }
        let pong = cmd_query_remote(&argmap(&format!("--addr {addr} --op ping"))).unwrap();
        assert_eq!(pong, "pong\n");
        let stats = cmd_query_remote(&argmap(&format!("--addr {addr} --op stats"))).unwrap();
        assert!(stats.contains("\"queries\""), "{stats}");
        cmd_query_remote(&argmap(&format!("--addr {addr} --op shutdown"))).unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.queries, 24);
        std::fs::remove_file(f).ok();
    }

    /// One synthetic serve-trajectory run: fixed lane metrics, variable
    /// coalescer outcome.
    fn serve_run(batches: u64, queries: u64) -> serde_json::Value {
        serde_json::json!({
            "unix_time": 0,
            "smoke": false,
            "workload": {"n_refs": 500, "d": 8, "k": 4, "deadline_ms": 50,
                         "clients": 4, "per_client": 10},
            "lanes": [
                {"precision": "f64", "queries": 40, "ok": 40,
                 "p50_us": 1000.0, "p99_us": 2000.0, "qps": 100.0},
            ],
            "server": {
                "queries": queries,
                "batches": batches,
                "batch_m_mean": queries as f64 / batches as f64,
                "flushes": {"model": 0, "deadline": batches, "drain": 0},
                "coalesce_ratio": 0.0,
                "roofline": [],
            },
        })
    }

    fn write_trajectory(path: &std::path::Path, benchmark: &str, runs: Vec<serde_json::Value>) {
        let doc = serde_json::json!({
            "benchmark": benchmark, "metric": "test fixture",
            "runs": (serde_json::Value::Array(runs)),
        });
        std::fs::write(path, doc.to_string()).unwrap();
    }

    #[test]
    fn bench_diff_passes_identical_runs_and_trips_on_degradation() {
        let dir = tmpdir().join("benchdiff");
        std::fs::create_dir_all(&dir).unwrap();
        let kernel = dir.join("BENCH_kernel.json");
        let serve = dir.join("BENCH_serve.json");
        let kernel_run = |gflops: f64| {
            serde_json::json!({
                "unix_time": 0, "smoke": false, "reps": 3,
                "rows": [
                    {"m": 256, "n": 256, "d": 16, "k": 8, "precision": "f64",
                     "kernel": "fused", "seconds": 0.001, "gflops": gflops},
                ],
            })
        };
        // identical back-to-back runs: the gate must pass
        write_trajectory(&kernel, "kernel", vec![kernel_run(10.0), kernel_run(10.0)]);
        write_trajectory(&serve, "serve", vec![serve_run(10, 40), serve_run(10, 40)]);
        let flags = format!(
            "--kernel {} --serve {} --threshold-pct 25",
            kernel.display(),
            serve.display()
        );
        let out = cmd_bench_diff(&argmap(&flags)).unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");
        assert!(
            out.contains("kernel gflops m256 n256 d16 k8 f64 fused"),
            "{out}"
        );
        assert!(out.contains("serve batch_m_mean"), "{out}");

        // a collapsed coalescer (batch_m_mean 4.0 -> 1.0) must trip it
        write_trajectory(
            &serve,
            "serve",
            vec![serve_run(10, 40), serve_run(10, 40), serve_run(40, 40)],
        );
        let err = cmd_bench_diff(&argmap(&flags)).unwrap_err();
        assert!(err.0.contains("REGRESSED"), "{}", err.0);
        assert!(err.0.contains("serve batch_m_mean"), "{}", err.0);

        // a kernel GFLOPS drop past the threshold trips it too
        write_trajectory(&serve, "serve", vec![serve_run(10, 40), serve_run(10, 40)]);
        write_trajectory(
            &kernel,
            "kernel",
            vec![kernel_run(10.0), kernel_run(10.0), kernel_run(5.0)],
        );
        let err = cmd_bench_diff(&argmap(&flags)).unwrap_err();
        assert!(err.0.contains("REGRESSED"), "{}", err.0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bench_diff_first_run_has_no_baseline_and_passes() {
        let dir = tmpdir().join("benchdiff_first");
        std::fs::create_dir_all(&dir).unwrap();
        let serve = dir.join("BENCH_serve.json");
        write_trajectory(&serve, "serve", vec![serve_run(10, 40)]);
        let out = cmd_bench_diff(&argmap(&format!(
            "--kernel {} --serve {}",
            dir.join("missing.json").display(),
            serve.display()
        )))
        .unwrap();
        assert!(out.contains("no comparable prior run"), "{out}");
        assert!(out.contains("no baseline"), "{out}");
        assert!(out.contains("0 regression(s)"), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bench_diff_refuses_smoke_candidate_without_opt_in() {
        let dir = tmpdir().join("benchdiff_smoke");
        std::fs::create_dir_all(&dir).unwrap();
        let serve = dir.join("BENCH_serve.json");
        let mut smoke_run = serve_run(10, 40);
        if let serde_json::Value::Object(members) = &mut smoke_run {
            for (k, v) in members.iter_mut() {
                if k == "smoke" {
                    *v = serde_json::Value::from(true);
                }
            }
        }
        write_trajectory(&serve, "serve", vec![smoke_run.clone(), smoke_run]);
        let flags = format!(
            "--kernel {} --serve {}",
            dir.join("missing.json").display(),
            serve.display()
        );
        let err = cmd_bench_diff(&argmap(&flags)).unwrap_err();
        assert!(err.0.contains("--smoke-ok"), "{}", err.0);
        let out = cmd_bench_diff(&argmap(&format!("{flags} --smoke-ok true"))).unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn top_renders_timeseries_and_dumps_json() {
        let _serial = SERVE_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = tmpdir();
        let dump = dir.join("timeseries.json");
        let index = gsknn_serve::ServeIndex::build(uniform(300, 8, 1), 1, 300, 7);
        let server =
            gsknn_serve::Server::bind(gsknn_serve::ServerConfig::default(), index).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        // put some load through so the sampler has a live second
        cmd_query_remote(&argmap(&format!("--addr {addr} --m 6 --d 8 --k 3"))).unwrap();

        let raw = cmd_query_remote(&argmap(&format!("--addr {addr} --op timeseries"))).unwrap();
        assert!(raw.contains("\"timeseries\""), "{raw}");

        let out = cmd_top(&argmap(&format!(
            "--addr {addr} --iters 1 --timeseries-out {}",
            dump.display()
        )))
        .unwrap();
        assert!(out.contains("gsknn top"), "{out}");
        assert!(out.contains("t(s)"), "{out}");
        let text = std::fs::read_to_string(&dump).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let (enabled, window_s, samples) = gsknn_obs::parse_timeseries(&doc).unwrap();
        assert!(enabled);
        assert_eq!(window_s, gsknn_serve::WINDOW_S);
        let arrivals: u64 = samples.iter().map(|s| s.arrivals).sum();
        assert!(arrivals >= 1, "sampler saw the queries: {samples:?}");

        cmd_query_remote(&argmap(&format!("--addr {addr} --op shutdown"))).unwrap();
        handle.join().unwrap();
        std::fs::remove_file(dump).ok();
    }

    /// End-to-end trajectory gate against a *really* degraded coalescer:
    /// two clean workload runs agree, then a third with the CoalesceFlush
    /// fault forced on collapses the realized batch size and bench-diff
    /// trips. Runs the same in-process workload three times, building
    /// each trajectory point from the drained server's final report.
    #[cfg(feature = "faults")]
    #[test]
    fn bench_diff_trips_on_fault_degraded_coalescer() {
        let _serial = SERVE_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fn workload_run() -> serde_json::Value {
            let index = gsknn_serve::ServeIndex::build(uniform(500, 8, 3), 2, 256, 7);
            let server =
                gsknn_serve::Server::bind(gsknn_serve::ServerConfig::default(), index).unwrap();
            let addr = server.local_addr().unwrap();
            let handle = std::thread::spawn(move || server.run());
            let qs = uniform(64, 8, 9);
            std::thread::scope(|s| {
                for c in 0..4usize {
                    let qs = &qs;
                    s.spawn(move || {
                        let mut client = gsknn_serve::Client::connect(addr).unwrap();
                        for i in 0..10 {
                            let q = qs.point((c * 10 + i) % qs.len());
                            client.query::<f64>(q, 1, 4, 50).unwrap();
                        }
                    });
                }
            });
            gsknn_serve::Client::connect(addr)
                .and_then(|mut c| c.shutdown())
                .unwrap();
            let report = handle.join().unwrap();
            serve_run(report.batches.max(1), report.queries)
        }

        let dir = tmpdir().join("benchdiff_faults");
        std::fs::create_dir_all(&dir).unwrap();
        let serve = dir.join("BENCH_serve.json");
        let flags = format!(
            "--kernel {} --serve {} --threshold-pct 25",
            dir.join("missing.json").display(),
            serve.display()
        );

        gsknn_faults::clear();
        let clean_a = workload_run();
        let clean_b = workload_run();
        write_trajectory(&serve, "serve", vec![clean_a.clone(), clean_b.clone()]);
        let out = cmd_bench_diff(&argmap(&flags)).unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");

        // force every coalesce wait to flush immediately: batches of ~1
        gsknn_faults::configure(gsknn_faults::FaultPlan::new(7).with(
            gsknn_faults::FaultPoint::CoalesceFlush,
            gsknn_faults::Mode::Always,
        ));
        let degraded = workload_run();
        gsknn_faults::clear();
        write_trajectory(&serve, "serve", vec![clean_a, clean_b, degraded]);
        let err = cmd_bench_diff(&argmap(&flags)).unwrap_err();
        assert!(err.0.contains("REGRESSED"), "{}", err.0);
        assert!(err.0.contains("serve batch_m_mean"), "{}", err.0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn query_remote_reports_unreachable_server() {
        // a port nobody listens on; short wait keeps the test fast
        let e = cmd_query_remote(&argmap("--addr 127.0.0.1:1 --op ping --connect-wait-ms 50"))
            .unwrap_err();
        assert!(e.0.contains("connect"), "{}", e.0);
    }

    #[test]
    fn precision_flag_rejects_unknown_value() {
        let dir = tmpdir();
        let f = dir.join("prec.csv");
        cmd_gen(&argmap(&format!("--n 20 --d 4 --out {}", f.display()))).unwrap();
        let e = cmd_knn(&argmap(&format!("--in {} --precision f16", f.display()))).unwrap_err();
        assert!(e.0.contains("f16"), "{}", e.0);
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn serve_rejects_misconfigured_partition_args() {
        // every misconfiguration must be a typed CLI error *before* an
        // index is built, not a server that poisons merges
        assert!(parse_slot_spec("partition", "2/2")
            .unwrap_err()
            .0
            .contains("i < N"));
        assert!(parse_slot_spec("partition", "0/0")
            .unwrap_err()
            .0
            .contains("i < N"));
        assert!(parse_slot_spec("partition", "x/2")
            .unwrap_err()
            .0
            .contains("expects i/N"));
        assert!(parse_slot_spec("replica", "3/2")
            .unwrap_err()
            .0
            .contains("--replica"));
        // epoch 0 is reserved — the router would reject every partial
        let e = cmd_serve(&argmap(
            "--n 64 --d 4 --partition 0/2 --partition-epoch 0 --addr 127.0.0.1:0",
        ))
        .unwrap_err();
        assert!(e.0.contains("epoch"), "{}", e.0);
        // --replica without --partition is a shape error, typed
        let e = cmd_serve(&argmap("--n 64 --d 4 --replica 0/2 --addr 127.0.0.1:0")).unwrap_err();
        assert!(e.0.contains("--partition"), "{}", e.0);
    }

    #[test]
    fn route_rejects_ragged_replica_sets() {
        let e = cmd_route(&argmap(
            "--backends 127.0.0.1:1,127.0.0.1:2,127.0.0.1:3 --replicas 2 --addr 127.0.0.1:0",
        ))
        .unwrap_err();
        assert!(e.0.contains("replica sets"), "{}", e.0);
        let e = cmd_route(&argmap(
            "--backends 127.0.0.1:1 --replicas 0 --addr 127.0.0.1:0",
        ))
        .unwrap_err();
        assert!(e.0.contains("--replicas"), "{}", e.0);
    }

    #[test]
    fn query_out_of_sample() {
        let dir = tmpdir();
        let refs = dir.join("refs.csv");
        let qs = dir.join("qs.csv");
        cmd_gen(&argmap(&format!("--n 300 --d 6 --out {}", refs.display()))).unwrap();
        cmd_gen(&argmap(&format!(
            "--n 5 --d 6 --seed 9 --out {}",
            qs.display()
        )))
        .unwrap();
        let out = cmd_query(&argmap(&format!(
            "--in {} --queries {} --k 3 --trees 4 --leaf 64",
            refs.display(),
            qs.display()
        )))
        .unwrap();
        assert!(out.contains("q0:"), "{out}");
        std::fs::remove_file(refs).ok();
        std::fs::remove_file(qs).ok();
    }
}
