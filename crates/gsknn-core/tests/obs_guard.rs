//! Overhead guard for the observability layer: the instrumented hot path
//! must cost nothing when the `obs` feature is off, and near-nothing per
//! span when it is on.
//!
//! A compile-time feature cannot be A/B-tested inside one binary, so the
//! guard is two-pronged:
//!
//! 1. structural — without `obs`, `PhaseSet` is a ZST and records
//!    nothing, so the probe argument passed through the whole nest adds
//!    no state and `PhaseSet::time` reduces to a direct call;
//! 2. behavioral — timing `PhaseSet::time(p, work)` against bare `work`
//!    shows the wrapper within noise of the raw call (generous 2x median
//!    bound: disabled it is literally the same code after inlining, and
//!    enabled the ~2 TSC reads are two orders of magnitude below the
//!    workload).

use gsknn_core::{DistanceKind, Gsknn, GsknnConfig, Phase, PhaseSet};
use std::hint::black_box;
use std::time::Instant;

#[cfg(not(feature = "obs"))]
#[test]
fn phaseset_is_zero_sized_without_obs() {
    assert_eq!(std::mem::size_of::<PhaseSet>(), 0);
    let mut ps = PhaseSet::new();
    let v = ps.time(Phase::RankDc, || 7);
    assert_eq!(v, 7);
    assert_eq!(ps.count(Phase::RankDc), 0);
    assert_eq!(ps.total_seconds(), 0.0);
    assert!(!gsknn_core::obs::enabled());
}

#[cfg(not(feature = "obs"))]
#[test]
fn kernel_records_no_phases_without_obs() {
    let x = dataset::uniform(300, 12, 3);
    let q: Vec<usize> = (0..64).collect();
    let r: Vec<usize> = (0..300).collect();
    let mut exec = Gsknn::new(GsknnConfig::default());
    let _ = exec.run(&x, &q, &r, 8, DistanceKind::SqL2);
    let ph = exec.last_phases();
    for p in Phase::ALL {
        assert_eq!(ph.count(p), 0, "{} recorded a span without obs", p.name());
        assert_eq!(ph.seconds(p), 0.0);
    }
}

#[cfg(feature = "obs")]
#[test]
fn kernel_records_phases_with_obs() {
    assert!(gsknn_core::obs::enabled());
    let x = dataset::uniform(300, 12, 3);
    let q: Vec<usize> = (0..64).collect();
    let r: Vec<usize> = (0..300).collect();
    let mut exec = Gsknn::new(GsknnConfig::default());
    let t0 = Instant::now();
    let _ = exec.run(&x, &q, &r, 8, DistanceKind::SqL2);
    let wall = t0.elapsed().as_secs_f64();
    let ph = exec.last_phases();
    for p in [Phase::PackR, Phase::PackQ, Phase::RankDc, Phase::Writeback] {
        assert!(ph.count(p) > 0, "{} recorded no spans", p.name());
        assert!(ph.seconds(p) > 0.0, "{} attributed no time", p.name());
    }
    // the serial phase breakdown accounts for at most the wall time
    // (generous 3x slack: debug builds + timer granularity)
    assert!(
        ph.total_seconds() <= wall * 3.0 + 1e-3,
        "phase total {} vs wall {}",
        ph.total_seconds(),
        wall
    );
}

fn median_of(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The µs-scale workload a probe wraps in the real nest (a tile pass is
/// ~thousands of flops).
fn workload() -> u64 {
    let mut acc = 0u64;
    for i in 0..20_000u64 {
        acc = acc.wrapping_add(black_box(i).wrapping_mul(2654435761));
    }
    acc
}

#[test]
fn probe_wrapper_is_within_noise_of_raw_call() {
    let mut ps = PhaseSet::new();
    // warm up (first obs-enabled span pays one-time TSC calibration)
    for _ in 0..5 {
        black_box(workload());
        ps.time(Phase::RankDc, || black_box(workload()));
    }
    let reps = 31;
    let mut raw = Vec::with_capacity(reps);
    let mut wrapped = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(workload());
        raw.push(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        black_box(ps.time(Phase::RankDc, || black_box(workload())));
        wrapped.push(t1.elapsed().as_secs_f64());
    }
    let (raw_med, wrapped_med) = (median_of(raw), median_of(wrapped));
    // Generous bound: scheduler noise dwarfs any real difference. With
    // obs off the two paths are identical code; with obs on the probe
    // adds ~2 TSC reads (~50 ns) to a ~50 µs workload.
    assert!(
        wrapped_med <= raw_med * 2.0 + 5e-6,
        "instrumented path {wrapped_med}s vs raw {raw_med}s"
    );
}
