//! Kernel configuration: blocking parameters (shared with the GEMM
//! substrate) and the selection-placement variant of §2.3.

pub use gemm_kernel::GemmParams;

/// Where in the six-loop nest the heap selection is performed (§2.3).
///
/// The paper defines Var#1..Var#6 by the loop whose end hosts the
/// selection. Var#4 (after the 4th loop) is *not viable* — the 5th loop
/// blocks the `d` dimension, so distances are incomplete there — and is
/// therefore not representable here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Selection inside the micro-kernel, per `MR×NR` tile, while the tile
    /// is register/L1-hot. No distance write-back when `d ≤ dc`. The best
    /// choice for small `k`.
    Var1,
    /// Selection after the 2nd loop: one `mc×NR` strip of final distances
    /// is buffered, then selected.
    Var2,
    /// Selection after the 3rd loop: the full `mc×nc` macro-tile is
    /// buffered, then selected.
    Var3,
    /// Selection after the 5th loop: `m×nc` distances buffered per `jc`
    /// block (bounded memory, but heaps reload `n/nc` times).
    Var5,
    /// Selection after the 6th loop: the classical decomposition — the
    /// whole `m×n` distance matrix is stored, then selected. The best
    /// choice for large `k`.
    Var6,
    /// Let the performance model pick between Var#1 and Var#6 from
    /// `(d, k)` (§2.6 "Switching between variants").
    Auto,
}

impl Variant {
    /// All concrete (non-auto) variants, in paper order.
    pub const ALL: [Variant; 5] = [
        Variant::Var1,
        Variant::Var2,
        Variant::Var3,
        Variant::Var5,
        Variant::Var6,
    ];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Var1 => "Var#1",
            Variant::Var2 => "Var#2",
            Variant::Var3 => "Var#3",
            Variant::Var5 => "Var#5",
            Variant::Var6 => "Var#6",
            Variant::Auto => "Auto",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_paper_style() {
        assert_eq!(Variant::Var1.name(), "Var#1");
        assert_eq!(Variant::Auto.name(), "Auto");
        assert_eq!(Variant::ALL.len(), 5);
    }
}
