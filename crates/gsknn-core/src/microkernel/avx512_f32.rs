//! AVX-512F specializations of the fused micro-kernel for `f32`.
//!
//! Mirrors the f64 rewrite in [`super::avx512`]: the 8×8 tile is
//! processed as **four 512-bit accumulators, each holding two adjacent
//! 8-wide tile rows** — 4 FMAs per `p` step over 16 lanes each. Only
//! AVX-512F intrinsics are used (no DQ/BW): 256-bit half extraction and
//! insertion go through the `f64x4` casts, the 8-lane B-row duplication
//! through `shuffle_f32x4`, and |x| through an integer sign-mask AND.
//!
//! Register layout per step `p`:
//!
//! ```text
//! bb   = [ b0..b7 | b0..b7 ]            (shuffle_f32x4 self-dup)
//! aj   = [ a(2j) ×8 | a(2j+1) ×8 ]      (permutexvar of a pair)
//! accj = fma(aj, bb, accj)               j = 0..4
//! ```

#![cfg(target_arch = "x86_64")]

use super::PassMode;
use dataset::DistanceKind;
use gsknn_scalar::GsknnScalar;
use std::arch::x86_64::*;

const MR: usize = <f32 as GsknnScalar>::MR;
const NR: usize = <f32 as GsknnScalar>::NR;

/// Vectorized f32 tile pass; contract identical to [`super::tile_pass`].
///
/// # Safety
/// Caller must guarantee AVX-512F support (via
/// [`super::avx512::available`]) and the slice-length preconditions of
/// `tile_pass`.
pub unsafe fn tile_pass_avx512_f32(
    kind: DistanceKind,
    dcb: usize,
    ap: &[f32],
    bp: &[f32],
    q2: &[f32],
    r2: &[f32],
    mode: PassMode<'_, f32>,
) {
    match kind {
        DistanceKind::SqL2 => sq_l2(dcb, ap, bp, q2, r2, mode),
        DistanceKind::L1 => l1(dcb, ap, bp, mode),
        DistanceKind::LInf => linf(dcb, ap, bp, mode),
        DistanceKind::Cosine => cosine(dcb, ap, bp, q2, r2, mode),
        DistanceKind::Lp(_) => unreachable!("general p has no AVX-512 path"),
    }
}

/// |x| on 16 f32 lanes via integer sign-mask AND (plain AVX-512F; the
/// dedicated `abs` form would pull in DQ on some toolchains).
#[inline(always)]
unsafe fn abs_ps16(x: __m512) -> __m512 {
    let mask = _mm512_set1_epi32(0x7fff_ffff);
    _mm512_castsi512_ps(_mm512_and_si512(_mm512_castps_si512(x), mask))
}

/// The lane-pair spread `[a ×8 | b ×8]` from lanes 0/1 of `v`.
#[inline(always)]
unsafe fn spread_pair(v: __m512) -> __m512 {
    let idx = _mm512_set_epi32(1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0);
    _mm512_permutexvar_ps(idx, v)
}

/// Load two adjacent f32 lanes into lanes 0/1 of a zmm (one 64-bit load).
#[inline(always)]
unsafe fn load_pair(ptr: *const f32) -> __m512 {
    _mm512_castps128_ps512(_mm_castsi128_ps(_mm_loadl_epi64(ptr as *const __m128i)))
}

/// Duplicate an 8-lane row into both 256-bit halves of a zmm.
#[inline(always)]
unsafe fn dup_row(v: __m256) -> __m512 {
    let w = _mm512_castps256_ps512(v);
    // 128-bit block selector [0,1,0,1]: low half repeated
    _mm512_shuffle_f32x4(w, w, 0b0100_0100)
}

/// Extract the high 256-bit half without AVX-512DQ (`extractf32x8`):
/// round-trip through the F-only `f64x4` extract.
#[inline(always)]
unsafe fn hi_half(v: __m512) -> __m256 {
    _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(v), 1))
}

/// Load two tile rows (`i = 2j`, `2j+1`) from a strided buffer into one
/// zmm: two 256-bit loads glued with the F-only `f64x4` insert.
#[inline(always)]
unsafe fn load_row_pair(base: *const f32, ldcc: usize, j: usize) -> __m512 {
    let lo = _mm256_castps_pd(_mm256_loadu_ps(base.add(2 * j * ldcc)));
    let hi = _mm256_castps_pd(_mm256_loadu_ps(base.add((2 * j + 1) * ldcc)));
    _mm512_castpd_ps(_mm512_insertf64x4(_mm512_castpd256_pd512(lo), hi, 1))
}

/// Store one zmm as two strided tile rows.
#[inline(always)]
unsafe fn store_row_pair(base: *mut f32, ldcc: usize, j: usize, v: __m512) {
    _mm256_storeu_ps(base.add(2 * j * ldcc), _mm512_castps512_ps256(v));
    _mm256_storeu_ps(base.add((2 * j + 1) * ldcc), hi_half(v));
}

macro_rules! rank_update_512 {
    ($dcb:ident, $ap:ident, $bp:ident, $acc:ident, |$a:ident, $b:ident, $acc_j:ident| $body:expr) => {
        for p in 0..$dcb {
            let b8 = _mm256_loadu_ps($bp.as_ptr().add(p * NR));
            let $b = dup_row(b8);
            let a_row = $ap.as_ptr().add(p * MR);
            for j in 0..MR / 2 {
                // lanes 0..2 hold a(2j), a(2j+1); spread to halves
                let $a = spread_pair(load_pair(a_row.add(2 * j)));
                let $acc_j = $acc[j];
                $acc[j] = $body;
            }
        }
    };
}

macro_rules! finish_512 {
    ($acc:ident, $mode:ident, $combine:ident, |$acc_j:ident, $j:ident| $final_expr:expr) => {
        match $mode {
            PassMode::Partial { cc, ldcc, first } => {
                let base = cc.as_mut_ptr();
                for $j in 0..MR / 2 {
                    let v = if first {
                        $acc[$j]
                    } else {
                        $combine(load_row_pair(base, ldcc, $j), $acc[$j])
                    };
                    store_row_pair(base, ldcc, $j, v);
                }
            }
            PassMode::Last { prior, out } => {
                if let Some((cc, ldcc)) = prior {
                    let base = cc.as_ptr();
                    for $j in 0..MR / 2 {
                        $acc[$j] = $combine(load_row_pair(base, ldcc, $j), $acc[$j]);
                    }
                }
                for $j in 0..MR / 2 {
                    let $acc_j = $acc[$j];
                    let v = $final_expr;
                    // two tile rows are contiguous: one 512-bit store
                    _mm512_storeu_ps(out.as_mut_ptr().add(2 * $j * NR), v);
                }
            }
        }
    };
}

#[inline(always)]
unsafe fn vadd16(a: __m512, b: __m512) -> __m512 {
    _mm512_add_ps(a, b)
}

#[inline(always)]
unsafe fn vmax16(a: __m512, b: __m512) -> __m512 {
    _mm512_max_ps(a, b)
}

#[target_feature(enable = "avx512f,fma")]
unsafe fn sq_l2(
    dcb: usize,
    ap: &[f32],
    bp: &[f32],
    q2: &[f32],
    r2: &[f32],
    mode: PassMode<'_, f32>,
) {
    let mut acc = [_mm512_setzero_ps(); MR / 2];
    rank_update_512!(dcb, ap, bp, acc, |a, b, acc_j| _mm512_fmadd_ps(a, b, acc_j));
    let r2v = dup_row(_mm256_loadu_ps(r2.as_ptr()));
    let two = _mm512_set1_ps(2.0);
    let zero = _mm512_setzero_ps();
    finish_512!(acc, mode, vadd16, |acc_j, j| {
        // q2 pair spread across the two row-halves, + r2, − 2·acc, clamp
        let sum = _mm512_add_ps(spread_pair(load_pair(q2.as_ptr().add(2 * j))), r2v);
        _mm512_max_ps(_mm512_fnmadd_ps(two, acc_j, sum), zero)
    });
}

#[target_feature(enable = "avx512f,fma")]
unsafe fn cosine(
    dcb: usize,
    ap: &[f32],
    bp: &[f32],
    q2: &[f32],
    r2: &[f32],
    mode: PassMode<'_, f32>,
) {
    let mut acc = [_mm512_setzero_ps(); MR / 2];
    rank_update_512!(dcb, ap, bp, acc, |a, b, acc_j| _mm512_fmadd_ps(a, b, acc_j));
    let r2v = dup_row(_mm256_loadu_ps(r2.as_ptr()));
    let one = _mm512_set1_ps(1.0);
    let zero = _mm512_setzero_ps();
    finish_512!(acc, mode, vadd16, |acc_j, j| {
        let q2p = spread_pair(load_pair(q2.as_ptr().add(2 * j)));
        let denom = _mm512_sqrt_ps(_mm512_mul_ps(q2p, r2v));
        let cosd = _mm512_sub_ps(one, _mm512_div_ps(acc_j, denom));
        let ok = _mm512_cmp_ps_mask(denom, zero, _CMP_GT_OQ);
        _mm512_mask_blend_ps(ok, one, cosd)
    });
}

#[target_feature(enable = "avx512f,fma")]
unsafe fn l1(dcb: usize, ap: &[f32], bp: &[f32], mode: PassMode<'_, f32>) {
    let mut acc = [_mm512_setzero_ps(); MR / 2];
    rank_update_512!(dcb, ap, bp, acc, |a, b, acc_j| _mm512_add_ps(
        acc_j,
        abs_ps16(_mm512_sub_ps(a, b))
    ));
    finish_512!(acc, mode, vadd16, |acc_j, _j| acc_j);
}

#[target_feature(enable = "avx512f,fma")]
unsafe fn linf(dcb: usize, ap: &[f32], bp: &[f32], mode: PassMode<'_, f32>) {
    let mut acc = [_mm512_setzero_ps(); MR / 2];
    rank_update_512!(dcb, ap, bp, acc, |a, b, acc_j| _mm512_max_ps(
        acc_j,
        abs_ps16(_mm512_sub_ps(a, b))
    ));
    finish_512!(acc, mode, vmax16, |acc_j, _j| acc_j);
}
