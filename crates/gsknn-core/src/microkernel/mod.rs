//! The fused micro-kernel (§2.4): a rank-`dcb` update producing an
//! `MR×NR` tile of distances, with the square-distance epilogue folded in
//! (Algorithm 2.3). Two pass modes support `d > dc`:
//!
//! * [`PassMode::Partial`] — not the last `d`-block: fold this block's
//!   partial accumulation into the `Cc` buffer tile (the paper's rank-dc
//!   accumulation, the `Tm^Cc` traffic of Table 4);
//! * [`PassMode::Last`] — the last `d`-block: combine with any prior
//!   partials, apply the norm's finalization (`‖q‖² + ‖r‖² − 2·qᵀr` for
//!   squared ℓ2, clamped at 0 against rounding), and emit final distances
//!   into a stack tile that the caller consumes immediately (Var#1) or
//!   copies into its distance buffer (buffered variants).
//!
//! The ℓp-norm generalization (§2.4 "General ℓp norm") replaces the FMA
//! with subtract/abs/add (ℓ1), subtract/abs/max (ℓ∞), or a scalar `powf`
//! loop (general p, the paper's VPOW note). AVX2+FMA specializations are
//! provided for squared-ℓ2, ℓ1 and ℓ∞; general p falls back to scalar.
//!
//! Everything is generic over the element type through [`FusedScalar`]:
//! `f64` runs the paper's 8×4 tile (4 `f64` lanes per 256-bit register),
//! `f32` an 8×8 tile (8 lanes) — same loop nest, twice the flops per
//! instruction. Each implementor owns its SIMD dispatch and its
//! vectorized row filter.

mod avx2;
mod avx2_f32;
mod avx512;
mod avx512_f32;

use dataset::DistanceKind;
pub use gemm_kernel::{MR, NR};
use gsknn_scalar::{GsknnScalar, MAX_TILE};

#[cfg(target_arch = "x86_64")]
pub use avx2::{available as avx2_available, row_filter_mask};
#[cfg(target_arch = "x86_64")]
pub use avx512::available as avx512_available;

/// Which SIMD implementation of the micro-kernel to run. [`SimdLevel::Auto`]
/// (the default) picks the widest supported path; the explicit levels
/// exist for the ISA-ablation benches and for debugging. A requested
/// level that the CPU does not support silently degrades to the next
/// narrower one — results are identical across levels by construction
/// (verified by tests), only speed differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loops (also the `Lp(p)` and fringe path).
    Scalar,
    /// 256-bit AVX2+FMA kernels.
    Avx2,
    /// 512-bit AVX-512F kernels (two tile rows per register).
    Avx512,
    /// Widest supported (the default).
    Auto,
}

use std::sync::atomic::{AtomicU8, Ordering};

static FORCED_LEVEL: AtomicU8 = AtomicU8::new(3); // Auto

/// Force a SIMD level process-wide (benchmarks/ablations). `Auto` resets.
pub fn set_simd_level(level: SimdLevel) {
    let v = match level {
        SimdLevel::Scalar => 0,
        SimdLevel::Avx2 => 1,
        SimdLevel::Avx512 => 2,
        SimdLevel::Auto => 3,
    };
    FORCED_LEVEL.store(v, Ordering::Relaxed);
}

/// The currently forced SIMD level.
pub fn simd_level() -> SimdLevel {
    match FORCED_LEVEL.load(Ordering::Relaxed) {
        0 => SimdLevel::Scalar,
        1 => SimdLevel::Avx2,
        2 => SimdLevel::Avx512,
        _ => SimdLevel::Auto,
    }
}

/// One `MR×NR` f64 distance tile, row-major (`i*NR + j`). Generic code
/// sizes its stack tile by [`gsknn_scalar::MAX_TILE`] instead.
pub type Tile = [f64; MR * NR];

/// What to do with this `d`-block's accumulation (see module docs).
pub enum PassMode<'a, T: GsknnScalar = f64> {
    /// Fold into the strided `Cc` tile at `cc[i*ldcc + j]`; `first` resets
    /// instead of combining.
    Partial {
        /// Tile origin inside the `Cc` buffer.
        cc: &'a mut [T],
        /// Row stride of `Cc` in elements.
        ldcc: usize,
        /// `true` on the first `d`-block (overwrite, don't combine).
        first: bool,
    },
    /// Produce final distances into `out`; `prior` is the `Cc` tile of the
    /// earlier passes (`None` when `d ≤ dc`).
    Last {
        /// Prior partial tile and its row stride.
        prior: Option<(&'a [T], usize)>,
        /// Destination for the finalized distances (`≥ MR·NR` elements,
        /// row-major with stride `NR`).
        out: &'a mut [T],
    },
}

/// Precision-specific entry points of the fused kernel. Implemented for
/// `f64` (the paper's 8×4 tile) and `f32` (8×8); each implementor owns
/// its SIMD dispatch, honoring the process-wide [`SimdLevel`].
pub trait FusedScalar: GsknnScalar {
    /// One fused micro-kernel pass; see [`tile_pass`] for the contract.
    fn fused_tile_pass(
        kind: DistanceKind,
        dcb: usize,
        ap: &[Self],
        bp: &[Self],
        q2: &[Self],
        r2: &[Self],
        mode: PassMode<'_, Self>,
    );

    /// `true` when [`FusedScalar::row_filter_mask`] may be called.
    fn row_filter_available() -> bool;

    /// Vectorized pruning filter (§2.4 "Heap selection"): broadcast the
    /// heap root and compare one tile row against it; bit `j` of the
    /// result is set iff `row[j] <= threshold` (`<=` not `<`: equal
    /// distances may still win the index tie-break). 0 ⇒ discard the row
    /// without touching the heap.
    ///
    /// # Safety
    /// Requires [`FusedScalar::row_filter_available`] and
    /// `row.len() >= Self::NR`.
    unsafe fn row_filter_mask(row: &[Self], threshold: Self) -> u32;
}

/// Run one micro-kernel pass.
///
/// `ap`/`bp` are packed panels (`dcb*MR` / `dcb*NR`, Z-shape, `bp` rows
/// 32-byte aligned); `q2`/`r2` are the gathered squared norms for this
/// tile (used only by [`DistanceKind::SqL2`] / [`DistanceKind::Cosine`]).
pub fn tile_pass<T: FusedScalar>(
    kind: DistanceKind,
    dcb: usize,
    ap: &[T],
    bp: &[T],
    q2: &[T],
    r2: &[T],
    mode: PassMode<'_, T>,
) {
    debug_assert!(ap.len() >= dcb * T::MR);
    debug_assert!(bp.len() >= dcb * T::NR);
    debug_assert!(q2.len() >= T::MR && r2.len() >= T::NR);
    T::fused_tile_pass(kind, dcb, ap, bp, q2, r2, mode)
}

impl FusedScalar for f64 {
    fn fused_tile_pass(
        kind: DistanceKind,
        dcb: usize,
        ap: &[f64],
        bp: &[f64],
        q2: &[f64],
        r2: &[f64],
        mode: PassMode<'_, f64>,
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            let vectorizable = !matches!(kind, DistanceKind::Lp(_));
            let forced = simd_level();
            // `Auto` prefers AVX2: the `simd_ablation` harness measures the
            // AVX-512 kernel a few percent *slower* on the Xeons we target
            // (permute overhead in the two-rows-per-register layout plus
            // 512-bit license downclocking). Force `Avx512` to use it anyway.
            let use_512 = vectorizable && avx512::available() && forced == SimdLevel::Avx512;
            if use_512 {
                // SAFETY: AVX-512F checked; slice lengths checked by tile_pass.
                unsafe { avx512::tile_pass_avx512(kind, dcb, ap, bp, q2, r2, mode) };
                return;
            }
            let use_256 = vectorizable
                && avx2::available()
                && matches!(forced, SimdLevel::Auto | SimdLevel::Avx2);
            if use_256 {
                // SAFETY: AVX2+FMA checked; slice lengths checked by tile_pass.
                unsafe { avx2::tile_pass_avx2(kind, dcb, ap, bp, q2, r2, mode) };
                return;
            }
        }
        scalar_dispatch(kind, dcb, ap, bp, q2, r2, mode)
    }

    #[inline]
    fn row_filter_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            avx2::available()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    #[inline]
    unsafe fn row_filter_mask(row: &[f64], threshold: f64) -> u32 {
        #[cfg(target_arch = "x86_64")]
        {
            avx2::row_filter_mask(row, threshold)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (row, threshold);
            unreachable!("row filter is x86-only")
        }
    }
}

impl FusedScalar for f32 {
    fn fused_tile_pass(
        kind: DistanceKind,
        dcb: usize,
        ap: &[f32],
        bp: &[f32],
        q2: &[f32],
        r2: &[f32],
        mode: PassMode<'_, f32>,
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            let vectorizable = !matches!(kind, DistanceKind::Lp(_));
            let forced = simd_level();
            // Same policy as f64: Auto prefers the 256-bit kernel; the
            // 512-bit one (16 lanes, two 8-wide tile rows per register)
            // must be opted into via `SimdLevel::Avx512`.
            let use_512 = vectorizable && avx512::available() && forced == SimdLevel::Avx512;
            if use_512 {
                // SAFETY: AVX-512F checked; slice lengths checked by tile_pass.
                unsafe { avx512_f32::tile_pass_avx512_f32(kind, dcb, ap, bp, q2, r2, mode) };
                return;
            }
            let use_256 = vectorizable
                && avx2::available()
                && matches!(forced, SimdLevel::Auto | SimdLevel::Avx2);
            if use_256 {
                // SAFETY: AVX2+FMA checked; slice lengths checked by tile_pass.
                unsafe { avx2_f32::tile_pass_avx2_f32(kind, dcb, ap, bp, q2, r2, mode) };
                return;
            }
        }
        scalar_dispatch(kind, dcb, ap, bp, q2, r2, mode)
    }

    #[inline]
    fn row_filter_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            avx2::available()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    #[inline]
    unsafe fn row_filter_mask(row: &[f32], threshold: f32) -> u32 {
        #[cfg(target_arch = "x86_64")]
        {
            avx2_f32::row_filter_mask_f32(row, threshold)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (row, threshold);
            unreachable!("row filter is x86-only")
        }
    }
}

/// Per-norm scalar operations; one zero-sized (or p-carrying) type per
/// norm keeps the inner loop monomorphized. Generic over the element
/// type — the same five implementations serve both precisions.
pub(crate) trait NormOps<T: GsknnScalar> {
    /// Fold one coordinate pair into the accumulator (identity `T::ZERO`).
    fn accum(&self, acc: T, q: T, r: T) -> T;
    /// Combine partial accumulations from two `d`-blocks.
    fn combine(&self, a: T, b: T) -> T {
        a + b
    }
    /// Turn the accumulator into the final distance.
    fn finalize(&self, acc: T, q2: T, r2: T) -> T;
}

pub(crate) struct SqL2Ops;
impl<T: GsknnScalar> NormOps<T> for SqL2Ops {
    #[inline(always)]
    fn accum(&self, acc: T, q: T, r: T) -> T {
        acc + q * r
    }
    #[inline(always)]
    fn finalize(&self, acc: T, q2: T, r2: T) -> T {
        // Eq. (1): ‖q−r‖² = ‖q‖² + ‖r‖² − 2·qᵀr; clamp the ~1 ulp
        // negatives the expansion can produce for near-identical points.
        (q2 + r2 - (T::ONE + T::ONE) * acc).max(T::ZERO)
    }
}

pub(crate) struct L1Ops;
impl<T: GsknnScalar> NormOps<T> for L1Ops {
    #[inline(always)]
    fn accum(&self, acc: T, q: T, r: T) -> T {
        acc + (q - r).abs()
    }
    #[inline(always)]
    fn finalize(&self, acc: T, _q2: T, _r2: T) -> T {
        acc
    }
}

pub(crate) struct LInfOps;
impl<T: GsknnScalar> NormOps<T> for LInfOps {
    #[inline(always)]
    fn accum(&self, acc: T, q: T, r: T) -> T {
        acc.max((q - r).abs())
    }
    #[inline(always)]
    fn combine(&self, a: T, b: T) -> T {
        a.max(b)
    }
    #[inline(always)]
    fn finalize(&self, acc: T, _q2: T, _r2: T) -> T {
        acc
    }
}

pub(crate) struct LpOps(pub f64);
impl<T: GsknnScalar> NormOps<T> for LpOps {
    #[inline(always)]
    fn accum(&self, acc: T, q: T, r: T) -> T {
        acc + (q - r).abs().powf(T::from_f64(self.0))
    }
    #[inline(always)]
    fn finalize(&self, acc: T, _q2: T, _r2: T) -> T {
        acc
    }
}

pub(crate) struct CosineOps;
impl<T: GsknnScalar> NormOps<T> for CosineOps {
    #[inline(always)]
    fn accum(&self, acc: T, q: T, r: T) -> T {
        acc + q * r // same rank-update as squared-ℓ2: the inner product
    }
    #[inline(always)]
    fn finalize(&self, acc: T, q2: T, r2: T) -> T {
        let denom = (q2 * r2).sqrt();
        if denom > T::ZERO {
            T::ONE - acc / denom
        } else {
            T::ONE // zero-norm operand: "uncorrelated", never NaN
        }
    }
}

/// Route a distance kind to its scalar [`NormOps`] implementation.
fn scalar_dispatch<T: GsknnScalar>(
    kind: DistanceKind,
    dcb: usize,
    ap: &[T],
    bp: &[T],
    q2: &[T],
    r2: &[T],
    mode: PassMode<'_, T>,
) {
    match kind {
        DistanceKind::SqL2 => tile_pass_scalar(&SqL2Ops, dcb, ap, bp, q2, r2, mode),
        DistanceKind::L1 => tile_pass_scalar(&L1Ops, dcb, ap, bp, q2, r2, mode),
        DistanceKind::LInf => tile_pass_scalar(&LInfOps, dcb, ap, bp, q2, r2, mode),
        DistanceKind::Lp(p) => tile_pass_scalar(&LpOps(p), dcb, ap, bp, q2, r2, mode),
        DistanceKind::Cosine => tile_pass_scalar(&CosineOps, dcb, ap, bp, q2, r2, mode),
    }
}

fn tile_pass_scalar<T: GsknnScalar, N: NormOps<T>>(
    norm: &N,
    dcb: usize,
    ap: &[T],
    bp: &[T],
    q2: &[T],
    r2: &[T],
    mode: PassMode<'_, T>,
) {
    let (mr, nr) = (T::MR, T::NR);
    let mut acc = [T::ZERO; MAX_TILE];
    for p in 0..dcb {
        let a = &ap[p * mr..p * mr + mr];
        let b = &bp[p * nr..p * nr + nr];
        for i in 0..mr {
            for j in 0..nr {
                acc[i * nr + j] = norm.accum(acc[i * nr + j], a[i], b[j]);
            }
        }
    }
    match mode {
        PassMode::Partial { cc, ldcc, first } => {
            for i in 0..mr {
                for j in 0..nr {
                    let slot = &mut cc[i * ldcc + j];
                    *slot = if first {
                        acc[i * nr + j]
                    } else {
                        norm.combine(*slot, acc[i * nr + j])
                    };
                }
            }
        }
        PassMode::Last { prior, out } => {
            if let Some((cc, ldcc)) = prior {
                for i in 0..mr {
                    for j in 0..nr {
                        acc[i * nr + j] = norm.combine(cc[i * ldcc + j], acc[i * nr + j]);
                    }
                }
            }
            for i in 0..mr {
                for j in 0..nr {
                    out[i * nr + j] = norm.finalize(acc[i * nr + j], q2[i], r2[j]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{dist_l1, dist_linf, dist_lp, dist_sq_l2, uniform, PointSet};

    /// Pack MR query points and NR reference points (depth d) and compare
    /// tile distances against the scalar metric functions.
    fn check_norm_t<T: FusedScalar>(kind: DistanceKind, d: usize, tol: f64) {
        let (mr, nr) = (T::MR, T::NR);
        let x: PointSet<T> = uniform(mr + nr, d, 7).cast();
        let q_idx: Vec<usize> = (0..mr).collect();
        let r_idx: Vec<usize> = (mr..mr + nr).collect();
        let mut ap = vec![T::ZERO; mr * d];
        let mut bp = vec![T::ZERO; nr * d];
        crate::packing::pack_q_panel(&x, &q_idx, 0, mr, 0, d, &mut ap);
        crate::packing::pack_r_panel(&x, &r_idx, 0, nr, 0, d, &mut bp);
        let q2: Vec<T> = q_idx.iter().map(|&i| x.sqnorm(i)).collect();
        let r2: Vec<T> = r_idx.iter().map(|&j| x.sqnorm(j)).collect();

        // single pass
        let mut out = [T::ZERO; MAX_TILE];
        tile_pass(
            kind,
            d,
            &ap,
            &bp,
            &q2,
            &r2,
            PassMode::Last {
                prior: None,
                out: &mut out,
            },
        );
        for i in 0..mr {
            for j in 0..nr {
                let want = kind.eval(x.point(q_idx[i]), x.point(r_idx[j])).to_f64();
                let got = out[i * nr + j].to_f64();
                assert!(
                    (got - want).abs() <= tol * (1.0 + want.abs()),
                    "{} {} single-pass ({i},{j}): {got} vs {want}",
                    T::NAME,
                    kind.name()
                );
            }
        }

        // split into two passes through a strided Cc tile
        if d >= 2 {
            let d1 = d / 2;
            let d2 = d - d1;
            let mut ap1 = vec![T::ZERO; mr * d1];
            let mut bp1 = vec![T::ZERO; nr * d1];
            let mut ap2 = vec![T::ZERO; mr * d2];
            let mut bp2 = vec![T::ZERO; nr * d2];
            crate::packing::pack_q_panel(&x, &q_idx, 0, mr, 0, d1, &mut ap1);
            crate::packing::pack_r_panel(&x, &r_idx, 0, nr, 0, d1, &mut bp1);
            crate::packing::pack_q_panel(&x, &q_idx, 0, mr, d1, d2, &mut ap2);
            crate::packing::pack_r_panel(&x, &r_idx, 0, nr, d1, d2, &mut bp2);
            let ldcc = nr + 5; // deliberately non-trivial stride
            let mut cc = vec![T::NAN; mr * ldcc];
            tile_pass(
                kind,
                d1,
                &ap1,
                &bp1,
                &q2,
                &r2,
                PassMode::Partial {
                    cc: &mut cc,
                    ldcc,
                    first: true,
                },
            );
            let mut out2 = [T::ZERO; MAX_TILE];
            tile_pass(
                kind,
                d2,
                &ap2,
                &bp2,
                &q2,
                &r2,
                PassMode::Last {
                    prior: Some((&cc, ldcc)),
                    out: &mut out2,
                },
            );
            for (a, b) in out[..mr * nr].iter().zip(&out2[..mr * nr]) {
                let (a, b) = (a.to_f64(), b.to_f64());
                assert!(
                    (a - b).abs() <= tol * (1.0 + a.abs()),
                    "{} {} two-pass mismatch: {a} vs {b}",
                    T::NAME,
                    kind.name()
                );
            }
        }
    }

    fn check_norm(kind: DistanceKind, d: usize, tol: f64) {
        check_norm_t::<f64>(kind, d, tol)
    }

    #[test]
    fn sq_l2_matches_metric() {
        for d in [1, 2, 7, 16, 33] {
            check_norm(DistanceKind::SqL2, d, 1e-9);
        }
    }

    #[test]
    fn l1_matches_metric() {
        for d in [1, 5, 24] {
            check_norm(DistanceKind::L1, d, 1e-12);
        }
    }

    #[test]
    fn linf_matches_metric() {
        for d in [1, 5, 24] {
            check_norm(DistanceKind::LInf, d, 1e-12);
        }
    }

    #[test]
    fn lp3_matches_metric() {
        check_norm(DistanceKind::Lp(3.0), 12, 1e-12);
    }

    #[test]
    fn cosine_matches_metric() {
        for d in [1, 2, 7, 16, 33] {
            check_norm(DistanceKind::Cosine, d, 1e-9);
        }
    }

    #[test]
    fn f32_norms_match_metric() {
        // the 8×8 f32 tile against the f32 scalar metrics; SIMD FMA
        // contraction admits a few ulps beyond the scalar reference
        for d in [1, 2, 7, 16, 33] {
            check_norm_t::<f32>(DistanceKind::SqL2, d, 2e-4);
            check_norm_t::<f32>(DistanceKind::Cosine, d, 1e-4);
        }
        for d in [1, 5, 24] {
            check_norm_t::<f32>(DistanceKind::L1, d, 1e-5);
            check_norm_t::<f32>(DistanceKind::LInf, d, 1e-5);
        }
        check_norm_t::<f32>(DistanceKind::Lp(3.0), 12, 1e-4);
    }

    fn simd_levels_agree_for<T: FusedScalar>(tol: f64) {
        let d = 37;
        let (mr, nr) = (T::MR, T::NR);
        let x: PointSet<T> = uniform(mr + nr, d, 21).cast();
        let q_idx: Vec<usize> = (0..mr).collect();
        let r_idx: Vec<usize> = (mr..mr + nr).collect();
        let mut ap = vec![T::ZERO; mr * d];
        let mut bp = vec![T::ZERO; nr * d];
        crate::packing::pack_q_panel(&x, &q_idx, 0, mr, 0, d, &mut ap);
        crate::packing::pack_r_panel(&x, &r_idx, 0, nr, 0, d, &mut bp);
        let q2: Vec<T> = q_idx.iter().map(|&i| x.sqnorm(i)).collect();
        let r2: Vec<T> = r_idx.iter().map(|&j| x.sqnorm(j)).collect();

        for kind in [
            DistanceKind::SqL2,
            DistanceKind::L1,
            DistanceKind::LInf,
            DistanceKind::Cosine,
        ] {
            let run = |level: SimdLevel| {
                set_simd_level(level);
                let mut out = [T::ZERO; MAX_TILE];
                tile_pass(
                    kind,
                    d,
                    &ap,
                    &bp,
                    &q2,
                    &r2,
                    PassMode::Last {
                        prior: None,
                        out: &mut out,
                    },
                );
                set_simd_level(SimdLevel::Auto);
                out
            };
            let scalar = run(SimdLevel::Scalar);
            for level in [SimdLevel::Avx2, SimdLevel::Avx512, SimdLevel::Auto] {
                let got = run(level);
                for (a, b) in scalar[..mr * nr].iter().zip(&got[..mr * nr]) {
                    let (a, b) = (a.to_f64(), b.to_f64());
                    assert!(
                        (a - b).abs() <= tol * (1.0 + a.abs()),
                        "{} {} {level:?}: {a} vs {b}",
                        T::NAME,
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn all_simd_levels_agree() {
        // scalar / AVX2 / AVX-512 (whichever are supported) must produce
        // matching tiles on every vectorizable norm, in both precisions.
        // (The only test that touches the global level, so it cannot race
        // with other tests in the binary.)
        set_simd_level(SimdLevel::Scalar);
        assert_eq!(simd_level(), SimdLevel::Scalar);
        set_simd_level(SimdLevel::Auto);
        assert_eq!(simd_level(), SimdLevel::Auto);

        simd_levels_agree_for::<f64>(1e-10);
        // f32: SIMD FMA keeps the product unrounded, the scalar path
        // rounds twice — a few f32 ulps of drift is expected
        simd_levels_agree_for::<f32>(5e-6);
    }

    #[test]
    fn lp_fractional_matches_metric() {
        check_norm(DistanceKind::Lp(0.5), 9, 1e-12);
    }

    fn self_distance_clamps_for<T: FusedScalar>(tol: f64) {
        let (mr, nr) = (T::MR, T::NR);
        let x: PointSet<T> = uniform(mr.max(nr), 13, 9).cast();
        let idx: Vec<usize> = (0..mr.max(nr)).collect();
        let mut ap = vec![T::ZERO; mr * 13];
        let mut bp = vec![T::ZERO; nr * 13];
        crate::packing::pack_q_panel(&x, &idx, 0, mr, 0, 13, &mut ap);
        crate::packing::pack_r_panel(&x, &idx, 0, nr, 0, 13, &mut bp);
        let q2: Vec<T> = (0..mr).map(|i| x.sqnorm(idx[i])).collect();
        let r2: Vec<T> = (0..nr).map(|j| x.sqnorm(idx[j])).collect();
        let mut out = [T::ZERO; MAX_TILE];
        tile_pass(
            DistanceKind::SqL2,
            13,
            &ap,
            &bp,
            &q2,
            &r2,
            PassMode::Last {
                prior: None,
                out: &mut out,
            },
        );
        for i in 0..mr.min(nr) {
            let v = out[i * nr + i].to_f64();
            assert!(v >= 0.0, "{}: negative self-distance {v}", T::NAME);
            assert!(v < tol, "{}: self-distance too large {v}", T::NAME);
        }
    }

    #[test]
    fn sq_l2_self_distance_clamps_to_zero() {
        // q == r: expansion may round negative; tile must clamp to >= 0.
        self_distance_clamps_for::<f64>(1e-9);
        self_distance_clamps_for::<f32>(1e-3);
    }

    #[test]
    fn f32_row_filter_matches_f64_semantics() {
        if !<f32 as FusedScalar>::row_filter_available() {
            return;
        }
        let row = [1.0f32, 5.0, 3.0, 3.0, 0.5, 9.0, 3.0, 2.0];
        // SAFETY: availability checked; row has NR_F32 = 8 elements.
        let m = unsafe { <f32 as FusedScalar>::row_filter_mask(&row, 3.0) };
        assert_eq!(m, 0b1101_1101);
        let none = unsafe { <f32 as FusedScalar>::row_filter_mask(&row, 0.25) };
        assert_eq!(none, 0);
    }

    #[test]
    fn metric_functions_agree_with_tile_oracle() {
        // belt-and-braces: the four scalar metrics behave as expected on a
        // hand-computed pair
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(dist_sq_l2(&a, &b), 25.0);
        assert_eq!(dist_l1(&a, &b), 7.0);
        assert_eq!(dist_linf(&a, &b), 4.0);
        assert!((dist_lp(&a, &b, 2.0) - 25.0).abs() < 1e-12);
    }
}
