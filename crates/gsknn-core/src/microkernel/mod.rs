//! The fused micro-kernel (§2.4): a rank-`dcb` update producing an
//! `MR×NR` tile of distances, with the square-distance epilogue folded in
//! (Algorithm 2.3). Two pass modes support `d > dc`:
//!
//! * [`PassMode::Partial`] — not the last `d`-block: fold this block's
//!   partial accumulation into the `Cc` buffer tile (the paper's rank-dc
//!   accumulation, the `Tm^Cc` traffic of Table 4);
//! * [`PassMode::Last`] — the last `d`-block: combine with any prior
//!   partials, apply the norm's finalization (`‖q‖² + ‖r‖² − 2·qᵀr` for
//!   squared ℓ2, clamped at 0 against rounding), and emit final distances
//!   into a stack tile that the caller consumes immediately (Var#1) or
//!   copies into its distance buffer (buffered variants).
//!
//! The ℓp-norm generalization (§2.4 "General ℓp norm") replaces the FMA
//! with subtract/abs/add (ℓ1), subtract/abs/max (ℓ∞), or a scalar `powf`
//! loop (general p, the paper's VPOW note). AVX2+FMA specializations are
//! provided for squared-ℓ2, ℓ1 and ℓ∞; general p falls back to scalar.

mod avx2;
mod avx512;

use dataset::DistanceKind;
pub use gemm_kernel::{MR, NR};

#[cfg(target_arch = "x86_64")]
pub use avx2::{available as avx2_available, row_filter_mask};
#[cfg(target_arch = "x86_64")]
pub use avx512::available as avx512_available;

/// Which SIMD implementation of the micro-kernel to run. [`SimdLevel::Auto`]
/// (the default) picks the widest supported path; the explicit levels
/// exist for the ISA-ablation benches and for debugging. A requested
/// level that the CPU does not support silently degrades to the next
/// narrower one — results are identical across levels by construction
/// (verified by tests), only speed differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loops (also the `Lp(p)` and fringe path).
    Scalar,
    /// 256-bit AVX2+FMA kernels.
    Avx2,
    /// 512-bit AVX-512F kernels (two tile rows per register).
    Avx512,
    /// Widest supported (the default).
    Auto,
}

use std::sync::atomic::{AtomicU8, Ordering};

static FORCED_LEVEL: AtomicU8 = AtomicU8::new(3); // Auto

/// Force a SIMD level process-wide (benchmarks/ablations). `Auto` resets.
pub fn set_simd_level(level: SimdLevel) {
    let v = match level {
        SimdLevel::Scalar => 0,
        SimdLevel::Avx2 => 1,
        SimdLevel::Avx512 => 2,
        SimdLevel::Auto => 3,
    };
    FORCED_LEVEL.store(v, Ordering::Relaxed);
}

/// The currently forced SIMD level.
pub fn simd_level() -> SimdLevel {
    match FORCED_LEVEL.load(Ordering::Relaxed) {
        0 => SimdLevel::Scalar,
        1 => SimdLevel::Avx2,
        2 => SimdLevel::Avx512,
        _ => SimdLevel::Auto,
    }
}

/// One `MR×NR` distance tile, row-major (`i*NR + j`).
pub type Tile = [f64; MR * NR];

/// What to do with this `d`-block's accumulation (see module docs).
pub enum PassMode<'a> {
    /// Fold into the strided `Cc` tile at `cc[i*ldcc + j]`; `first` resets
    /// instead of combining.
    Partial {
        /// Tile origin inside the `Cc` buffer.
        cc: &'a mut [f64],
        /// Row stride of `Cc` in elements.
        ldcc: usize,
        /// `true` on the first `d`-block (overwrite, don't combine).
        first: bool,
    },
    /// Produce final distances into `out`; `prior` is the `Cc` tile of the
    /// earlier passes (`None` when `d ≤ dc`).
    Last {
        /// Prior partial tile and its row stride.
        prior: Option<(&'a [f64], usize)>,
        /// Destination for the finalized distances.
        out: &'a mut Tile,
    },
}

/// Run one micro-kernel pass.
///
/// `ap`/`bp` are packed panels (`dcb*MR` / `dcb*NR`, Z-shape, `bp` rows
/// 32-byte aligned); `q2`/`r2` are the gathered squared norms for this
/// tile (used only by [`DistanceKind::SqL2`]).
pub fn tile_pass(
    kind: DistanceKind,
    dcb: usize,
    ap: &[f64],
    bp: &[f64],
    q2: &[f64],
    r2: &[f64],
    mode: PassMode<'_>,
) {
    debug_assert!(ap.len() >= dcb * MR);
    debug_assert!(bp.len() >= dcb * NR);
    debug_assert!(q2.len() >= MR && r2.len() >= NR);

    #[cfg(target_arch = "x86_64")]
    {
        let vectorizable = !matches!(kind, DistanceKind::Lp(_));
        let forced = simd_level();
        // `Auto` prefers AVX2: the `simd_ablation` harness measures the
        // AVX-512 kernel a few percent *slower* on the Xeons we target
        // (permute overhead in the two-rows-per-register layout plus
        // 512-bit license downclocking). Force `Avx512` to use it anyway.
        let use_512 = vectorizable && avx512::available() && forced == SimdLevel::Avx512;
        if use_512 {
            // SAFETY: AVX-512F checked; slice lengths checked above.
            unsafe { avx512::tile_pass_avx512(kind, dcb, ap, bp, q2, r2, mode) };
            return;
        }
        let use_256 = vectorizable
            && avx2::available()
            && matches!(forced, SimdLevel::Auto | SimdLevel::Avx2);
        if use_256 {
            // SAFETY: AVX2+FMA checked; slice lengths checked above.
            unsafe { avx2::tile_pass_avx2(kind, dcb, ap, bp, q2, r2, mode) };
            return;
        }
    }

    match kind {
        DistanceKind::SqL2 => tile_pass_scalar(&SqL2Ops, dcb, ap, bp, q2, r2, mode),
        DistanceKind::L1 => tile_pass_scalar(&L1Ops, dcb, ap, bp, q2, r2, mode),
        DistanceKind::LInf => tile_pass_scalar(&LInfOps, dcb, ap, bp, q2, r2, mode),
        DistanceKind::Lp(p) => tile_pass_scalar(&LpOps(p), dcb, ap, bp, q2, r2, mode),
        DistanceKind::Cosine => tile_pass_scalar(&CosineOps, dcb, ap, bp, q2, r2, mode),
    }
}

/// Per-norm scalar operations; one zero-sized (or p-carrying) type per
/// norm keeps the inner loop monomorphized.
pub(crate) trait NormOps {
    /// Identity element of `combine`.
    const INIT: f64 = 0.0;
    /// Fold one coordinate pair into the accumulator.
    fn accum(&self, acc: f64, q: f64, r: f64) -> f64;
    /// Combine partial accumulations from two `d`-blocks.
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    /// Turn the accumulator into the final distance.
    fn finalize(&self, acc: f64, q2: f64, r2: f64) -> f64;
}

pub(crate) struct SqL2Ops;
impl NormOps for SqL2Ops {
    #[inline(always)]
    fn accum(&self, acc: f64, q: f64, r: f64) -> f64 {
        acc + q * r
    }
    #[inline(always)]
    fn finalize(&self, acc: f64, q2: f64, r2: f64) -> f64 {
        // Eq. (1): ‖q−r‖² = ‖q‖² + ‖r‖² − 2·qᵀr; clamp the ~1 ulp
        // negatives the expansion can produce for near-identical points.
        (q2 + r2 - 2.0 * acc).max(0.0)
    }
}

pub(crate) struct L1Ops;
impl NormOps for L1Ops {
    #[inline(always)]
    fn accum(&self, acc: f64, q: f64, r: f64) -> f64 {
        acc + (q - r).abs()
    }
    #[inline(always)]
    fn finalize(&self, acc: f64, _q2: f64, _r2: f64) -> f64 {
        acc
    }
}

pub(crate) struct LInfOps;
impl NormOps for LInfOps {
    #[inline(always)]
    fn accum(&self, acc: f64, q: f64, r: f64) -> f64 {
        acc.max((q - r).abs())
    }
    #[inline(always)]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
    #[inline(always)]
    fn finalize(&self, acc: f64, _q2: f64, _r2: f64) -> f64 {
        acc
    }
}

pub(crate) struct LpOps(pub f64);
impl NormOps for LpOps {
    #[inline(always)]
    fn accum(&self, acc: f64, q: f64, r: f64) -> f64 {
        acc + (q - r).abs().powf(self.0)
    }
    #[inline(always)]
    fn finalize(&self, acc: f64, _q2: f64, _r2: f64) -> f64 {
        acc
    }
}

pub(crate) struct CosineOps;
impl NormOps for CosineOps {
    #[inline(always)]
    fn accum(&self, acc: f64, q: f64, r: f64) -> f64 {
        acc + q * r // same rank-update as squared-ℓ2: the inner product
    }
    #[inline(always)]
    fn finalize(&self, acc: f64, q2: f64, r2: f64) -> f64 {
        let denom = (q2 * r2).sqrt();
        if denom > 0.0 {
            1.0 - acc / denom
        } else {
            1.0 // zero-norm operand: "uncorrelated", never NaN
        }
    }
}

fn tile_pass_scalar<N: NormOps>(
    norm: &N,
    dcb: usize,
    ap: &[f64],
    bp: &[f64],
    q2: &[f64],
    r2: &[f64],
    mode: PassMode<'_>,
) {
    let mut acc = [N::INIT; MR * NR];
    for p in 0..dcb {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for i in 0..MR {
            for j in 0..NR {
                acc[i * NR + j] = norm.accum(acc[i * NR + j], a[i], b[j]);
            }
        }
    }
    match mode {
        PassMode::Partial { cc, ldcc, first } => {
            for i in 0..MR {
                for j in 0..NR {
                    let slot = &mut cc[i * ldcc + j];
                    *slot = if first {
                        acc[i * NR + j]
                    } else {
                        norm.combine(*slot, acc[i * NR + j])
                    };
                }
            }
        }
        PassMode::Last { prior, out } => {
            if let Some((cc, ldcc)) = prior {
                for i in 0..MR {
                    for j in 0..NR {
                        acc[i * NR + j] = norm.combine(cc[i * ldcc + j], acc[i * NR + j]);
                    }
                }
            }
            for i in 0..MR {
                for j in 0..NR {
                    out[i * NR + j] = norm.finalize(acc[i * NR + j], q2[i], r2[j]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{dist_l1, dist_linf, dist_lp, dist_sq_l2, uniform};

    /// Pack MR query points and NR reference points (depth d) and compare
    /// tile distances against the scalar metric functions.
    fn check_norm(kind: DistanceKind, d: usize, tol: f64) {
        let x = uniform(MR + NR, d, 7);
        let q_idx: Vec<usize> = (0..MR).collect();
        let r_idx: Vec<usize> = (MR..MR + NR).collect();
        let mut ap = vec![0.0; MR * d];
        let mut bp = vec![0.0; NR * d];
        crate::packing::pack_q_panel(&x, &q_idx, 0, MR, 0, d, &mut ap);
        crate::packing::pack_r_panel(&x, &r_idx, 0, NR, 0, d, &mut bp);
        let q2: Vec<f64> = q_idx.iter().map(|&i| x.sqnorm(i)).collect();
        let r2: Vec<f64> = r_idx.iter().map(|&j| x.sqnorm(j)).collect();

        // single pass
        let mut out = [0.0; MR * NR];
        tile_pass(
            kind,
            d,
            &ap,
            &bp,
            &q2,
            &r2,
            PassMode::Last {
                prior: None,
                out: &mut out,
            },
        );
        for i in 0..MR {
            for j in 0..NR {
                let want = kind.eval(x.point(q_idx[i]), x.point(r_idx[j]));
                let got = out[i * NR + j];
                assert!(
                    (got - want).abs() <= tol * (1.0 + want.abs()),
                    "{} single-pass ({i},{j}): {got} vs {want}",
                    kind.name()
                );
            }
        }

        // split into two passes through a strided Cc tile
        if d >= 2 {
            let d1 = d / 2;
            let d2 = d - d1;
            let mut ap1 = vec![0.0; MR * d1];
            let mut bp1 = vec![0.0; NR * d1];
            let mut ap2 = vec![0.0; MR * d2];
            let mut bp2 = vec![0.0; NR * d2];
            crate::packing::pack_q_panel(&x, &q_idx, 0, MR, 0, d1, &mut ap1);
            crate::packing::pack_r_panel(&x, &r_idx, 0, NR, 0, d1, &mut bp1);
            crate::packing::pack_q_panel(&x, &q_idx, 0, MR, d1, d2, &mut ap2);
            crate::packing::pack_r_panel(&x, &r_idx, 0, NR, d1, d2, &mut bp2);
            let ldcc = NR + 5; // deliberately non-trivial stride
            let mut cc = vec![f64::NAN; MR * ldcc];
            tile_pass(
                kind,
                d1,
                &ap1,
                &bp1,
                &q2,
                &r2,
                PassMode::Partial {
                    cc: &mut cc,
                    ldcc,
                    first: true,
                },
            );
            let mut out2 = [0.0; MR * NR];
            tile_pass(
                kind,
                d2,
                &ap2,
                &bp2,
                &q2,
                &r2,
                PassMode::Last {
                    prior: Some((&cc, ldcc)),
                    out: &mut out2,
                },
            );
            for (a, b) in out.iter().zip(&out2) {
                assert!(
                    (a - b).abs() <= tol * (1.0 + a.abs()),
                    "{} two-pass mismatch: {a} vs {b}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn sq_l2_matches_metric() {
        for d in [1, 2, 7, 16, 33] {
            check_norm(DistanceKind::SqL2, d, 1e-9);
        }
    }

    #[test]
    fn l1_matches_metric() {
        for d in [1, 5, 24] {
            check_norm(DistanceKind::L1, d, 1e-12);
        }
    }

    #[test]
    fn linf_matches_metric() {
        for d in [1, 5, 24] {
            check_norm(DistanceKind::LInf, d, 1e-12);
        }
    }

    #[test]
    fn lp3_matches_metric() {
        check_norm(DistanceKind::Lp(3.0), 12, 1e-12);
    }

    #[test]
    fn cosine_matches_metric() {
        for d in [1, 2, 7, 16, 33] {
            check_norm(DistanceKind::Cosine, d, 1e-9);
        }
    }

    #[test]
    fn all_simd_levels_agree() {
        // scalar / AVX2 / AVX-512 (whichever are supported) must produce
        // identical tiles on every vectorizable norm
        let d = 37;
        let x = uniform(MR + NR, d, 21);
        let q_idx: Vec<usize> = (0..MR).collect();
        let r_idx: Vec<usize> = (MR..MR + NR).collect();
        let mut ap = vec![0.0; MR * d];
        let mut bp = vec![0.0; NR * d];
        crate::packing::pack_q_panel(&x, &q_idx, 0, MR, 0, d, &mut ap);
        crate::packing::pack_r_panel(&x, &r_idx, 0, NR, 0, d, &mut bp);
        let q2: Vec<f64> = q_idx.iter().map(|&i| x.sqnorm(i)).collect();
        let r2: Vec<f64> = r_idx.iter().map(|&j| x.sqnorm(j)).collect();

        // (also covers set/get: the only test that touches the global
        // level, so it cannot race with other tests in the binary)
        set_simd_level(SimdLevel::Scalar);
        assert_eq!(simd_level(), SimdLevel::Scalar);
        set_simd_level(SimdLevel::Auto);
        assert_eq!(simd_level(), SimdLevel::Auto);

        for kind in [
            DistanceKind::SqL2,
            DistanceKind::L1,
            DistanceKind::LInf,
            DistanceKind::Cosine,
        ] {
            let run = |level: SimdLevel| {
                set_simd_level(level);
                let mut out = [0.0; MR * NR];
                tile_pass(
                    kind,
                    d,
                    &ap,
                    &bp,
                    &q2,
                    &r2,
                    PassMode::Last {
                        prior: None,
                        out: &mut out,
                    },
                );
                set_simd_level(SimdLevel::Auto);
                out
            };
            let scalar = run(SimdLevel::Scalar);
            for level in [SimdLevel::Avx2, SimdLevel::Avx512, SimdLevel::Auto] {
                let got = run(level);
                for (a, b) in scalar.iter().zip(&got) {
                    assert!(
                        (a - b).abs() <= 1e-10 * (1.0 + a.abs()),
                        "{} {level:?}: {a} vs {b}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn lp_fractional_matches_metric() {
        check_norm(DistanceKind::Lp(0.5), 9, 1e-12);
    }

    #[test]
    fn sq_l2_self_distance_clamps_to_zero() {
        // q == r: expansion may round negative; tile must clamp to >= 0.
        let x = uniform(MR.max(NR), 13, 9);
        let idx: Vec<usize> = (0..MR.max(NR)).collect();
        let mut ap = vec![0.0; MR * 13];
        let mut bp = vec![0.0; NR * 13];
        crate::packing::pack_q_panel(&x, &idx, 0, MR, 0, 13, &mut ap);
        crate::packing::pack_r_panel(&x, &idx, 0, NR, 0, 13, &mut bp);
        let q2: Vec<f64> = (0..MR).map(|i| x.sqnorm(idx[i])).collect();
        let r2: Vec<f64> = (0..NR).map(|j| x.sqnorm(idx[j])).collect();
        let mut out = [0.0; MR * NR];
        tile_pass(
            DistanceKind::SqL2,
            13,
            &ap,
            &bp,
            &q2,
            &r2,
            PassMode::Last {
                prior: None,
                out: &mut out,
            },
        );
        for i in 0..NR {
            assert!(out[i * NR + i] >= 0.0);
            assert!(out[i * NR + i] < 1e-9);
        }
    }

    #[test]
    fn metric_functions_agree_with_tile_oracle() {
        // belt-and-braces: the four scalar metrics behave as expected on a
        // hand-computed pair
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(dist_sq_l2(&a, &b), 25.0);
        assert_eq!(dist_l1(&a, &b), 7.0);
        assert_eq!(dist_linf(&a, &b), 4.0);
        assert!((dist_lp(&a, &b, 2.0) - 25.0).abs() < 1e-12);
    }
}
