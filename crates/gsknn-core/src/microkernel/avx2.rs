//! AVX2+FMA specializations of the fused micro-kernel. Eight `f64x4`
//! accumulators cover the 8×4 tile; squared-ℓ2 uses broadcast-FMA (the
//! FMA-era equivalent of the paper's Figure 3 shuffle scheme), ℓ1 uses
//! subtract/abs/add and ℓ∞ subtract/abs/max, exactly the instruction
//! substitution described in §2.4 ("General ℓp norm").

#![cfg(target_arch = "x86_64")]

use super::{PassMode, MR, NR};
use dataset::DistanceKind;
use std::arch::x86_64::*;

/// AVX2+FMA available on this CPU (checked once).
pub fn available() -> bool {
    use std::sync::OnceLock;
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// Vectorized tile pass; see [`super::tile_pass`] for the contract.
///
/// # Safety
/// Caller must guarantee AVX2+FMA support and the slice-length
/// preconditions of `tile_pass` (`ap ≥ dcb*MR`, `bp ≥ dcb*NR`,
/// `q2 ≥ MR`, `r2 ≥ NR`, strided tiles in bounds).
pub unsafe fn tile_pass_avx2(
    kind: DistanceKind,
    dcb: usize,
    ap: &[f64],
    bp: &[f64],
    q2: &[f64],
    r2: &[f64],
    mode: PassMode<'_>,
) {
    match kind {
        DistanceKind::SqL2 => sq_l2(dcb, ap, bp, q2, r2, mode),
        DistanceKind::L1 => l1(dcb, ap, bp, mode),
        DistanceKind::LInf => linf(dcb, ap, bp, mode),
        DistanceKind::Cosine => cosine(dcb, ap, bp, q2, r2, mode),
        DistanceKind::Lp(_) => unreachable!("general p has no AVX2 path"),
    }
}

/// `mask & x` with the sign bit cleared — |x| for f64 lanes.
#[inline(always)]
unsafe fn abs_pd(x: __m256d) -> __m256d {
    _mm256_andnot_pd(_mm256_set1_pd(-0.0), x)
}

macro_rules! rank_update {
    ($dcb:ident, $ap:ident, $bp:ident, $acc:ident, |$a:ident, $b:ident, $acc_i:ident| $body:expr) => {
        for p in 0..$dcb {
            let $b = _mm256_loadu_pd($bp.as_ptr().add(p * NR));
            let a_row = $ap.as_ptr().add(p * MR);
            for i in 0..MR {
                let $a = _mm256_broadcast_sd(&*a_row.add(i));
                let $acc_i = $acc[i];
                $acc[i] = $body;
            }
        }
    };
}

macro_rules! finish {
    ($acc:ident, $mode:ident, $combine:ident, |$acc_i:ident, $i:ident| $final_expr:expr) => {
        match $mode {
            PassMode::Partial { cc, ldcc, first } => {
                for $i in 0..MR {
                    let slot = cc.as_mut_ptr().add($i * ldcc);
                    let v = if first {
                        $acc[$i]
                    } else {
                        $combine(_mm256_loadu_pd(slot), $acc[$i])
                    };
                    _mm256_storeu_pd(slot, v);
                }
            }
            PassMode::Last { prior, out } => {
                if let Some((cc, ldcc)) = prior {
                    for $i in 0..MR {
                        let prev = _mm256_loadu_pd(cc.as_ptr().add($i * ldcc));
                        $acc[$i] = $combine(prev, $acc[$i]);
                    }
                }
                for $i in 0..MR {
                    let $acc_i = $acc[$i];
                    let v = $final_expr;
                    _mm256_storeu_pd(out.as_mut_ptr().add($i * NR), v);
                }
            }
        }
    };
}

#[inline(always)]
unsafe fn vadd(a: __m256d, b: __m256d) -> __m256d {
    _mm256_add_pd(a, b)
}

#[inline(always)]
unsafe fn vmax(a: __m256d, b: __m256d) -> __m256d {
    _mm256_max_pd(a, b)
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sq_l2(dcb: usize, ap: &[f64], bp: &[f64], q2: &[f64], r2: &[f64], mode: PassMode<'_>) {
    let mut acc = [_mm256_setzero_pd(); MR];
    rank_update!(dcb, ap, bp, acc, |a, b, acc_i| _mm256_fmadd_pd(a, b, acc_i));
    let r2v = _mm256_loadu_pd(r2.as_ptr());
    let two = _mm256_set1_pd(2.0);
    let zero = _mm256_setzero_pd();
    finish!(acc, mode, vadd, |acc_i, i| {
        // dist = max(0, q2 + r2 − 2·acc): one FNMA + one max per row
        let sum = _mm256_add_pd(_mm256_set1_pd(q2[i]), r2v);
        _mm256_max_pd(_mm256_fnmadd_pd(two, acc_i, sum), zero)
    });
}

#[target_feature(enable = "avx2,fma")]
unsafe fn cosine(dcb: usize, ap: &[f64], bp: &[f64], q2: &[f64], r2: &[f64], mode: PassMode<'_>) {
    // rank update identical to squared-ℓ2 (accumulate the inner
    // product); only the epilogue differs: 1 − acc/√(q2·r2), with a
    // zero-denominator blend to 1.0 (never NaN).
    let mut acc = [_mm256_setzero_pd(); MR];
    rank_update!(dcb, ap, bp, acc, |a, b, acc_i| _mm256_fmadd_pd(a, b, acc_i));
    let r2v = _mm256_loadu_pd(r2.as_ptr());
    let one = _mm256_set1_pd(1.0);
    let zero = _mm256_setzero_pd();
    finish!(acc, mode, vadd, |acc_i, i| {
        let denom = _mm256_sqrt_pd(_mm256_mul_pd(_mm256_set1_pd(q2[i]), r2v));
        let cosd = _mm256_sub_pd(one, _mm256_div_pd(acc_i, denom));
        let ok = _mm256_cmp_pd(denom, zero, _CMP_GT_OQ);
        _mm256_blendv_pd(one, cosd, ok)
    });
}

#[target_feature(enable = "avx2,fma")]
unsafe fn l1(dcb: usize, ap: &[f64], bp: &[f64], mode: PassMode<'_>) {
    let mut acc = [_mm256_setzero_pd(); MR];
    rank_update!(dcb, ap, bp, acc, |a, b, acc_i| _mm256_add_pd(
        acc_i,
        abs_pd(_mm256_sub_pd(a, b))
    ));
    finish!(acc, mode, vadd, |acc_i, _i| acc_i);
}

#[target_feature(enable = "avx2,fma")]
unsafe fn linf(dcb: usize, ap: &[f64], bp: &[f64], mode: PassMode<'_>) {
    let mut acc = [_mm256_setzero_pd(); MR];
    rank_update!(dcb, ap, bp, acc, |a, b, acc_i| _mm256_max_pd(
        acc_i,
        abs_pd(_mm256_sub_pd(a, b))
    ));
    finish!(acc, mode, vmax, |acc_i, _i| acc_i);
}

/// Vectorized pruning filter (§2.4 "Heap selection"): does any of the `NR`
/// distances in this tile row undercut the heap root? Broadcast the root
/// and compare — one `VCMP` + `movemask`, the paper's scheme. Returns a
/// lane bitmask (0 ⇒ the whole row can be discarded without touching the
/// heap).
///
/// # Safety
/// Requires AVX2 (checked via [`available`] by callers) and `row ≥ NR`.
#[target_feature(enable = "avx2")]
pub unsafe fn row_filter_mask(row: &[f64], threshold: f64) -> u32 {
    let v = _mm256_loadu_pd(row.as_ptr());
    let t = _mm256_set1_pd(threshold);
    // `<=` not `<`: equal-distance candidates may still win the index
    // tie-break inside the heap.
    _mm256_movemask_pd(_mm256_cmp_pd(v, t, _CMP_LE_OQ)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_mask_flags_lanes_leq_threshold() {
        if !available() {
            return;
        }
        let row = [1.0, 5.0, 3.0, 3.0];
        // SAFETY: AVX2 available, row has NR elements.
        let m = unsafe { row_filter_mask(&row, 3.0) };
        assert_eq!(m, 0b1101);
        let none = unsafe { row_filter_mask(&row, 0.5) };
        assert_eq!(none, 0);
    }
}
