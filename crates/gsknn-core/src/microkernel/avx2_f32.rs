//! AVX2+FMA specializations of the fused micro-kernel for `f32`.
//!
//! Same structure as the f64 kernels in [`super::avx2`], but the tile is
//! 8×8: one `f32x8` register covers a full tile row, so the eight
//! accumulators process twice the flops per FMA at identical instruction
//! count — the 2× single-precision throughput the ISA promises. The
//! packing layout, loop nest and pass modes are untouched; only the lane
//! width and the tile's `NR` change.

#![cfg(target_arch = "x86_64")]

use super::PassMode;
use dataset::DistanceKind;
use gsknn_scalar::GsknnScalar;
use std::arch::x86_64::*;

const MR: usize = <f32 as GsknnScalar>::MR;
const NR: usize = <f32 as GsknnScalar>::NR;

/// Vectorized f32 tile pass; see [`super::tile_pass`] for the contract.
///
/// # Safety
/// Caller must guarantee AVX2+FMA support (via [`super::avx2::available`])
/// and the slice-length preconditions of `tile_pass` (`ap ≥ dcb*MR`,
/// `bp ≥ dcb*NR`, `q2 ≥ MR`, `r2 ≥ NR`, strided tiles in bounds).
pub unsafe fn tile_pass_avx2_f32(
    kind: DistanceKind,
    dcb: usize,
    ap: &[f32],
    bp: &[f32],
    q2: &[f32],
    r2: &[f32],
    mode: PassMode<'_, f32>,
) {
    match kind {
        DistanceKind::SqL2 => sq_l2(dcb, ap, bp, q2, r2, mode),
        DistanceKind::L1 => l1(dcb, ap, bp, mode),
        DistanceKind::LInf => linf(dcb, ap, bp, mode),
        DistanceKind::Cosine => cosine(dcb, ap, bp, q2, r2, mode),
        DistanceKind::Lp(_) => unreachable!("general p has no AVX2 path"),
    }
}

/// |x| for 8 f32 lanes: clear the sign bit.
#[inline(always)]
unsafe fn abs_ps(x: __m256) -> __m256 {
    _mm256_andnot_ps(_mm256_set1_ps(-0.0), x)
}

macro_rules! rank_update {
    ($dcb:ident, $ap:ident, $bp:ident, $acc:ident, |$a:ident, $b:ident, $acc_i:ident| $body:expr) => {
        for p in 0..$dcb {
            let $b = _mm256_loadu_ps($bp.as_ptr().add(p * NR));
            let a_row = $ap.as_ptr().add(p * MR);
            for i in 0..MR {
                let $a = _mm256_broadcast_ss(&*a_row.add(i));
                let $acc_i = $acc[i];
                $acc[i] = $body;
            }
        }
    };
}

macro_rules! finish {
    ($acc:ident, $mode:ident, $combine:ident, |$acc_i:ident, $i:ident| $final_expr:expr) => {
        match $mode {
            PassMode::Partial { cc, ldcc, first } => {
                for $i in 0..MR {
                    let slot = cc.as_mut_ptr().add($i * ldcc);
                    let v = if first {
                        $acc[$i]
                    } else {
                        $combine(_mm256_loadu_ps(slot), $acc[$i])
                    };
                    _mm256_storeu_ps(slot, v);
                }
            }
            PassMode::Last { prior, out } => {
                if let Some((cc, ldcc)) = prior {
                    for $i in 0..MR {
                        let prev = _mm256_loadu_ps(cc.as_ptr().add($i * ldcc));
                        $acc[$i] = $combine(prev, $acc[$i]);
                    }
                }
                for $i in 0..MR {
                    let $acc_i = $acc[$i];
                    let v = $final_expr;
                    _mm256_storeu_ps(out.as_mut_ptr().add($i * NR), v);
                }
            }
        }
    };
}

#[inline(always)]
unsafe fn vadd(a: __m256, b: __m256) -> __m256 {
    _mm256_add_ps(a, b)
}

#[inline(always)]
unsafe fn vmax(a: __m256, b: __m256) -> __m256 {
    _mm256_max_ps(a, b)
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sq_l2(
    dcb: usize,
    ap: &[f32],
    bp: &[f32],
    q2: &[f32],
    r2: &[f32],
    mode: PassMode<'_, f32>,
) {
    let mut acc = [_mm256_setzero_ps(); MR];
    rank_update!(dcb, ap, bp, acc, |a, b, acc_i| _mm256_fmadd_ps(a, b, acc_i));
    let r2v = _mm256_loadu_ps(r2.as_ptr());
    let two = _mm256_set1_ps(2.0);
    let zero = _mm256_setzero_ps();
    finish!(acc, mode, vadd, |acc_i, i| {
        // dist = max(0, q2 + r2 − 2·acc): one FNMA + one max per row
        let sum = _mm256_add_ps(_mm256_set1_ps(q2[i]), r2v);
        _mm256_max_ps(_mm256_fnmadd_ps(two, acc_i, sum), zero)
    });
}

#[target_feature(enable = "avx2,fma")]
unsafe fn cosine(
    dcb: usize,
    ap: &[f32],
    bp: &[f32],
    q2: &[f32],
    r2: &[f32],
    mode: PassMode<'_, f32>,
) {
    // rank update identical to squared-ℓ2 (accumulate the inner
    // product); only the epilogue differs: 1 − acc/√(q2·r2), with a
    // zero-denominator blend to 1.0 (never NaN).
    let mut acc = [_mm256_setzero_ps(); MR];
    rank_update!(dcb, ap, bp, acc, |a, b, acc_i| _mm256_fmadd_ps(a, b, acc_i));
    let r2v = _mm256_loadu_ps(r2.as_ptr());
    let one = _mm256_set1_ps(1.0);
    let zero = _mm256_setzero_ps();
    finish!(acc, mode, vadd, |acc_i, i| {
        let denom = _mm256_sqrt_ps(_mm256_mul_ps(_mm256_set1_ps(q2[i]), r2v));
        let cosd = _mm256_sub_ps(one, _mm256_div_ps(acc_i, denom));
        let ok = _mm256_cmp_ps(denom, zero, _CMP_GT_OQ);
        _mm256_blendv_ps(one, cosd, ok)
    });
}

#[target_feature(enable = "avx2,fma")]
unsafe fn l1(dcb: usize, ap: &[f32], bp: &[f32], mode: PassMode<'_, f32>) {
    let mut acc = [_mm256_setzero_ps(); MR];
    rank_update!(dcb, ap, bp, acc, |a, b, acc_i| _mm256_add_ps(
        acc_i,
        abs_ps(_mm256_sub_ps(a, b))
    ));
    finish!(acc, mode, vadd, |acc_i, _i| acc_i);
}

#[target_feature(enable = "avx2,fma")]
unsafe fn linf(dcb: usize, ap: &[f32], bp: &[f32], mode: PassMode<'_, f32>) {
    let mut acc = [_mm256_setzero_ps(); MR];
    rank_update!(dcb, ap, bp, acc, |a, b, acc_i| _mm256_max_ps(
        acc_i,
        abs_ps(_mm256_sub_ps(a, b))
    ));
    finish!(acc, mode, vmax, |acc_i, _i| acc_i);
}

/// f32 pruning filter (§2.4 "Heap selection"): one `VCMPPS` + `movemask`
/// flags all eight lanes of a tile row at once. Bit `j` set ⇔
/// `row[j] <= threshold` (`<=`, not `<`: equal distances may still win
/// the index tie-break).
///
/// # Safety
/// Requires AVX2 (checked via [`super::avx2::available`] by callers) and
/// `row ≥ NR`.
#[target_feature(enable = "avx2")]
pub unsafe fn row_filter_mask_f32(row: &[f32], threshold: f32) -> u32 {
    let v = _mm256_loadu_ps(row.as_ptr());
    let t = _mm256_set1_ps(threshold);
    _mm256_movemask_ps(_mm256_cmp_ps(v, t, _CMP_LE_OQ)) as u32
}
