//! AVX-512F specializations of the fused micro-kernel.
//!
//! The paper closes by noting GSKNN's portability story: moving to a new
//! x86 generation "only requires changing the block size and rewriting
//! the micro kernel". This is that rewrite for AVX-512: the 8×4 tile is
//! processed as **four 512-bit accumulators, each holding two adjacent
//! tile rows** (rows `2j` and `2j+1` are contiguous in the tile, so one
//! `zmm` register covers both). Per `p` step that is 4 FMAs instead of
//! AVX2's 8 — half the instruction count at the same tile shape, which
//! keeps the packing layout and every outer loop unchanged.
//!
//! Register layout per step `p`:
//!
//! ```text
//! bb   = [ b0 b1 b2 b3 | b0 b1 b2 b3 ]          (broadcast_f64x4)
//! aj   = [ a(2j) ×4    | a(2j+1) ×4  ]          (permutexvar of a pair)
//! accj = fma(aj, bb, accj)                       j = 0..4
//! ```

#![cfg(target_arch = "x86_64")]

use super::{PassMode, MR, NR};
use dataset::DistanceKind;
use std::arch::x86_64::*;

/// AVX-512F available on this CPU (checked once).
pub fn available() -> bool {
    use std::sync::OnceLock;
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f"))
}

/// Vectorized tile pass; contract identical to [`super::tile_pass`].
///
/// # Safety
/// Caller must guarantee AVX-512F support and the slice-length
/// preconditions of `tile_pass`.
pub unsafe fn tile_pass_avx512(
    kind: DistanceKind,
    dcb: usize,
    ap: &[f64],
    bp: &[f64],
    q2: &[f64],
    r2: &[f64],
    mode: PassMode<'_>,
) {
    match kind {
        DistanceKind::SqL2 => sq_l2(dcb, ap, bp, q2, r2, mode),
        DistanceKind::L1 => l1(dcb, ap, bp, mode),
        DistanceKind::LInf => linf(dcb, ap, bp, mode),
        DistanceKind::Cosine => cosine(dcb, ap, bp, q2, r2, mode),
        DistanceKind::Lp(_) => unreachable!("general p has no AVX-512 path"),
    }
}

/// |x| on 8 lanes: clear the sign bit.
#[inline(always)]
unsafe fn abs_pd8(x: __m512d) -> __m512d {
    _mm512_abs_pd(x)
}

/// The lane-pair spread `[a, a, a, a, b, b, b, b]` from lanes 0/1 of `v`.
#[inline(always)]
unsafe fn spread_pair(v: __m512d) -> __m512d {
    let idx = _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0);
    _mm512_permutexvar_pd(idx, v)
}

/// Load two tile rows (`i = 2j`, `2j+1`) from a strided buffer into one
/// zmm: two 256-bit loads glued with an insert.
#[inline(always)]
unsafe fn load_row_pair(base: *const f64, ldcc: usize, j: usize) -> __m512d {
    let lo = _mm256_loadu_pd(base.add(2 * j * ldcc));
    let hi = _mm256_loadu_pd(base.add((2 * j + 1) * ldcc));
    _mm512_insertf64x4(_mm512_castpd256_pd512(lo), hi, 1)
}

/// Store one zmm as two strided tile rows.
#[inline(always)]
unsafe fn store_row_pair(base: *mut f64, ldcc: usize, j: usize, v: __m512d) {
    _mm256_storeu_pd(base.add(2 * j * ldcc), _mm512_castpd512_pd256(v));
    _mm256_storeu_pd(base.add((2 * j + 1) * ldcc), _mm512_extractf64x4_pd(v, 1));
}

macro_rules! rank_update_512 {
    ($dcb:ident, $ap:ident, $bp:ident, $acc:ident, |$a:ident, $b:ident, $acc_j:ident| $body:expr) => {
        for p in 0..$dcb {
            let b4 = _mm256_loadu_pd($bp.as_ptr().add(p * NR));
            let $b = _mm512_broadcast_f64x4(b4);
            let a_row = $ap.as_ptr().add(p * MR);
            for j in 0..MR / 2 {
                // lanes 0..2 hold a(2j), a(2j+1); spread to halves
                let pair = _mm512_castpd128_pd512(_mm_loadu_pd(a_row.add(2 * j)));
                let $a = spread_pair(pair);
                let $acc_j = $acc[j];
                $acc[j] = $body;
            }
        }
    };
}

macro_rules! finish_512 {
    ($acc:ident, $mode:ident, $combine:ident, |$acc_j:ident, $j:ident| $final_expr:expr) => {
        match $mode {
            PassMode::Partial { cc, ldcc, first } => {
                let base = cc.as_mut_ptr();
                for $j in 0..MR / 2 {
                    let v = if first {
                        $acc[$j]
                    } else {
                        $combine(load_row_pair(base, ldcc, $j), $acc[$j])
                    };
                    store_row_pair(base, ldcc, $j, v);
                }
            }
            PassMode::Last { prior, out } => {
                if let Some((cc, ldcc)) = prior {
                    let base = cc.as_ptr();
                    for $j in 0..MR / 2 {
                        $acc[$j] = $combine(load_row_pair(base, ldcc, $j), $acc[$j]);
                    }
                }
                for $j in 0..MR / 2 {
                    let $acc_j = $acc[$j];
                    let v = $final_expr;
                    // two tile rows are contiguous: one 512-bit store
                    _mm512_storeu_pd(out.as_mut_ptr().add(2 * $j * NR), v);
                }
            }
        }
    };
}

#[inline(always)]
unsafe fn vadd8(a: __m512d, b: __m512d) -> __m512d {
    _mm512_add_pd(a, b)
}

#[inline(always)]
unsafe fn vmax8(a: __m512d, b: __m512d) -> __m512d {
    _mm512_max_pd(a, b)
}

#[target_feature(enable = "avx512f,fma")]
unsafe fn sq_l2(dcb: usize, ap: &[f64], bp: &[f64], q2: &[f64], r2: &[f64], mode: PassMode<'_>) {
    let mut acc = [_mm512_setzero_pd(); MR / 2];
    rank_update_512!(dcb, ap, bp, acc, |a, b, acc_j| _mm512_fmadd_pd(a, b, acc_j));
    let r2v = _mm512_broadcast_f64x4(_mm256_loadu_pd(r2.as_ptr()));
    let two = _mm512_set1_pd(2.0);
    let zero = _mm512_setzero_pd();
    finish_512!(acc, mode, vadd8, |acc_j, j| {
        // q2 pair spread across the two row-halves, + r2, − 2·acc, clamp
        let q2p = _mm512_castpd128_pd512(_mm_loadu_pd(q2.as_ptr().add(2 * j)));
        let sum = _mm512_add_pd(spread_pair(q2p), r2v);
        _mm512_max_pd(_mm512_fnmadd_pd(two, acc_j, sum), zero)
    });
}

#[target_feature(enable = "avx512f,fma")]
unsafe fn cosine(dcb: usize, ap: &[f64], bp: &[f64], q2: &[f64], r2: &[f64], mode: PassMode<'_>) {
    let mut acc = [_mm512_setzero_pd(); MR / 2];
    rank_update_512!(dcb, ap, bp, acc, |a, b, acc_j| _mm512_fmadd_pd(a, b, acc_j));
    let r2v = _mm512_broadcast_f64x4(_mm256_loadu_pd(r2.as_ptr()));
    let one = _mm512_set1_pd(1.0);
    let zero = _mm512_setzero_pd();
    finish_512!(acc, mode, vadd8, |acc_j, j| {
        let q2p = _mm512_castpd128_pd512(_mm_loadu_pd(q2.as_ptr().add(2 * j)));
        let denom = _mm512_sqrt_pd(_mm512_mul_pd(spread_pair(q2p), r2v));
        let cosd = _mm512_sub_pd(one, _mm512_div_pd(acc_j, denom));
        let ok = _mm512_cmp_pd_mask(denom, zero, _CMP_GT_OQ);
        _mm512_mask_blend_pd(ok, one, cosd)
    });
}

#[target_feature(enable = "avx512f,fma")]
unsafe fn l1(dcb: usize, ap: &[f64], bp: &[f64], mode: PassMode<'_>) {
    let mut acc = [_mm512_setzero_pd(); MR / 2];
    rank_update_512!(dcb, ap, bp, acc, |a, b, acc_j| _mm512_add_pd(
        acc_j,
        abs_pd8(_mm512_sub_pd(a, b))
    ));
    finish_512!(acc, mode, vadd8, |acc_j, _j| acc_j);
}

#[target_feature(enable = "avx512f,fma")]
unsafe fn linf(dcb: usize, ap: &[f64], bp: &[f64], mode: PassMode<'_>) {
    let mut acc = [_mm512_setzero_pd(); MR / 2];
    rank_update_512!(dcb, ap, bp, acc, |a, b, acc_j| _mm512_max_pd(
        acc_j,
        abs_pd8(_mm512_sub_pd(a, b))
    ));
    finish_512!(acc, mode, vmax8, |acc_j, _j| acc_j);
}
