//! Public entry points: configure once, call many times — the contract the
//! approximate all-nearest-neighbor solvers (randomized KD-trees, LSH)
//! need, where the kNN kernel is invoked per leaf/bucket with fresh index
//! lists and the per-query neighbor lists persist across calls.

use crate::buffers::GsknnWorkspace;
use crate::microkernel::FusedScalar;
use crate::model::{MachineParams, Model, ProblemSize};
use crate::obs::{Phase, PhaseSet};
use crate::params::Variant;
use crate::variants::{run_serial, DriverArgs, SelHeap};
use dataset::{DistanceKind, PointSet};
use gemm_kernel::GemmParams;
use gsknn_scalar::GsknnScalar;
use knn_select::{Neighbor, NeighborTable};

/// Reusable per-batch scratch for [`Gsknn::update_cross_reusing`]: the
/// selection heaps (one per query row) and the writeback row that
/// `update_cross` would otherwise allocate per call. A serving shard keeps
/// one of these per lane; after warm-up on the largest batch shape the
/// whole select-and-writeback path is allocation-free.
#[derive(Default, Debug)]
pub struct BatchScratch<T: FusedScalar = f64> {
    heaps: Vec<SelHeap<T>>,
    row: Vec<Neighbor<T>>,
}

impl<T: FusedScalar> BatchScratch<T> {
    /// Empty scratch; grows on first use and never shrinks.
    pub fn new() -> Self {
        BatchScratch {
            heaps: Vec::new(),
            row: Vec::new(),
        }
    }
}

/// Kernel configuration.
#[derive(Clone, Debug)]
pub struct GsknnConfig {
    /// Cache-blocking parameters (defaults to the paper's Ivy Bridge set).
    pub params: GemmParams,
    /// Selection placement; [`Variant::Auto`] switches between Var#1 and
    /// Var#6 (see [`GsknnConfig::model_switch`]).
    pub variant: Variant,
    /// With `Some(machine)`, `Auto` uses the §2.6 performance model to
    /// pick the faster of Var#1/Var#6 for each `(m, n, d, k)`; with
    /// `None` it uses the paper's measured rule of thumb (§3): Var#1 for
    /// `k ≤ 512`, Var#6 above.
    pub model_switch: Option<MachineParams>,
}

impl Default for GsknnConfig {
    fn default() -> Self {
        GsknnConfig {
            params: GemmParams::ivy_bridge(),
            variant: Variant::Auto,
            model_switch: None,
        }
    }
}

impl GsknnConfig {
    /// Configuration with blocking parameters derived analytically from
    /// the running machine's cache hierarchy (§2.4's selection formulas
    /// applied to detected sizes; falls back to the paper's Ivy Bridge
    /// values when detection fails).
    pub fn native() -> Self {
        GsknnConfig {
            params: GemmParams::native(),
            ..Default::default()
        }
    }

    /// Configuration whose blocking is derived for a specific element
    /// type: the same cache formulas with the type's size and micro-tile
    /// (f32 gets `dc = 1.5 × dc_f64` on the paper's caches — see
    /// `GemmParams::for_caches_of`). The f64 default parameters happen to
    /// also be *valid* (if suboptimal) for f32, so this is an upgrade,
    /// not a requirement, for single-precision runs.
    pub fn for_scalar<T: GsknnScalar>() -> Self {
        GsknnConfig {
            params: GemmParams::native_for::<T>(),
            ..Default::default()
        }
    }
}

/// A reusable kernel execution context (owns the packing workspace),
/// generic over the element precision (`Gsknn` = `Gsknn<f64>` is the
/// paper's double-precision kernel; `Gsknn<f32>` runs the 8-lane/16-lane
/// single-precision micro-kernels on the same nest).
///
/// See the crate-level example. Not `Sync`: create one per thread (the
/// parallel schemes in [`crate::parallel`] and [`crate::scheduler`] do).
#[derive(Default, Debug)]
pub struct Gsknn<T: FusedScalar = f64> {
    cfg: GsknnConfig,
    ws: GsknnWorkspace<T>,
    /// Phase times accumulated across calls since the last
    /// [`Gsknn::take_phase_accum`] — callers that issue many updates per
    /// logical unit of work (the forest makes one `update_cross` call
    /// per routed leaf) read their totals here, since `ws.phases` resets
    /// every call. Zero-sized without the `obs` feature.
    phase_accum: PhaseSet,
}

impl<T: FusedScalar> Gsknn<T> {
    /// New context with the given configuration.
    pub fn new(cfg: GsknnConfig) -> Self {
        Gsknn {
            cfg,
            ws: GsknnWorkspace::new(),
            phase_accum: PhaseSet::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GsknnConfig {
        &self.cfg
    }

    /// Resolve `Auto` for a concrete problem size.
    pub fn effective_variant(&self, m: usize, n: usize, d: usize, k: usize) -> Variant {
        match self.cfg.variant {
            Variant::Auto => match &self.cfg.model_switch {
                Some(machine) => {
                    // scale the machine constants to this element type
                    // (f32: double flop throughput, half stream traffic)
                    let model = Model::new(machine.for_scalar::<T>());
                    model.choose_variant(&ProblemSize { m, n, d, k })
                }
                // §3: "For all experiments with k ≤ 512, we use Var#1.
                // Otherwise, we use Var#6."
                None => {
                    if k <= 512 {
                        Variant::Var1
                    } else {
                        Variant::Var6
                    }
                }
            },
            v => v,
        }
    }

    /// Solve one kNN kernel: the `k` nearest references (by `kind`) for
    /// every query. Row `i` of the result corresponds to `q_idx[i]`.
    pub fn run(
        &mut self,
        x: &PointSet<T>,
        q_idx: &[usize],
        r_idx: &[usize],
        k: usize,
        kind: DistanceKind,
    ) -> NeighborTable<T> {
        let mut table = NeighborTable::new(q_idx.len(), k);
        self.update(x, q_idx, r_idx, kind, &mut table);
        table
    }

    /// Update existing neighbor lists with the candidates from `r_idx` —
    /// the iterated form the approximate solvers use (`table.k()` is `k`;
    /// row `i` corresponds to `q_idx[i]` and must carry that query's
    /// current list).
    pub fn update(
        &mut self,
        x: &PointSet<T>,
        q_idx: &[usize],
        r_idx: &[usize],
        kind: DistanceKind,
        table: &mut NeighborTable<T>,
    ) {
        self.update_cross(x, q_idx, x, r_idx, kind, table)
    }

    /// Cross-table form: queries from `xq`, references from `xr` (equal
    /// dimension) — out-of-sample / train-test search. Indices in the
    /// result refer to positions in `xr`.
    pub fn run_cross(
        &mut self,
        xq: &PointSet<T>,
        q_idx: &[usize],
        xr: &PointSet<T>,
        r_idx: &[usize],
        k: usize,
        kind: DistanceKind,
    ) -> NeighborTable<T> {
        let mut table = NeighborTable::new(q_idx.len(), k);
        self.update_cross(xq, q_idx, xr, r_idx, kind, &mut table);
        table
    }

    /// Cross-table update; see [`Gsknn::run_cross`] / [`Gsknn::update`].
    pub fn update_cross(
        &mut self,
        xq: &PointSet<T>,
        q_idx: &[usize],
        xr: &PointSet<T>,
        r_idx: &[usize],
        kind: DistanceKind,
        table: &mut NeighborTable<T>,
    ) {
        let k = table.k();
        assert_eq!(table.len(), q_idx.len(), "one table row per query");
        assert_eq!(xq.dim(), xr.dim(), "query/reference dimension mismatch");
        validate_indices(xq, q_idx, &[]);
        validate_indices(xr, &[], r_idx);
        let variant = self.effective_variant(q_idx.len(), r_idx.len(), xq.dim(), k);
        // §2.4: Var#1 pairs with the binary heap (small k), Var#6 with the
        // padded 4-heap (large k).
        let four = variant == Variant::Var6;
        let mut heaps: Vec<SelHeap<T>> = (0..q_idx.len())
            .map(|i| SelHeap::from_row(k, table.row(i), four))
            .collect();
        let args = DriverArgs {
            xq,
            xr,
            q_idx,
            r_idx,
            kind,
            params: self.cfg.params,
            variant,
        };
        self.ws.stats = crate::buffers::KernelStats::default();
        self.ws.phases.reset();
        run_serial(&args, &mut heaps, &mut self.ws);
        self.ws.phases.time(Phase::Writeback, || {
            for (i, heap) in heaps.into_iter().enumerate() {
                table.set_row(i, &heap.into_sorted_vec());
            }
        });
        self.phase_accum.merge(&self.ws.phases);
    }

    /// [`Gsknn::update_cross`] with the per-batch scratch (heaps and the
    /// writeback row) drawn from `scratch` instead of freshly allocated —
    /// bit-identical results, but a scratch cycled through a serving
    /// workspace stops allocating once it has seen its largest batch
    /// shape. Heap storage is reused via [`SelHeap::reset_from_row`],
    /// which rebuilds exactly what `from_row` builds.
    #[allow(clippy::too_many_arguments)]
    pub fn update_cross_reusing(
        &mut self,
        xq: &PointSet<T>,
        q_idx: &[usize],
        xr: &PointSet<T>,
        r_idx: &[usize],
        kind: DistanceKind,
        table: &mut NeighborTable<T>,
        scratch: &mut BatchScratch<T>,
    ) {
        let k = table.k();
        assert_eq!(table.len(), q_idx.len(), "one table row per query");
        assert_eq!(xq.dim(), xr.dim(), "query/reference dimension mismatch");
        validate_indices(xq, q_idx, &[]);
        validate_indices(xr, &[], r_idx);
        let variant = self.effective_variant(q_idx.len(), r_idx.len(), xq.dim(), k);
        let four = variant == Variant::Var6;
        let m = q_idx.len();
        for i in 0..m {
            match scratch.heaps.get_mut(i) {
                Some(h) => h.reset_from_row(k, table.row(i), four),
                None => scratch.heaps.push(SelHeap::from_row(k, table.row(i), four)),
            }
        }
        let args = DriverArgs {
            xq,
            xr,
            q_idx,
            r_idx,
            kind,
            params: self.cfg.params,
            variant,
        };
        self.ws.stats = crate::buffers::KernelStats::default();
        self.ws.phases.reset();
        run_serial(&args, &mut scratch.heaps[..m], &mut self.ws);
        self.ws.phases.time(Phase::Writeback, || {
            for (i, heap) in scratch.heaps[..m].iter().enumerate() {
                scratch.row.clear();
                heap.sorted_into(&mut scratch.row);
                table.set_row(i, &scratch.row);
            }
        });
        self.phase_accum.merge(&self.ws.phases);
    }

    /// Observability counters from the most recent `run`/`update` call
    /// (see [`crate::buffers::KernelStats`]): how often the vectorized
    /// root filter achieved the heap's O(n) best case, how many
    /// candidates were offered vs kept.
    pub fn last_stats(&self) -> crate::buffers::KernelStats {
        self.ws.stats
    }

    /// Phase-time breakdown of the most recent `run`/`update` call.
    /// All-zero unless the crate is built with the `obs` feature.
    pub fn last_phases(&self) -> PhaseSet {
        self.ws.phases
    }

    /// Drain the phase times accumulated over *all* `run`/`update` calls
    /// since the previous drain (the per-call [`Gsknn::last_phases`]
    /// resets each call). Lets a caller that issues many kernel calls
    /// per unit of work — e.g. a forest query, one call per routed leaf
    /// — attribute the summed phase cost to that unit. All-zero unless
    /// the crate is built with the `obs` feature.
    pub fn take_phase_accum(&mut self) -> PhaseSet {
        std::mem::take(&mut self.phase_accum)
    }

    /// Data-parallel run (§2.5's 4th-loop scheme on the rayon pool,
    /// `p` query chunks in flight): identical results to [`Gsknn::run`].
    pub fn run_parallel(
        &mut self,
        x: &PointSet<T>,
        q_idx: &[usize],
        r_idx: &[usize],
        k: usize,
        kind: DistanceKind,
        p: usize,
    ) -> NeighborTable<T> {
        let mut table = NeighborTable::new(q_idx.len(), k);
        self.update_parallel(x, q_idx, r_idx, kind, &mut table, p);
        table
    }

    /// Data-parallel update; see [`Gsknn::run_parallel`] / [`Gsknn::update`].
    /// Worker counters and phase times are merged, so [`Gsknn::last_stats`]
    /// and [`Gsknn::last_phases`] report run totals (phase times sum
    /// worker CPU time and can exceed wall time).
    pub fn update_parallel(
        &mut self,
        x: &PointSet<T>,
        q_idx: &[usize],
        r_idx: &[usize],
        kind: DistanceKind,
        table: &mut NeighborTable<T>,
        p: usize,
    ) {
        let k = table.k();
        assert_eq!(table.len(), q_idx.len(), "one table row per query");
        validate_indices(x, q_idx, r_idx);
        let variant = self.effective_variant(q_idx.len(), r_idx.len(), x.dim(), k);
        let four = variant == Variant::Var6;
        let mut heaps: Vec<SelHeap<T>> = (0..q_idx.len())
            .map(|i| SelHeap::from_row(k, table.row(i), four))
            .collect();
        let args = DriverArgs::same(x, q_idx, r_idx, kind, self.cfg.params, variant);
        let (stats, phases) = crate::parallel::run_data_parallel(&args, &mut heaps, p.max(1));
        self.ws.stats = stats;
        self.ws.phases = phases;
        self.ws.phases.time(Phase::Writeback, || {
            for (i, heap) in heaps.into_iter().enumerate() {
                table.set_row(i, &heap.into_sorted_vec());
            }
        });
        self.phase_accum.merge(&self.ws.phases);
    }
}

pub(crate) fn validate_indices<T: GsknnScalar>(x: &PointSet<T>, q_idx: &[usize], r_idx: &[usize]) {
    let n = x.len();
    assert!(
        q_idx.iter().all(|&i| i < n),
        "query index out of bounds (N = {n})"
    );
    assert!(
        r_idx.iter().all(|&j| j < n),
        "reference index out of bounds (N = {n})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;
    use knn_select::Neighbor;

    #[test]
    fn run_finds_self_as_nearest() {
        let x = uniform(200, 12, 5);
        let q: Vec<usize> = (0..50).collect();
        let r: Vec<usize> = (0..200).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let t = exec.run(&x, &q, &r, 3, DistanceKind::SqL2);
        for (i, &qi) in q.iter().enumerate() {
            assert_eq!(t.row(i)[0].idx, qi as u32, "query {qi}");
            // the Eq. (1) expansion leaves ~1 ulp of rounding on the
            // self-distance (clamped at 0 from below only)
            assert!(t.row(i)[0].dist < 1e-12);
        }
    }

    #[test]
    fn auto_rule_of_thumb_matches_paper() {
        let exec: Gsknn = Gsknn::new(GsknnConfig::default());
        assert_eq!(exec.effective_variant(8192, 8192, 64, 16), Variant::Var1);
        assert_eq!(exec.effective_variant(8192, 8192, 64, 512), Variant::Var1);
        assert_eq!(exec.effective_variant(8192, 8192, 64, 2048), Variant::Var6);
    }

    #[test]
    fn explicit_variant_is_respected() {
        let cfg = GsknnConfig {
            variant: Variant::Var3,
            ..Default::default()
        };
        let exec: Gsknn = Gsknn::new(cfg);
        assert_eq!(exec.effective_variant(10, 10, 4, 2048), Variant::Var3);
    }

    #[test]
    fn reusing_scratch_is_bit_identical_to_fresh() {
        fn check<T: FusedScalar>(k: usize) {
            let x64 = uniform(300, 10, 23);
            let x: PointSet<T> = x64.cast();
            let r: Vec<usize> = (0..300).collect();
            let mut exec = Gsknn::<T>::new(GsknnConfig::for_scalar::<T>());
            let mut scratch = BatchScratch::new();
            // vary the batch shape across cycles so the scratch is
            // exercised both growing and shrinking
            for (cycle, m) in [40usize, 12, 64, 7, 64].iter().enumerate() {
                let q: Vec<usize> = (0..*m).map(|i| (i * 3 + cycle) % 300).collect();
                let mut fresh = NeighborTable::<T>::new(q.len(), k);
                exec.update_cross(&x, &q, &x, &r, DistanceKind::SqL2, &mut fresh);
                let mut reused = NeighborTable::<T>::new(q.len(), k);
                exec.update_cross_reusing(
                    &x,
                    &q,
                    &x,
                    &r,
                    DistanceKind::SqL2,
                    &mut reused,
                    &mut scratch,
                );
                for i in 0..q.len() {
                    assert_eq!(fresh.row(i), reused.row(i), "cycle {cycle} row {i}");
                }
            }
        }
        check::<f64>(8); // Var#1 / binary heap
        check::<f32>(8);
        check::<f64>(600); // Var#6 / 4-heap (> 512 rule of thumb)
    }

    #[test]
    fn update_improves_rows_monotonically() {
        let x = uniform(100, 8, 19);
        let q: Vec<usize> = (0..10).collect();
        let r1: Vec<usize> = (50..100).collect();
        let r2: Vec<usize> = (0..50).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let mut t = exec.run(&x, &q, &r1, 4, DistanceKind::SqL2);
        let before: Vec<f64> = (0..10).map(|i| t.row(i)[3].dist).collect();
        exec.update(&x, &q, &r2, DistanceKind::SqL2, &mut t);
        // r2 contains the queries themselves, so the row minimum must be
        // the (≈0) self-distance and the k-th distance can only shrink.
        for (i, &b) in before.iter().enumerate() {
            assert!(t.row(i)[0].dist < 1e-12);
            assert!(t.row(i)[3].dist <= b);
        }
    }

    #[test]
    fn update_equals_one_shot_on_union() {
        let x = uniform(120, 6, 29);
        let q: Vec<usize> = (0..12).collect();
        let all: Vec<usize> = (0..120).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let mut incremental = exec.run(&x, &q, &all[..60], 5, DistanceKind::SqL2);
        exec.update(&x, &q, &all[60..], DistanceKind::SqL2, &mut incremental);
        let oneshot = exec.run(&x, &q, &all, 5, DistanceKind::SqL2);
        for i in 0..12 {
            let a: Vec<u32> = incremental.row(i).iter().map(|n| n.idx).collect();
            let b: Vec<u32> = oneshot.row(i).iter().map(|n| n.idx).collect();
            assert_eq!(a, b, "row {i}");
        }
    }

    #[test]
    fn k_zero_yields_empty_rows() {
        let x = uniform(10, 3, 1);
        let q = vec![0usize, 1];
        let r: Vec<usize> = (0..10).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let t = exec.run(&x, &q, &r, 0, DistanceKind::SqL2);
        assert_eq!(t.k(), 0);
    }

    #[test]
    #[should_panic(expected = "query index out of bounds")]
    fn out_of_bounds_query_panics() {
        let x = uniform(10, 3, 1);
        let mut exec = Gsknn::new(GsknnConfig::default());
        exec.run(&x, &[10], &[0], 1, DistanceKind::SqL2);
    }

    #[test]
    fn run_parallel_matches_run() {
        let x = uniform(400, 9, 47);
        let q: Vec<usize> = (0..120).collect();
        let r: Vec<usize> = (0..400).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let serial = exec.run(&x, &q, &r, 7, DistanceKind::SqL2);
        let par = exec.run_parallel(&x, &q, &r, 7, DistanceKind::SqL2, 4);
        for i in 0..120 {
            assert_eq!(serial.row(i), par.row(i), "row {i}");
        }
    }

    #[test]
    fn parallel_run_aggregates_worker_stats() {
        let x = uniform(400, 9, 47);
        let q: Vec<usize> = (0..120).collect();
        let r: Vec<usize> = (0..400).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let _ = exec.run(&x, &q, &r, 7, DistanceKind::SqL2);
        let serial = exec.last_stats();
        let _ = exec.run_parallel(&x, &q, &r, 7, DistanceKind::SqL2, 4);
        let par = exec.last_stats();
        // Each query sees the same candidate stream regardless of how the
        // 4th loop is chunked, so the per-query counters must agree (tile
        // counts may differ: chunk fringes pad to MR independently).
        assert!(par.tiles > 0, "worker stats were not merged");
        assert_eq!(par.candidates_offered, serial.candidates_offered);
        assert_eq!(par.candidates_kept, serial.candidates_kept);
        assert_eq!(
            par.rows_filtered + par.rows_scanned,
            serial.rows_filtered + serial.rows_scanned
        );
    }

    #[test]
    fn stats_show_best_case_filtering_at_small_k() {
        // k = 1 on a large reference set: once the heap holds a close
        // neighbor, almost every later tile row dies at the root filter.
        let x = uniform(4000, 8, 71);
        let q: Vec<usize> = (0..64).collect();
        let r: Vec<usize> = (0..4000).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let _ = exec.run(&x, &q, &r, 1, DistanceKind::SqL2);
        let s = exec.last_stats();
        assert!(s.tiles > 0);
        assert!(
            s.filter_rate() > 0.9,
            "expected the O(n) best case, filter rate {}",
            s.filter_rate()
        );
        assert!(s.candidates_kept <= s.candidates_offered);
    }

    #[test]
    fn stats_show_no_filtering_when_everything_is_kept() {
        // k >= n: every candidate must be kept; nothing can be filtered.
        let x = uniform(64, 4, 5);
        let q: Vec<usize> = (0..8).collect();
        let r: Vec<usize> = (0..64).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let _ = exec.run(&x, &q, &r, 64, DistanceKind::SqL2);
        let s = exec.last_stats();
        assert_eq!(s.rows_filtered, 0);
        assert_eq!(s.candidates_kept, 8 * 64);
    }

    #[test]
    fn stats_reset_between_runs() {
        let x = uniform(100, 4, 9);
        let q: Vec<usize> = (0..10).collect();
        let r: Vec<usize> = (0..100).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let _ = exec.run(&x, &q, &r, 2, DistanceKind::SqL2);
        let first = exec.last_stats();
        let _ = exec.run(&x, &q, &r, 2, DistanceKind::SqL2);
        assert_eq!(exec.last_stats(), first, "same problem, same counters");
    }

    #[test]
    fn cross_table_queries_match_merged_table() {
        // queries from one table, references from another: must equal
        // running on a merged table with shifted reference ids
        let xq = uniform(30, 7, 3);
        let xr = uniform(50, 7, 4);
        let q: Vec<usize> = (0..30).collect();
        let r: Vec<usize> = (0..50).collect();
        let mut exec = Gsknn::new(GsknnConfig::default());
        let got = exec.run_cross(&xq, &q, &xr, &r, 4, DistanceKind::SqL2);

        // merged: first 30 columns are xq, next 50 are xr
        let mut merged = xq.as_slice().to_vec();
        merged.extend_from_slice(xr.as_slice());
        let xm = dataset::PointSet::from_vec(7, 80, merged);
        let rm: Vec<usize> = (30..80).collect();
        let want = exec.run(&xm, &q, &rm, 4, DistanceKind::SqL2);
        for i in 0..30 {
            for (a, b) in got.row(i).iter().zip(want.row(i)) {
                assert_eq!(a.idx + 30, b.idx, "row {i}");
                assert!((a.dist - b.dist).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cross_table_rejects_mismatched_dims() {
        let xq = uniform(5, 3, 1);
        let xr = uniform(5, 4, 2);
        Gsknn::new(GsknnConfig::default()).run_cross(&xq, &[0], &xr, &[0], 1, DistanceKind::SqL2);
    }

    #[test]
    fn sentinel_rows_survive_when_no_references() {
        let x = uniform(10, 3, 1);
        let mut exec = Gsknn::new(GsknnConfig::default());
        let t = exec.run(&x, &[0, 1], &[], 2, DistanceKind::SqL2);
        assert_eq!(t.row(0)[0], Neighbor::sentinel());
    }

    #[test]
    fn f32_run_finds_self_as_nearest() {
        let x: PointSet<f32> = uniform(200, 12, 5).cast();
        let q: Vec<usize> = (0..50).collect();
        let r: Vec<usize> = (0..200).collect();
        let mut exec: Gsknn<f32> = Gsknn::new(GsknnConfig::for_scalar::<f32>());
        let t = exec.run(&x, &q, &r, 3, DistanceKind::SqL2);
        for (i, &qi) in q.iter().enumerate() {
            assert_eq!(t.row(i)[0].idx, qi as u32, "query {qi}");
            // single precision leaves more expansion rounding than f64
            assert!(t.row(i)[0].dist < 1e-3);
        }
    }

    #[test]
    fn f32_run_parallel_matches_run() {
        let x: PointSet<f32> = uniform(300, 9, 47).cast();
        let q: Vec<usize> = (0..96).collect();
        let r: Vec<usize> = (0..300).collect();
        let mut exec: Gsknn<f32> = Gsknn::new(GsknnConfig::default());
        let serial = exec.run(&x, &q, &r, 7, DistanceKind::SqL2);
        let par = exec.run_parallel(&x, &q, &r, 7, DistanceKind::SqL2, 4);
        for i in 0..96 {
            assert_eq!(serial.row(i), par.row(i), "row {i}");
        }
    }

    #[test]
    fn f32_update_equals_one_shot_on_union() {
        let x: PointSet<f32> = uniform(120, 6, 29).cast();
        let q: Vec<usize> = (0..12).collect();
        let all: Vec<usize> = (0..120).collect();
        let mut exec: Gsknn<f32> = Gsknn::new(GsknnConfig::default());
        let mut incremental = exec.run(&x, &q, &all[..60], 5, DistanceKind::SqL2);
        exec.update(&x, &q, &all[60..], DistanceKind::SqL2, &mut incremental);
        let oneshot = exec.run(&x, &q, &all, 5, DistanceKind::SqL2);
        for i in 0..12 {
            let a: Vec<u32> = incremental.row(i).iter().map(|n| n.idx).collect();
            let b: Vec<u32> = oneshot.row(i).iter().map(|n| n.idx).collect();
            assert_eq!(a, b, "row {i}");
        }
    }

    #[test]
    fn phase_accum_sums_across_calls_and_drains() {
        let x = uniform(96, 6, 31);
        let q: Vec<usize> = (0..8).collect();
        let r: Vec<usize> = (0..96).collect();
        let mut exec: Gsknn<f64> = Gsknn::new(GsknnConfig::default());
        exec.take_phase_accum(); // start clean
        let _ = exec.run(&x, &q, &r, 4, DistanceKind::SqL2);
        let _ = exec.run(&x, &q, &r, 4, DistanceKind::SqL2);
        let accum = exec.take_phase_accum();
        if crate::obs::enabled() {
            // one writeback span per call, summed — unlike last_phases,
            // which only held the second call
            assert_eq!(accum.count(crate::obs::Phase::Writeback), 2);
            assert_eq!(exec.last_phases().count(crate::obs::Phase::Writeback), 1);
        }
        // draining resets the accumulator
        let drained = exec.take_phase_accum();
        assert_eq!(drained.count(crate::obs::Phase::Writeback), 0);
    }

    #[test]
    fn for_scalar_config_validates_for_its_type() {
        let c32 = GsknnConfig::for_scalar::<f32>();
        assert!(c32.params.validate_for::<f32>().is_ok());
        let c64 = GsknnConfig::for_scalar::<f64>();
        assert!(c64.params.validate_for::<f64>().is_ok());
        // the f64 *default* config is also usable for f32 (both widths
        // divide its mc/nc), which keeps `Gsknn::<f32>::default()` legal
        assert!(GsknnConfig::default().params.validate_for::<f32>().is_ok());
    }
}
