//! The §2.6 performance model: predicted runtime `T = Tf + To + Tm` and
//! floating-point efficiency for GSKNN Var#1, Var#6 and the GEMM-based
//! Algorithm 2.1, used to (a) explain measured results (Figures 4/5),
//! (b) pick between Var#1 and Var#6 without exhaustive tuning, and
//! (c) estimate task runtimes for the task-parallel scheduler (§2.5).
//!
//! Terms (paper's notation):
//!
//! * `Tf + To = (2d+3)mn/τf + 24ε(mn + mk·log₂k)/τf` — Eq. (3): flops of
//!   the rank-d update + distance epilogue, plus the instruction cost of
//!   heap selection (≈12 instructions ≈ 24 flop-equivalents per
//!   adjustment, `ε` the expected fraction of worst-case adjustments).
//! * `Tm^Var1 = τb(nd + 2n) + τb(dm + 2m)·⌈n/nc⌉ + τb(⌈d/dc⌉−1)·mn +
//!   2·τl·ε·mk·log₂k` — packing traffic for `Rc`/`R2c` (once) and
//!   `Qc`/`Qc2` (per `jc` block), the `Cc` rank-dc spill when `d > dc`,
//!   and the random-access heap updates.
//! * `Tm^Var6 = Tm^Var1 + τb·mn` — Eq. (4): storing `C` once. Var#6's
//!   4-heap touches one cache line per level, so its heap term uses the
//!   contiguous rate `τb` where Var#1's binary heap pays the random rate
//!   `τl` (§2.6 "for a binary heap, τl is roughly 2τb …; for a 4-heap,
//!   τl will be roughly equal to τb").
//! * `Tm^GEMM = Tm^Var1 + τb(dm + dn + 2mn)` — Eq. (5): the explicit
//!   collection of `Q`, `R` and the write+read of the full `C`.

use crate::params::Variant;
use gemm_kernel::GemmParams;

/// Machine constants of the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineParams {
    /// Peak floating-point operations per second (`τf`).
    pub tau_f: f64,
    /// Seconds per `f64` moved contiguously from slow memory (`τb`).
    pub tau_b: f64,
    /// Seconds per random slow-memory access (`τl`).
    pub tau_l: f64,
    /// Expected heap-selection cost factor `ε ∈ [0, 1]`.
    pub epsilon: f64,
    /// Number of cores `p` (scales `τf`; the paper scales `τb`, `τl` by
    /// 1/5 for its 10-core runs — bandwidth does not scale linearly).
    pub cores: usize,
}

impl MachineParams {
    /// The paper's single-core Ivy Bridge constants (Figure 4 caption):
    /// `τf = 8 × 3.54 GHz`, `τb = 2.2 ns`, `τl = 13.91 ns`, `ε = 0.5`.
    pub fn ivy_bridge_1core() -> Self {
        MachineParams {
            tau_f: 8.0 * 3.54e9,
            tau_b: 2.2e-9,
            tau_l: 13.91e-9,
            epsilon: 0.5,
            cores: 1,
        }
    }

    /// The paper's 10-core constants: `τf = 10 × 8 × 3.10 GHz`, `τb` and
    /// `τl` at 1/5 of the single-core values.
    pub fn ivy_bridge_10core() -> Self {
        MachineParams {
            tau_f: 10.0 * 8.0 * 3.10e9,
            tau_b: 2.2e-9 / 5.0,
            tau_l: 13.91e-9 / 5.0,
            epsilon: 0.5,
            cores: 10,
        }
    }

    /// Rescale the constants from their f64 baseline to element type `T`:
    /// a 256-bit vector holds `8/BYTES × 4` lanes, so peak flops scale by
    /// `8/BYTES` (2× for f32) and contiguous traffic per element scales
    /// by `BYTES/8` (half the bytes per f32, so `τb` halves). The random
    /// access latency `τl` is a cache-line/TLB cost, not a width cost,
    /// and stays put — which is why f32 shifts the Var#1→Var#6 switch-over
    /// *down* in `k`: the heap term grows relative to everything else.
    pub fn for_scalar<T: gsknn_scalar::GsknnScalar>(&self) -> Self {
        let ratio = T::BYTES as f64 / 8.0;
        MachineParams {
            tau_f: self.tau_f / ratio,
            tau_b: self.tau_b * ratio,
            tau_l: self.tau_l,
            ..*self
        }
    }
}

/// One kernel problem size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProblemSize {
    /// Number of queries.
    pub m: usize,
    /// Number of references.
    pub n: usize,
    /// Dimension.
    pub d: usize,
    /// Neighbors kept.
    pub k: usize,
}

/// Which implementation the model predicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Approach {
    /// GSKNN Var#1 (fused tile selection, binary heap).
    Var1,
    /// GSKNN Var#6 (post-hoc selection, 4-heap, stores `C`).
    Var6,
    /// Algorithm 2.1: GEMM + post-hoc selection.
    Gemm,
}

/// The performance model, parameterized by machine constants and the
/// blocking parameters of the kernel under prediction.
///
/// ```
/// use gsknn_core::{MachineParams, Model, ProblemSize, Variant};
/// let model = Model::new(MachineParams::ivy_bridge_1core());
/// let small_k = ProblemSize { m: 8192, n: 8192, d: 64, k: 16 };
/// assert_eq!(model.choose_variant(&small_k), Variant::Var1);
/// let large_k = ProblemSize { k: 4096, ..small_k };
/// assert_eq!(model.choose_variant(&large_k), Variant::Var6);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Model {
    machine: MachineParams,
    blocks: GemmParams,
}

impl Model {
    /// Model with the paper's blocking parameters.
    pub fn new(machine: MachineParams) -> Self {
        Model {
            machine,
            blocks: GemmParams::ivy_bridge(),
        }
    }

    /// Model with explicit blocking parameters.
    pub fn with_blocks(machine: MachineParams, blocks: GemmParams) -> Self {
        Model { machine, blocks }
    }

    /// The machine constants in use.
    pub fn machine(&self) -> &MachineParams {
        &self.machine
    }

    fn logk(k: usize) -> f64 {
        (k.max(1) as f64).log2()
    }

    /// Useful flop count `(2d+3)mn` — the numerator of the paper's GFLOPS
    /// plots.
    pub fn flops(&self, p: &ProblemSize) -> f64 {
        (2 * p.d + 3) as f64 * p.m as f64 * p.n as f64
    }

    /// Eq. (3): `Tf + To` in seconds (identical for all approaches).
    pub fn t_compute(&self, p: &ProblemSize) -> f64 {
        let mn = p.m as f64 * p.n as f64;
        let heap_ops = p.m as f64 * p.k as f64 * Self::logk(p.k);
        (self.flops(p) + 24.0 * self.machine.epsilon * (mn + heap_ops)) / self.machine.tau_f
    }

    /// Slow-memory time for GSKNN Var#1.
    pub fn tm_var1(&self, p: &ProblemSize) -> f64 {
        let (m, n, d, k) = (p.m as f64, p.n as f64, p.d as f64, p.k);
        let mach = &self.machine;
        let jc_blocks = (p.n as f64 / self.blocks.nc as f64).ceil().max(1.0);
        let d_blocks = (p.d as f64 / self.blocks.dc as f64).ceil().max(1.0);
        let pack_r = mach.tau_b * (n * d + 2.0 * n);
        let pack_q = mach.tau_b * (d * m + 2.0 * m) * jc_blocks;
        let cc_spill = mach.tau_b * (d_blocks - 1.0) * m * n;
        let heap = 2.0 * mach.tau_l * mach.epsilon * m * k as f64 * Self::logk(k);
        pack_r + pack_q + cc_spill + heap
    }

    /// Slow-memory time for GSKNN Var#6 (Eq. 4) with the 4-heap's
    /// contiguous-rate heap term.
    pub fn tm_var6(&self, p: &ProblemSize) -> f64 {
        let (m, n, k) = (p.m as f64, p.n as f64, p.k);
        let mach = &self.machine;
        // Var#1's terms with the heap at τb instead of τl, plus storing C.
        let heap_delta =
            2.0 * (mach.tau_b - mach.tau_l) * mach.epsilon * m * k as f64 * Self::logk(k);
        self.tm_var1(p) + heap_delta + mach.tau_b * m * n
    }

    /// Slow-memory time for the GEMM approach (Eq. 5).
    pub fn tm_gemm(&self, p: &ProblemSize) -> f64 {
        let (m, n, d) = (p.m as f64, p.n as f64, p.d as f64);
        self.tm_var1(p) + self.machine.tau_b * (d * m + d * n + 2.0 * m * n)
    }

    /// Total predicted time in seconds.
    pub fn predict(&self, p: &ProblemSize, which: Approach) -> f64 {
        let tm = match which {
            Approach::Var1 => self.tm_var1(p),
            Approach::Var6 => self.tm_var6(p),
            Approach::Gemm => self.tm_gemm(p),
        };
        self.t_compute(p) + tm
    }

    /// Predicted efficiency in GFLOPS (the paper's y-axis).
    pub fn gflops(&self, p: &ProblemSize, which: Approach) -> f64 {
        self.flops(p) / self.predict(p, which) / 1e9
    }

    /// Pick the faster of Var#1/Var#6 (§2.6 "Switching between
    /// variants").
    pub fn choose_variant(&self, p: &ProblemSize) -> Variant {
        if self.predict(p, Approach::Var1) <= self.predict(p, Approach::Var6) {
            Variant::Var1
        } else {
            Variant::Var6
        }
    }

    /// The predicted Var#1→Var#6 switch-over `k` for fixed `m, n, d`
    /// (the light-blue dotted threshold of Figure 5), or `None` if Var#1
    /// wins through `k_max`.
    pub fn threshold_k(&self, m: usize, n: usize, d: usize, k_max: usize) -> Option<usize> {
        (1..=k_max).find(|&k| {
            let p = ProblemSize { m, n, d, k };
            self.predict(&p, Approach::Var6) < self.predict(&p, Approach::Var1)
        })
    }

    /// Runtime estimate for the task-parallel scheduler (§2.5): the
    /// predicted time of the auto-selected variant.
    pub fn estimate_runtime(&self, p: &ProblemSize) -> f64 {
        self.predict(p, Approach::Var1)
            .min(self.predict(p, Approach::Var6))
    }

    /// Itemized slow-memory terms — the rows of the paper's Table 4 —
    /// in seconds, for display/debugging (`bench`'s `table4` harness).
    /// The sum equals the corresponding `tm_*` total.
    pub fn tm_terms(&self, p: &ProblemSize, which: Approach) -> Vec<(&'static str, f64)> {
        let mut terms = Vec::new();
        self.tm_terms_into(p, which, &mut terms);
        terms
    }

    /// [`Model::tm_terms`] into a caller-owned buffer (cleared first), so
    /// a per-batch caller — the serving coalescer records these on every
    /// flush — reuses one allocation instead of building a fresh `Vec`.
    pub fn tm_terms_into(
        &self,
        p: &ProblemSize,
        which: Approach,
        terms: &mut Vec<(&'static str, f64)>,
    ) {
        terms.clear();
        let (m, n, d, k) = (p.m as f64, p.n as f64, p.d as f64, p.k);
        let mach = &self.machine;
        let jc_blocks = (p.n as f64 / self.blocks.nc as f64).ceil().max(1.0);
        let d_blocks = (p.d as f64 / self.blocks.dc as f64).ceil().max(1.0);
        terms.push(("pack Rc + R2c", mach.tau_b * (n * d + 2.0 * n)));
        terms.push((
            "pack Qc + Qc2 (per jc block)",
            mach.tau_b * (d * m + 2.0 * m) * jc_blocks,
        ));
        terms.push(("Cc rank-dc spill", mach.tau_b * (d_blocks - 1.0) * m * n));
        let adjustments = mach.epsilon * m * k as f64 * Self::logk(k);
        match which {
            Approach::Var1 => {
                terms.push((
                    "heap (binary, random access)",
                    2.0 * mach.tau_l * adjustments,
                ));
            }
            Approach::Var6 => {
                terms.push((
                    "heap (4-ary, cache-line access)",
                    2.0 * mach.tau_b * adjustments,
                ));
                terms.push(("store C", mach.tau_b * m * n));
            }
            Approach::Gemm => {
                terms.push((
                    "heap (binary, random access)",
                    2.0 * mach.tau_l * adjustments,
                ));
                terms.push(("collect Q, R", mach.tau_b * (d * m + d * n)));
                terms.push(("C write + re-read", mach.tau_b * 2.0 * m * n));
            }
        }
    }

    /// §4's alternative metric: predicted **instructions per cycle**.
    ///
    /// "GFLOPS doesn't capture the efficiency very well [in low d, large
    /// k], since the runtime is dominated by heap selections, which don't
    /// involve any floating point operation. ... IPC that includes the
    /// instruction count in the neighbor selections can be converted from
    /// Table 4 by summing up all floating point, non-floating point and
    /// memory operations together."
    ///
    /// Instruction accounting (documented approximations):
    /// * arithmetic — `(2d+3)mn` flops at 8 flops per 256-bit FMA;
    /// * selection — 12 instructions per heap adjustment,
    ///   `ε·m·k·log₂k` adjustments (§2.6's `To` term before the ×2
    ///   flop-equivalent conversion);
    /// * memory — one instruction per 4-element vector transfer of the
    ///   `Tm` traffic, plus one per random heap access.
    pub fn predicted_ipc(&self, p: &ProblemSize, which: Approach, clock_hz: f64) -> f64 {
        let (m, _n, _d, k) = (p.m as f64, p.n as f64, p.d as f64, p.k);
        let mach = &self.machine;
        let flop_instr = self.flops(p) / 8.0;
        let adjustments = mach.epsilon * m * k as f64 * Self::logk(k);
        let sel_instr = 12.0 * adjustments;
        // contiguous traffic (elements) = non-heap Tm / τb
        let heap_s = 2.0 * mach.tau_l * mach.epsilon * m * k as f64 * Self::logk(k);
        let tm = match which {
            Approach::Var1 => self.tm_var1(p),
            Approach::Var6 => self.tm_var6(p),
            Approach::Gemm => self.tm_gemm(p),
        };
        let stream_elems = (tm - heap_s).max(0.0) / mach.tau_b;
        let mem_instr = stream_elems / 4.0 + 2.0 * adjustments;
        let cycles = self.predict(p, which) * clock_hz * mach.cores as f64;
        (flop_instr + sel_instr + mem_instr) / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Model {
        Model::new(MachineParams::ivy_bridge_1core())
    }

    fn p(m: usize, n: usize, d: usize, k: usize) -> ProblemSize {
        ProblemSize { m, n, d, k }
    }

    #[test]
    fn gemm_is_never_faster_than_var1() {
        let model = model();
        for d in [4, 16, 64, 256, 1024] {
            for k in [1, 16, 512, 2048] {
                let ps = p(8192, 8192, d, k);
                assert!(
                    model.predict(&ps, Approach::Gemm) > model.predict(&ps, Approach::Var1),
                    "d={d} k={k}"
                );
            }
        }
    }

    #[test]
    fn gemm_gap_shrinks_with_d() {
        // The paper: GEMM is memory bound in low d; the relative gap
        // narrows as d grows because the 2τb·mn C-traffic amortizes.
        let model = model();
        let lo = p(8192, 8192, 16, 16);
        let hi = p(8192, 8192, 1024, 16);
        let ratio_lo = model.predict(&lo, Approach::Gemm) / model.predict(&lo, Approach::Var1);
        let ratio_hi = model.predict(&hi, Approach::Gemm) / model.predict(&hi, Approach::Var1);
        assert!(ratio_lo > ratio_hi);
        assert!(ratio_lo > 1.5, "low-d speedup should be large: {ratio_lo}");
        assert!(ratio_hi < 1.3, "high-d speedup should be small: {ratio_hi}");
    }

    #[test]
    fn var1_wins_small_k_var6_wins_large_k() {
        let model = model();
        let small = p(8192, 8192, 64, 16);
        assert_eq!(model.choose_variant(&small), Variant::Var1);
        let large = p(8192, 8192, 64, 4096);
        assert_eq!(model.choose_variant(&large), Variant::Var6);
    }

    #[test]
    fn threshold_exists_and_orders_decisions() {
        let model = model();
        let thr = model.threshold_k(8192, 8192, 64, 8192).expect("threshold");
        assert!(thr > 16, "threshold too small: {thr}");
        // below the threshold Var#1 is chosen, at it Var#6
        assert_eq!(
            model.choose_variant(&p(8192, 8192, 64, thr - 1)),
            Variant::Var1
        );
        assert_eq!(model.choose_variant(&p(8192, 8192, 64, thr)), Variant::Var6);
    }

    #[test]
    fn gflops_bounded_by_peak() {
        let model = model();
        for d in [8, 128, 1024] {
            let g = model.gflops(&p(8192, 8192, d, 16), Approach::Var1);
            assert!(g > 0.0 && g < model.machine().tau_f / 1e9, "d={d}: {g}");
        }
    }

    #[test]
    fn efficiency_increases_with_d_within_a_dc_block() {
        // Figure 4's main shape: GFLOPS grows with d — except for the
        // periodic drop each time d crosses a dc stride and the Cc spill
        // grows ("the slow memory cost of Cc increases every dc stride;
        // thus, the performance will drop periodically", §4). Check
        // monotonicity inside the first block and overall growth.
        let model = model();
        let mut prev = 0.0;
        for d in [8, 32, 128, 256] {
            let g = model.gflops(&p(8192, 8192, d, 16), Approach::Var1);
            assert!(g > prev, "d={d}: {g} <= {prev}");
            prev = g;
        }
        let g_high = model.gflops(&p(8192, 8192, 1024, 16), Approach::Var1);
        let g_low = model.gflops(&p(8192, 8192, 8, 16), Approach::Var1);
        assert!(g_high > 1.3 * g_low, "{g_high} vs {g_low}");
        // and the dip at the dc boundary exists
        let before = model.gflops(&p(8192, 8192, 256, 16), Approach::Var1);
        let after = model.gflops(&p(8192, 8192, 257, 16), Approach::Var1);
        assert!(after < before, "expected the periodic Cc-spill dip");
    }

    #[test]
    fn efficiency_degrades_with_k() {
        let model = model();
        let mut prev = f64::INFINITY;
        for k in [16, 128, 512, 2048] {
            let g = model.gflops(&p(8192, 8192, 64, k), Approach::Var1);
            assert!(g < prev, "k={k}: {g} >= {prev}");
            prev = g;
        }
    }

    #[test]
    fn ten_core_predicts_higher_gflops() {
        let one = Model::new(MachineParams::ivy_bridge_1core());
        let ten = Model::new(MachineParams::ivy_bridge_10core());
        let ps = p(8192, 8192, 256, 16);
        assert!(ten.gflops(&ps, Approach::Var1) > 4.0 * one.gflops(&ps, Approach::Var1));
    }

    #[test]
    fn cc_spill_kicks_in_past_dc() {
        let model = model();
        // crossing dc=256 adds the Cc term: a visible jump in Tm
        let below = model.tm_var1(&p(4096, 4096, 256, 16));
        let above = model.tm_var1(&p(4096, 4096, 257, 16));
        let jump = above - below;
        let mn_traffic = model.machine().tau_b * 4096.0 * 4096.0;
        assert!(jump > 0.9 * mn_traffic, "Cc spill jump missing: {jump}");
    }

    #[test]
    fn tm_terms_sum_to_totals() {
        let model = model();
        for (d, k) in [(16usize, 16usize), (300, 512), (1024, 2048)] {
            let ps = p(4096, 8192, d, k);
            for (a, total) in [
                (Approach::Var1, model.tm_var1(&ps)),
                (Approach::Var6, model.tm_var6(&ps)),
                (Approach::Gemm, model.tm_gemm(&ps)),
            ] {
                let sum: f64 = model.tm_terms(&ps, a).iter().map(|(_, v)| v).sum();
                assert!(
                    (sum - total).abs() <= 1e-12 * total.abs().max(1e-30),
                    "{a:?} d={d} k={k}: {sum} vs {total}"
                );
            }
        }
    }

    #[test]
    fn ipc_is_positive_and_superscalar_bounded() {
        let model = model();
        let clock = 3.54e9;
        for (d, k) in [(16usize, 16usize), (16, 2048), (1024, 16), (1024, 2048)] {
            for a in [Approach::Var1, Approach::Var6, Approach::Gemm] {
                let ipc = model.predicted_ipc(&p(8192, 8192, d, k), a, clock);
                assert!(ipc > 0.0 && ipc < 8.0, "d={d} k={k} {a:?}: {ipc}");
            }
        }
    }

    #[test]
    fn ipc_degrades_less_than_gflops_in_heap_bound_regime() {
        // §4: GFLOPS collapses when heap selection dominates, IPC does
        // not — the selection instructions still count as work.
        let model = model();
        let clock = 3.54e9;
        let light = p(8192, 8192, 16, 16);
        let heavy = p(8192, 8192, 16, 2048);
        let gflops_ratio =
            model.gflops(&heavy, Approach::Var6) / model.gflops(&light, Approach::Var6);
        let ipc_ratio = model.predicted_ipc(&heavy, Approach::Var6, clock)
            / model.predicted_ipc(&light, Approach::Var6, clock);
        assert!(
            ipc_ratio > gflops_ratio,
            "IPC should fall less than GFLOPS: {ipc_ratio} vs {gflops_ratio}"
        );
    }

    #[test]
    fn f32_machine_doubles_flops_and_halves_stream_cost() {
        let m64 = MachineParams::ivy_bridge_1core();
        let m32 = m64.for_scalar::<f32>();
        assert_eq!(m32.tau_f, 2.0 * m64.tau_f);
        assert_eq!(m32.tau_b, m64.tau_b / 2.0);
        assert_eq!(m32.tau_l, m64.tau_l, "latency is width-independent");
        assert_eq!(m32.epsilon, m64.epsilon);
        // f64 is the baseline: rescaling to f64 is the identity
        assert_eq!(m64.for_scalar::<f64>(), m64);
    }

    #[test]
    fn f32_lowers_the_variant_switch_threshold() {
        // With τl fixed while τf/τb improve, the binary heap's random
        // accesses dominate sooner — Var#6 should win at a smaller k.
        let m64 = Model::new(MachineParams::ivy_bridge_1core());
        let m32 = Model::new(MachineParams::ivy_bridge_1core().for_scalar::<f32>());
        let t64 = m64
            .threshold_k(8192, 8192, 64, 8192)
            .expect("f64 threshold");
        let t32 = m32
            .threshold_k(8192, 8192, 64, 8192)
            .expect("f32 threshold");
        assert!(t32 < t64, "f32 {t32} should switch below f64 {t64}");
    }

    #[test]
    fn estimate_runtime_scales_with_problem() {
        let model = model();
        let t1 = model.estimate_runtime(&p(1024, 1024, 64, 16));
        let t2 = model.estimate_runtime(&p(2048, 2048, 64, 16));
        assert!(t2 > 3.0 * t1, "quadratic growth expected: {t1} {t2}");
    }
}
