//! Phase-level observability for the six-loop nest.
//!
//! Every phase of the fused kernel — gather-packing of `Rc`/`Qc`, the
//! rank-dc micro-kernel (including `Cc`/`C` traffic), heap selection and
//! the final table writeback — is wrapped in a [`PhaseSet::time`] span at
//! exactly one Goto-loop level, so the measured breakdown lines up
//! one-to-one with the terms of the §2.6 performance model
//! ([`crate::Model::tm_terms`]).
//!
//! The probes are **compiled out** unless the `obs` cargo feature is
//! enabled: without it [`PhaseSet`] is a zero-sized type and
//! [`PhaseSet::time`] is an `#[inline(always)]` identity wrapper, so the
//! micro-kernel hot path carries no timing instructions (the guard test
//! in `tests/obs_guard.rs` checks both properties). With `obs` on,
//! spans read the TSC on x86_64 (calibrated against `Instant` once) and
//! fall back to a monotonic-clock anchor elsewhere.

/// One phase of the fused kernel, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// 6th/5th loop: gather-pack `Rc` + `R2c` from `X`.
    PackR,
    /// 4th loop: gather-pack `Qc` + `Qc2` from `X`.
    PackQ,
    /// 1st loop: rank-dc micro-kernel tiles, `Cc` spill writes and the
    /// buffered variants' `C` stores.
    RankDc,
    /// Heap selection (fused tile scan or buffered block scan).
    Select,
    /// Draining heaps into the sorted neighbor table.
    Writeback,
}

/// Number of [`Phase`] values.
pub const PHASE_COUNT: usize = 5;

impl Phase {
    /// All phases in pipeline order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::PackR,
        Phase::PackQ,
        Phase::RankDc,
        Phase::Select,
        Phase::Writeback,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::PackR => "gather-pack R",
            Phase::PackQ => "gather-pack Q",
            Phase::RankDc => "rank-dc kernel",
            Phase::Select => "selection",
            Phase::Writeback => "writeback",
        }
    }

    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    #[inline(always)]
    fn index(self) -> usize {
        self as usize
    }
}

/// Whether phase timing is compiled into this build.
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// Per-phase accumulated time and span counts.
///
/// Zero-sized no-op without the `obs` feature — safe to embed in the
/// per-thread workspace and call on the hot path unconditionally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSet {
    #[cfg(feature = "obs")]
    ticks: [u64; PHASE_COUNT],
    #[cfg(feature = "obs")]
    counts: [u64; PHASE_COUNT],
}

impl PhaseSet {
    /// Empty set (all phases zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero all accumulators.
    #[inline(always)]
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Run `f`, attributing its wall time to `phase`.
    #[cfg(feature = "obs")]
    #[inline(always)]
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = clock::now_ticks();
        let r = f();
        self.ticks[phase.index()] += clock::now_ticks().wrapping_sub(t0);
        self.counts[phase.index()] += 1;
        r
    }

    /// Run `f` (no timing — `obs` feature disabled).
    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub fn time<R>(&mut self, _phase: Phase, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Fold another set into this one (per-worker merge).
    #[inline]
    pub fn merge(&mut self, other: &PhaseSet) {
        #[cfg(feature = "obs")]
        for i in 0..PHASE_COUNT {
            self.ticks[i] += other.ticks[i];
            self.counts[i] += other.counts[i];
        }
        let _ = other;
    }

    /// Accumulated seconds attributed to `phase` (0.0 when disabled).
    pub fn seconds(&self, phase: Phase) -> f64 {
        #[cfg(feature = "obs")]
        {
            self.ticks[phase.index()] as f64 / clock::ticks_per_sec()
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = phase;
            0.0
        }
    }

    /// Number of spans recorded for `phase` (0 when disabled).
    pub fn count(&self, phase: Phase) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.counts[phase.index()]
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = phase;
            0
        }
    }

    /// Sum of all phase times in seconds.
    pub fn total_seconds(&self) -> f64 {
        Phase::ALL.iter().map(|&p| self.seconds(p)).sum()
    }

    /// `(phase, seconds, spans)` rows in pipeline order.
    pub fn rows(&self) -> Vec<(Phase, f64, u64)> {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.seconds(p), self.count(p)))
            .collect()
    }
}

#[cfg(feature = "obs")]
mod clock {
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Monotonic tick counter: TSC on x86_64, nanoseconds since an
    /// anchor elsewhere.
    #[inline(always)]
    pub fn now_ticks() -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: RDTSC has no memory effects and is available on
            // every x86_64 this kernel targets.
            unsafe { core::arch::x86_64::_rdtsc() }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            anchor().elapsed().as_nanos() as u64
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn anchor() -> &'static Instant {
        static ANCHOR: OnceLock<Instant> = OnceLock::new();
        ANCHOR.get_or_init(Instant::now)
    }

    /// Tick rate, calibrated once against the monotonic clock.
    pub fn ticks_per_sec() -> f64 {
        #[cfg(target_arch = "x86_64")]
        {
            static RATE: OnceLock<f64> = OnceLock::new();
            *RATE.get_or_init(|| {
                let wall = Instant::now();
                let t0 = now_ticks();
                // ~5 ms busy-wait gives the TSC rate to well under 1%.
                while wall.elapsed().as_micros() < 5_000 {
                    std::hint::spin_loop();
                }
                let dt = now_ticks().wrapping_sub(t0) as f64;
                dt / wall.elapsed().as_secs_f64()
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_closure_value() {
        let mut ps = PhaseSet::new();
        let v = ps.time(Phase::RankDc, || 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn rows_cover_all_phases_in_order() {
        let ps = PhaseSet::new();
        let rows = ps.rows();
        assert_eq!(rows.len(), PHASE_COUNT);
        assert_eq!(rows[0].0, Phase::PackR);
        assert_eq!(rows[4].0, Phase::Writeback);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn spans_accumulate_time_and_counts() {
        let mut ps = PhaseSet::new();
        for _ in 0..3 {
            ps.time(Phase::Select, || {
                std::hint::black_box((0..20_000u64).sum::<u64>())
            });
        }
        assert_eq!(ps.count(Phase::Select), 3);
        assert!(ps.seconds(Phase::Select) > 0.0);
        assert_eq!(ps.count(Phase::PackR), 0);
        assert!((ps.total_seconds() - ps.seconds(Phase::Select)).abs() < 1e-12);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn merge_sums_workers() {
        let mut a = PhaseSet::new();
        let mut b = PhaseSet::new();
        a.time(Phase::PackQ, || std::hint::black_box(1 + 1));
        b.time(Phase::PackQ, || std::hint::black_box(2 + 2));
        b.time(Phase::RankDc, || std::hint::black_box(3 + 3));
        let secs_a = a.seconds(Phase::PackQ);
        let secs_b = b.seconds(Phase::PackQ);
        a.merge(&b);
        assert_eq!(a.count(Phase::PackQ), 2);
        assert_eq!(a.count(Phase::RankDc), 1);
        assert!((a.seconds(Phase::PackQ) - (secs_a + secs_b)).abs() < 1e-9);
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn disabled_set_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<PhaseSet>(), 0);
        let mut ps = PhaseSet::new();
        ps.time(Phase::RankDc, || ());
        assert_eq!(ps.count(Phase::RankDc), 0);
        assert_eq!(ps.total_seconds(), 0.0);
    }
}
