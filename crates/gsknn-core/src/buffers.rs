//! Reusable per-kernel workspace: every packed panel and distance buffer
//! the six-loop nest needs, allocated once (64-byte aligned) and grown on
//! demand so repeated kernel invocations — the approximate solvers call
//! the kernel thousands of times — never allocate on the hot path.

use crate::obs::PhaseSet;
use gemm_kernel::AlignedBuf;
use gsknn_scalar::GsknnScalar;

serde::impl_struct_serde!(KernelStats {
    tiles,
    rows_filtered,
    rows_scanned,
    candidates_offered,
    candidates_kept,
});

/// Observability counters collected by the serial driver (zeroed at the
/// start of each [`crate::Gsknn::run`]/`update`). They quantify how often
/// the §2.4 vectorized root filter achieves the heap's O(n) best case —
/// the mechanism GSKNN's small-`k` advantage rests on.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Finalized micro-tiles produced.
    pub tiles: u64,
    /// Tile rows discarded whole by the broadcast-compare root filter
    /// (no heap interaction at all — the O(n) case).
    pub rows_filtered: u64,
    /// Tile rows that reached the scalar candidate scan.
    pub rows_scanned: u64,
    /// Candidates that passed the stale-threshold check and were offered
    /// to a heap.
    pub candidates_offered: u64,
    /// Candidates actually kept by a heap (caused an insert/replace).
    pub candidates_kept: u64,
}

impl KernelStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.tiles += other.tiles;
        self.rows_filtered += other.rows_filtered;
        self.rows_scanned += other.rows_scanned;
        self.candidates_offered += other.candidates_offered;
        self.candidates_kept += other.candidates_kept;
    }

    /// Fraction of tile rows the filter discarded without touching a
    /// heap (1.0 = perfect best case).
    pub fn filter_rate(&self) -> f64 {
        let total = self.rows_filtered + self.rows_scanned;
        if total == 0 {
            0.0
        } else {
            self.rows_filtered as f64 / total as f64
        }
    }

    /// Fraction of offered candidates a heap actually kept (0.0 when
    /// nothing was offered). High values mean the stale-threshold check
    /// passes candidates that still win — the heap is doing real work;
    /// low values mean most offers bounce off the root.
    pub fn selection_rate(&self) -> f64 {
        if self.candidates_offered == 0 {
            0.0
        } else {
            self.candidates_kept as f64 / self.candidates_offered as f64
        }
    }
}

/// Scratch buffers for one kernel execution context (one thread),
/// parameterized by the element type the kernel runs in.
#[derive(Default, Debug)]
pub struct GsknnWorkspace<T: GsknnScalar = f64> {
    /// Packed query panel `Qc` (`⌈mcb/MR⌉·MR × dcb`, Z-shape).
    pub q_pack: AlignedBuf<T>,
    /// Packed reference panel `Rc` (`⌈ncb/NR⌉·NR × dcb`, Z-shape).
    pub r_pack: AlignedBuf<T>,
    /// Gathered query squared norms `Qc2` (`mcb`, MR-padded).
    pub q2_pack: AlignedBuf<T>,
    /// Gathered reference squared norms `R2c` (`ncb`, NR-padded).
    pub r2_pack: AlignedBuf<T>,
    /// Rank-dc accumulation buffer `Cc` (only used when `d > dc`, or by
    /// the buffered variants Var#2/3/5/6 as their distance store).
    pub cc: AlignedBuf<T>,
    /// Distance strip for buffered selection (Var#2/Var#3).
    pub dist: AlignedBuf<T>,
    /// Counters for the most recent serial run.
    pub stats: KernelStats,
    /// Phase timings for the most recent run (zero-sized no-op unless
    /// the `obs` feature is enabled).
    pub phases: PhaseSet,
}

impl<T: GsknnScalar> GsknnWorkspace<T> {
    /// Fresh workspace; buffers allocate lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_independently() {
        let mut ws: GsknnWorkspace = GsknnWorkspace::new();
        ws.q_pack.resize(128);
        ws.cc.resize(1024);
        assert_eq!(ws.q_pack.len(), 128);
        assert_eq!(ws.cc.len(), 1024);
        assert_eq!(ws.r_pack.len(), 0);
    }

    fn sample_stats() -> KernelStats {
        KernelStats {
            tiles: 7,
            rows_filtered: 40,
            rows_scanned: 10,
            candidates_offered: 25,
            candidates_kept: 5,
        }
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = sample_stats();
        let b = KernelStats {
            tiles: 3,
            rows_filtered: 2,
            rows_scanned: 8,
            candidates_offered: 15,
            candidates_kept: 1,
        };
        a.merge(&b);
        assert_eq!(
            a,
            KernelStats {
                tiles: 10,
                rows_filtered: 42,
                rows_scanned: 18,
                candidates_offered: 40,
                candidates_kept: 6,
            }
        );
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut a = sample_stats();
        a.merge(&KernelStats::default());
        assert_eq!(a, sample_stats());
        let mut zero = KernelStats::default();
        zero.merge(&sample_stats());
        assert_eq!(zero, sample_stats());
    }

    #[test]
    fn rates_are_zero_safe() {
        let zero = KernelStats::default();
        assert_eq!(zero.filter_rate(), 0.0);
        assert_eq!(zero.selection_rate(), 0.0);
        let s = sample_stats();
        assert!((s.filter_rate() - 0.8).abs() < 1e-12);
        assert!((s.selection_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stats_round_trip_through_serde() {
        use serde::{Deserialize, Serialize};
        let s = sample_stats();
        let v = s.to_value();
        assert_eq!(v.get("tiles").and_then(|t| t.as_u64()), Some(7));
        let back = KernelStats::from_value(&v).expect("deserialize");
        assert_eq!(back, s);
        // missing field is an error, not a silent default
        let empty = serde_json::from_str("{}").expect("parse");
        assert!(KernelStats::from_value(&empty).is_err());
    }
}
