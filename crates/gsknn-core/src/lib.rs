//! # GSKNN — General Stride K-Nearest Neighbors
//!
//! A faithful Rust implementation of the fused kNN kernel of
//! *Yu, Huang, Austin, Xiao & Biros, "Performance Optimization for the
//! K-Nearest Neighbors Kernel on x86 Architectures", SC'15*.
//!
//! The kernel solves many small exact-search problems — given a global
//! coordinate table `X` (d×N, column-major) and index lists `q` (m query
//! ids) and `r` (n reference ids), find for every query its `k` nearest
//! references — by embedding the three phases of the classical GEMM
//! decomposition (gather, distance GEMM, heap selection) inside one
//! Goto-style six-loop blocked kernel:
//!
//! * **gather-packing** straight from `X` into cache-sized panels
//!   (no dense `Q`/`R` ever materialized),
//! * a register-blocked **rank-dc micro-kernel** computing an `MR×NR`
//!   tile of squared distances,
//! * **heap selection fused** at one of five legal loop levels
//!   ([`Variant`]); Var#1 consumes each tile while it is still hot and
//!   never writes the distance matrix back to memory.
//!
//! ```
//! use dataset::{uniform, DistanceKind};
//! use gsknn_core::{Gsknn, GsknnConfig};
//!
//! let x = uniform(1000, 16, 42);                 // 1000 points in 16-d
//! let q: Vec<usize> = (0..128).collect();        // queries = first 128 ids
//! let r: Vec<usize> = (0..1000).collect();       // references = everything
//! let mut exec = Gsknn::new(GsknnConfig::default());
//! let table = exec.run(&x, &q, &r, 8, DistanceKind::SqL2);
//! assert_eq!(table.row(0)[0].idx, 0);            // nearest to x0 is x0 itself
//! ```
//!
//! The crate also provides the paper's §2.5 parallel schemes
//! ([`parallel`], [`scheduler`]) and the §2.6 performance model
//! ([`model`]) used for variant switching and task scheduling.

pub mod buffers;
pub mod kernel;
pub mod microkernel;
pub mod model;
pub mod obs;
pub mod packing;
pub mod parallel;
pub mod params;
pub mod scheduler;
pub mod variants;

pub use buffers::{GsknnWorkspace, KernelStats};
pub use kernel::{BatchScratch, Gsknn, GsknnConfig};
pub use microkernel::{set_simd_level, simd_level, FusedScalar, SimdLevel};
pub use model::{MachineParams, Model, ProblemSize};
pub use obs::{Phase, PhaseSet};
pub use params::Variant;

// Re-export the types a caller needs to drive the kernel.
pub use dataset::{DistanceKind, PointSet};
pub use gemm_kernel::GemmParams;
pub use gsknn_scalar::GsknnScalar;
pub use knn_select::{Neighbor, NeighborTable};
