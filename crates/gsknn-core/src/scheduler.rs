//! Task-parallel GSKNN (§2.5): many small independent kernels — the
//! leaves of a randomized KD-tree, the buckets of an LSH table — each too
//! small to data-parallelize profitably, scheduled across `p` workers.
//!
//! The paper's scheme: estimate each kernel's runtime with the §2.6 model,
//! sort descending, and greedily assign each task to the worker with the
//! least accumulated time — LPT (longest processing time) list
//! scheduling, Graham's classic 4/3-approximation on homogeneous workers.

use crate::kernel::{Gsknn, GsknnConfig};
use crate::model::{MachineParams, Model, ProblemSize};
use dataset::{DistanceKind, PointSet};
use knn_select::NeighborTable;

/// One independent kNN kernel invocation.
#[derive(Clone, Debug)]
pub struct KnnTask {
    /// Query ids into the shared coordinate table.
    pub q_idx: Vec<usize>,
    /// Reference ids.
    pub r_idx: Vec<usize>,
    /// Neighbors to keep.
    pub k: usize,
}

/// Greedy LPT assignment: returns `p` buckets of task indices. Costs must
/// be non-negative; ties broken by original order (stable).
pub fn lpt_schedule(costs: &[f64], p: usize) -> Vec<Vec<usize>> {
    assert!(p > 0, "need at least one worker");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .expect("NaN task cost")
            .then(a.cmp(&b))
    });
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); p];
    let mut loads = vec![0.0f64; p];
    for t in order {
        // worker with the smallest accumulated load (first on ties)
        let w = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i)
            .expect("p > 0");
        buckets[w].push(t);
        loads[w] += costs[t];
    }
    buckets
}

/// The makespan (max worker load) of a schedule under the given costs.
pub fn makespan(schedule: &[Vec<usize>], costs: &[f64]) -> f64 {
    schedule
        .iter()
        .map(|b| b.iter().map(|&t| costs[t]).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Run `tasks` against `x` on `p` workers with model-guided LPT
/// scheduling. Returns one [`NeighborTable`] per task, in task order.
///
/// Each worker owns a private [`Gsknn`] context (workspace reuse within a
/// worker, zero sharing between workers).
pub fn run_task_parallel(
    x: &PointSet,
    tasks: &[KnnTask],
    kind: DistanceKind,
    cfg: &GsknnConfig,
    machine: MachineParams,
    p: usize,
) -> Vec<NeighborTable> {
    let model = Model::new(machine);
    let costs: Vec<f64> = tasks
        .iter()
        .map(|t| {
            model.estimate_runtime(&ProblemSize {
                m: t.q_idx.len(),
                n: t.r_idx.len(),
                d: x.dim(),
                k: t.k,
            })
        })
        .collect();
    let schedule = lpt_schedule(&costs, p.max(1));

    let mut results: Vec<Option<NeighborTable>> = vec![None; tasks.len()];
    // Hand each worker its bucket plus a matching slice of result slots.
    // Results are scattered, so collect per worker and write back after.
    let worker_outputs: Vec<Vec<(usize, NeighborTable)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = schedule
            .iter()
            .map(|bucket| {
                let cfg = cfg.clone();
                scope.spawn(move |_| {
                    let mut exec = Gsknn::new(cfg);
                    bucket
                        .iter()
                        .map(|&t| {
                            let task = &tasks[t];
                            (t, exec.run(x, &task.q_idx, &task.r_idx, task.k, kind))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope");

    for out in worker_outputs {
        for (t, table) in out {
            results[t] = Some(table);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every task scheduled exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;

    #[test]
    fn lpt_distributes_equal_tasks_evenly() {
        let costs = vec![1.0; 8];
        let s = lpt_schedule(&costs, 4);
        assert!(s.iter().all(|b| b.len() == 2));
        assert!((makespan(&s, &costs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_biggest_tasks_go_first_and_spread() {
        let costs = vec![5.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let s = lpt_schedule(&costs, 2);
        // the 5.0 task must sit alone-ish: makespan 5, not 6+
        assert!(makespan(&s, &costs) <= 5.0 + 1e-12);
    }

    #[test]
    fn lpt_within_graham_bound() {
        // Graham: LPT makespan <= (4/3 - 1/(3p)) * OPT; check against the
        // trivial lower bound max(total/p, max_cost).
        let costs: Vec<f64> = (1..=37).map(|i| ((i * 7919) % 100 + 1) as f64).collect();
        for p in [1usize, 2, 3, 5, 8] {
            let s = lpt_schedule(&costs, p);
            let total: f64 = costs.iter().sum();
            let lower = (total / p as f64).max(costs.iter().cloned().fold(0.0, f64::max));
            let bound = (4.0 / 3.0 - 1.0 / (3.0 * p as f64)) * lower;
            assert!(
                makespan(&s, &costs) <= bound + 1e-9,
                "p={p}: {} > {}",
                makespan(&s, &costs),
                bound
            );
        }
    }

    #[test]
    fn every_task_scheduled_exactly_once() {
        let costs = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        let s = lpt_schedule(&costs, 3);
        let mut seen: Vec<usize> = s.concat();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn task_parallel_matches_serial_execution() {
        let x = uniform(120, 8, 55);
        let tasks: Vec<KnnTask> = (0..6)
            .map(|t| KnnTask {
                q_idx: (t * 20..(t + 1) * 20).collect(),
                r_idx: (0..120).collect(),
                k: 4,
            })
            .collect();
        let cfg = GsknnConfig::default();
        let got = run_task_parallel(
            &x,
            &tasks,
            DistanceKind::SqL2,
            &cfg,
            MachineParams::ivy_bridge_1core(),
            3,
        );
        let mut exec = Gsknn::new(cfg);
        for (task, table) in tasks.iter().zip(&got) {
            let want = exec.run(&x, &task.q_idx, &task.r_idx, task.k, DistanceKind::SqL2);
            for i in 0..task.q_idx.len() {
                assert_eq!(table.row(i), want.row(i));
            }
        }
    }
}
