//! Task-parallel GSKNN (§2.5): many small independent kernels — the
//! leaves of a randomized KD-tree, the buckets of an LSH table — each too
//! small to data-parallelize profitably, scheduled across `p` workers.
//!
//! The paper's scheme: estimate each kernel's runtime with the §2.6 model,
//! sort descending, and greedily assign each task to the worker with the
//! least accumulated time — LPT (longest processing time) list
//! scheduling, Graham's classic 4/3-approximation on homogeneous workers.

use crate::buffers::KernelStats;
use crate::kernel::{Gsknn, GsknnConfig};
use crate::microkernel::FusedScalar;
use crate::model::{MachineParams, Model, ProblemSize};
use crate::obs::PhaseSet;
use dataset::{DistanceKind, PointSet};
use knn_select::NeighborTable;
use std::time::Instant;

/// One independent kNN kernel invocation.
#[derive(Clone, Debug)]
pub struct KnnTask {
    /// Query ids into the shared coordinate table.
    pub q_idx: Vec<usize>,
    /// Reference ids.
    pub r_idx: Vec<usize>,
    /// Neighbors to keep.
    pub k: usize,
}

/// Greedy LPT assignment: returns `p` buckets of task indices. Costs must
/// be non-negative; ties broken by original order (stable).
pub fn lpt_schedule(costs: &[f64], p: usize) -> Vec<Vec<usize>> {
    assert!(p > 0, "need at least one worker");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .expect("NaN task cost")
            .then(a.cmp(&b))
    });
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); p];
    let mut loads = vec![0.0f64; p];
    for t in order {
        // worker with the smallest accumulated load (first on ties)
        let w = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i)
            .expect("p > 0");
        buckets[w].push(t);
        loads[w] += costs[t];
    }
    buckets
}

/// The makespan (max worker load) of a schedule under the given costs.
pub fn makespan(schedule: &[Vec<usize>], costs: &[f64]) -> f64 {
    schedule
        .iter()
        .map(|b| b.iter().map(|&t| costs[t]).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Generic LPT executor: schedule `costs.len()` tasks onto `p` workers
/// (biggest estimated cost first, least-loaded worker wins), give each
/// worker its own state from `init` — a kernel context whose packing
/// workspace is then reused across every task in the bucket — and run
/// `work(&mut state, task_index)` for each assigned task. Results come
/// back in task order.
///
/// This is the reusable core of [`run_task_parallel`]; the randomized
/// KD-tree solver plugs its per-leaf kernel calls into it directly.
pub fn lpt_execute<S, R, I, F>(costs: &[f64], p: usize, init: I, work: F) -> Vec<R>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
    R: Send,
{
    let schedule = lpt_schedule(costs, p.max(1));
    let worker_outputs: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = schedule
            .iter()
            .map(|bucket| {
                scope.spawn(|_| {
                    let mut state = init();
                    bucket
                        .iter()
                        .map(|&t| (t, work(&mut state, t)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope");
    let mut results: Vec<Option<R>> = (0..costs.len()).map(|_| None).collect();
    for out in worker_outputs {
        for (t, r) in out {
            results[t] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every task scheduled exactly once"))
        .collect()
}

/// One task's predicted vs measured runtime from a traced run.
#[derive(Clone, Debug)]
pub struct TaskTrace {
    /// Task index (position in the input `tasks` slice).
    pub task: usize,
    /// Worker bucket the task was assigned to.
    pub worker: usize,
    /// §2.6 model cost estimate (seconds) the scheduler used.
    pub predicted: f64,
    /// Measured wall time of the kernel call (seconds).
    pub measured: f64,
}

impl TaskTrace {
    /// Relative estimation error `(measured - predicted) / predicted`
    /// (0.0 when the prediction is 0).
    pub fn rel_error(&self) -> f64 {
        if self.predicted == 0.0 {
            0.0
        } else {
            (self.measured - self.predicted) / self.predicted
        }
    }
}

/// Scheduler telemetry from [`run_task_parallel_traced`]: how well the
/// model-guided LPT schedule matched reality.
#[derive(Clone, Debug, Default)]
pub struct SchedulerTelemetry {
    /// Makespan of the LPT schedule under the *predicted* costs.
    pub predicted_makespan: f64,
    /// Realized makespan: max over workers of summed measured task times.
    pub realized_makespan: f64,
    /// Per-worker predicted load (seconds), in worker order.
    pub worker_predicted: Vec<f64>,
    /// Per-worker realized load (seconds), in worker order.
    pub worker_realized: Vec<f64>,
    /// Per-task traces, in task order.
    pub tasks: Vec<TaskTrace>,
    /// Kernel counters merged across all tasks and workers.
    pub stats: KernelStats,
    /// Phase times merged across all tasks and workers (all-zero unless
    /// built with the `obs` feature).
    pub phases: PhaseSet,
}

impl SchedulerTelemetry {
    /// Relative LPT makespan error `(realized - predicted) / predicted`
    /// (0.0 when the prediction is 0). Positive means the schedule ran
    /// longer than the model promised.
    pub fn makespan_error(&self) -> f64 {
        if self.predicted_makespan == 0.0 {
            0.0
        } else {
            (self.realized_makespan - self.predicted_makespan) / self.predicted_makespan
        }
    }

    /// Mean absolute relative task-cost estimation error.
    pub fn mean_abs_cost_error(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.tasks.iter().map(|t| t.rel_error().abs()).sum::<f64>() / self.tasks.len() as f64
        }
    }

    /// Realized load imbalance: max worker load over mean worker load
    /// (1.0 = perfectly balanced; 0.0 when nothing ran).
    pub fn load_imbalance(&self) -> f64 {
        let sum: f64 = self.worker_realized.iter().sum();
        if self.worker_realized.is_empty() || sum == 0.0 {
            0.0
        } else {
            self.realized_makespan / (sum / self.worker_realized.len() as f64)
        }
    }
}

/// Run `tasks` against `x` on `p` workers with model-guided LPT
/// scheduling. Returns one [`NeighborTable`] per task, in task order.
///
/// Each worker owns a private [`Gsknn`] context (workspace reuse within a
/// worker, zero sharing between workers).
pub fn run_task_parallel<T: FusedScalar>(
    x: &PointSet<T>,
    tasks: &[KnnTask],
    kind: DistanceKind,
    cfg: &GsknnConfig,
    machine: MachineParams,
    p: usize,
) -> Vec<NeighborTable<T>> {
    run_task_parallel_traced(x, tasks, kind, cfg, machine, p).0
}

/// [`run_task_parallel`] plus [`SchedulerTelemetry`]: per-task wall time
/// against the model estimate, per-worker realized load, and the LPT
/// predicted-vs-realized makespan. Task timing uses `Instant` at task
/// granularity and is always on (no `obs` feature needed); the merged
/// `phases` breakdown is only non-zero with `obs`.
pub fn run_task_parallel_traced<T: FusedScalar>(
    x: &PointSet<T>,
    tasks: &[KnnTask],
    kind: DistanceKind,
    cfg: &GsknnConfig,
    machine: MachineParams,
    p: usize,
) -> (Vec<NeighborTable<T>>, SchedulerTelemetry) {
    // rescale the machine constants to the element type so f32 costs are
    // estimated with doubled flop rate / halved stream traffic
    let model = Model::new(machine.for_scalar::<T>());
    let costs: Vec<f64> = tasks
        .iter()
        .map(|t| {
            model.estimate_runtime(&ProblemSize {
                m: t.q_idx.len(),
                n: t.r_idx.len(),
                d: x.dim(),
                k: t.k,
            })
        })
        .collect();
    let schedule = lpt_schedule(&costs, p.max(1));

    let mut results: Vec<Option<NeighborTable<T>>> = vec![None; tasks.len()];
    // Hand each worker its bucket plus a matching slice of result slots.
    // Results are scattered, so collect per worker and write back after.
    type WorkerOut<T> = Vec<(usize, NeighborTable<T>, f64, KernelStats, PhaseSet)>;
    let worker_outputs: Vec<WorkerOut<T>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = schedule
            .iter()
            .map(|bucket| {
                let cfg = cfg.clone();
                scope.spawn(move |_| {
                    let mut exec = Gsknn::new(cfg);
                    bucket
                        .iter()
                        .map(|&t| {
                            let task = &tasks[t];
                            let t0 = Instant::now();
                            let table = exec.run(x, &task.q_idx, &task.r_idx, task.k, kind);
                            let secs = t0.elapsed().as_secs_f64();
                            (t, table, secs, exec.last_stats(), exec.last_phases())
                        })
                        .collect::<WorkerOut<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope");

    let mut tel = SchedulerTelemetry {
        worker_predicted: schedule
            .iter()
            .map(|b| b.iter().map(|&t| costs[t]).sum())
            .collect(),
        worker_realized: vec![0.0; schedule.len()],
        ..Default::default()
    };
    let mut traces: Vec<Option<TaskTrace>> = vec![None; tasks.len()];
    for (w, out) in worker_outputs.into_iter().enumerate() {
        for (t, table, secs, stats, phases) in out {
            results[t] = Some(table);
            tel.worker_realized[w] += secs;
            tel.stats.merge(&stats);
            tel.phases.merge(&phases);
            traces[t] = Some(TaskTrace {
                task: t,
                worker: w,
                predicted: costs[t],
                measured: secs,
            });
        }
    }
    tel.predicted_makespan = makespan(&schedule, &costs);
    tel.realized_makespan = tel.worker_realized.iter().cloned().fold(0.0, f64::max);
    tel.tasks = traces
        .into_iter()
        .map(|t| t.expect("every task traced exactly once"))
        .collect();
    let tables = results
        .into_iter()
        .map(|r| r.expect("every task scheduled exactly once"))
        .collect();
    (tables, tel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;

    #[test]
    fn lpt_distributes_equal_tasks_evenly() {
        let costs = vec![1.0; 8];
        let s = lpt_schedule(&costs, 4);
        assert!(s.iter().all(|b| b.len() == 2));
        assert!((makespan(&s, &costs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_biggest_tasks_go_first_and_spread() {
        let costs = vec![5.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let s = lpt_schedule(&costs, 2);
        // the 5.0 task must sit alone-ish: makespan 5, not 6+
        assert!(makespan(&s, &costs) <= 5.0 + 1e-12);
    }

    #[test]
    fn lpt_within_graham_bound() {
        // Graham: LPT makespan <= (4/3 - 1/(3p)) * OPT; check against the
        // trivial lower bound max(total/p, max_cost).
        let costs: Vec<f64> = (1..=37).map(|i| ((i * 7919) % 100 + 1) as f64).collect();
        for p in [1usize, 2, 3, 5, 8] {
            let s = lpt_schedule(&costs, p);
            let total: f64 = costs.iter().sum();
            let lower = (total / p as f64).max(costs.iter().cloned().fold(0.0, f64::max));
            let bound = (4.0 / 3.0 - 1.0 / (3.0 * p as f64)) * lower;
            assert!(
                makespan(&s, &costs) <= bound + 1e-9,
                "p={p}: {} > {}",
                makespan(&s, &costs),
                bound
            );
        }
    }

    #[test]
    fn every_task_scheduled_exactly_once() {
        let costs = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        let s = lpt_schedule(&costs, 3);
        let mut seen: Vec<usize> = s.concat();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn traced_run_reports_consistent_telemetry() {
        let x = uniform(150, 10, 91);
        let tasks: Vec<KnnTask> = (0..5)
            .map(|t| KnnTask {
                q_idx: (t * 30..(t + 1) * 30).collect(),
                r_idx: (0..150).collect(),
                k: 3,
            })
            .collect();
        let cfg = GsknnConfig::default();
        let (tables, tel) = run_task_parallel_traced(
            &x,
            &tasks,
            DistanceKind::SqL2,
            &cfg,
            MachineParams::ivy_bridge_1core(),
            2,
        );
        assert_eq!(tables.len(), 5);
        assert_eq!(tel.tasks.len(), 5);
        assert_eq!(tel.worker_predicted.len(), 2);
        assert_eq!(tel.worker_realized.len(), 2);
        // every task appears once, in task order, on a valid worker
        for (i, tr) in tel.tasks.iter().enumerate() {
            assert_eq!(tr.task, i);
            assert!(tr.worker < 2);
            assert!(tr.predicted > 0.0);
            assert!(tr.measured >= 0.0);
        }
        // per-worker predicted loads sum to the total predicted cost
        let total_pred: f64 = tel.tasks.iter().map(|t| t.predicted).sum();
        let bucket_pred: f64 = tel.worker_predicted.iter().sum();
        assert!((total_pred - bucket_pred).abs() < 1e-12 * total_pred.max(1.0));
        // makespans are the max bucket loads
        let max_real = tel.worker_realized.iter().cloned().fold(0.0, f64::max);
        assert_eq!(tel.realized_makespan, max_real);
        assert!(tel.predicted_makespan > 0.0);
        assert!(tel.load_imbalance() >= 1.0 - 1e-12);
        // kernel counters were merged across workers
        assert!(tel.stats.tiles > 0);
    }

    #[test]
    fn lpt_execute_returns_results_in_task_order_with_worker_state() {
        let costs = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        // state = per-worker counter: each task records (task, nth-in-bucket)
        let out = lpt_execute(
            &costs,
            3,
            || 0usize,
            |seen, t| {
                *seen += 1;
                (t, *seen)
            },
        );
        assert_eq!(out.len(), costs.len());
        for (i, (t, nth)) in out.iter().enumerate() {
            assert_eq!(*t, i, "task order preserved");
            assert!(*nth >= 1, "worker state was initialized");
        }
        // worker state is shared within a bucket: with 7 tasks on 3
        // workers some bucket has >= 3 tasks, so some task is the 3rd
        // its worker ran — proof init() ran once per worker, not per task
        assert!(out.iter().any(|(_, nth)| *nth >= 3));
    }

    #[test]
    fn f32_task_parallel_matches_f32_serial() {
        let x: PointSet<f32> = uniform(120, 8, 55).cast();
        let tasks: Vec<KnnTask> = (0..4)
            .map(|t| KnnTask {
                q_idx: (t * 30..(t + 1) * 30).collect(),
                r_idx: (0..120).collect(),
                k: 4,
            })
            .collect();
        let cfg = GsknnConfig::default();
        let got = run_task_parallel(
            &x,
            &tasks,
            DistanceKind::SqL2,
            &cfg,
            MachineParams::ivy_bridge_1core(),
            2,
        );
        let mut exec: Gsknn<f32> = Gsknn::new(cfg);
        for (task, table) in tasks.iter().zip(&got) {
            let want = exec.run(&x, &task.q_idx, &task.r_idx, task.k, DistanceKind::SqL2);
            for i in 0..task.q_idx.len() {
                assert_eq!(table.row(i), want.row(i));
            }
        }
    }

    #[test]
    fn task_parallel_matches_serial_execution() {
        let x = uniform(120, 8, 55);
        let tasks: Vec<KnnTask> = (0..6)
            .map(|t| KnnTask {
                q_idx: (t * 20..(t + 1) * 20).collect(),
                r_idx: (0..120).collect(),
                k: 4,
            })
            .collect();
        let cfg = GsknnConfig::default();
        let got = run_task_parallel(
            &x,
            &tasks,
            DistanceKind::SqL2,
            &cfg,
            MachineParams::ivy_bridge_1core(),
            3,
        );
        let mut exec = Gsknn::new(cfg);
        for (task, table) in tasks.iter().zip(&got) {
            let want = exec.run(&x, &task.q_idx, &task.r_idx, task.k, DistanceKind::SqL2);
            for i in 0..task.q_idx.len() {
                assert_eq!(table.row(i), want.row(i));
            }
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_every_task_assigned_exactly_once(
                costs in proptest::collection::vec(0.0f64..100.0, 0..48),
                p in 1usize..9,
            ) {
                let s = lpt_schedule(&costs, p);
                prop_assert_eq!(s.len(), p);
                let mut seen: Vec<usize> = s.concat();
                seen.sort_unstable();
                let want: Vec<usize> = (0..costs.len()).collect();
                prop_assert_eq!(seen, want);
            }

            #[test]
            fn prop_makespan_at_most_total_cost(
                costs in proptest::collection::vec(0.0f64..100.0, 0..48),
                p in 1usize..9,
            ) {
                let s = lpt_schedule(&costs, p);
                let total: f64 = costs.iter().sum();
                let ms = makespan(&s, &costs);
                prop_assert!(ms >= 0.0);
                prop_assert!(
                    ms <= total + 1e-9,
                    "makespan {} exceeds total cost {}", ms, total
                );
            }

            #[test]
            fn prop_lpt_within_twice_lower_bound(
                costs in proptest::collection::vec(0.0f64..100.0, 1..48),
                p in 1usize..9,
            ) {
                // Any schedule's makespan is at least
                // max(max_cost, total/p); Graham's bound guarantees LPT is
                // within 4/3 of optimal, so certainly within 2x the lower
                // bound.
                let s = lpt_schedule(&costs, p);
                let total: f64 = costs.iter().sum();
                let max_cost = costs.iter().cloned().fold(0.0, f64::max);
                let lower = (total / p as f64).max(max_cost);
                let ms = makespan(&s, &costs);
                prop_assert!(ms + 1e-9 >= lower);
                prop_assert!(
                    ms <= 2.0 * lower + 1e-9,
                    "LPT makespan {} above 2x lower bound {}", ms, lower
                );
            }
        }
    }
}
