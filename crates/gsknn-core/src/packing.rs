//! Gather-packing (§2.3 "Packing"): GSKNN's defining difference from the
//! GEMM approach is that panels are packed **directly from the global
//! coordinate table `X` through the index lists `q`/`r`** — the explicit
//! collection `Q(:,i) = X(:,q(i))` of Algorithm 2.1 never happens, saving
//! the `2dm + 2dn` memory traffic the performance model charges the
//! baseline for (Eq. 5). Generic over the element type: the micro-panel
//! widths come from the type's own tile (`MR×NR` = 8×4 for f64, 8×8 for
//! f32), so the same packing serves both precisions.

use dataset::PointSet;
use gsknn_scalar::GsknnScalar;

/// Gather-pack the query-side panel `Qc`: points `q_idx[ic .. ic+mcb]`,
/// coordinates `pc .. pc+dcb`, as `T::MR`-wide micro-panels (element
/// `(i, p)` of micro-panel `ib` at `ib*MR*dcb + p*MR + i`), fringe
/// zero-padded.
///
/// `out.len()` must equal `⌈mcb/MR⌉ * MR * dcb`.
pub fn pack_q_panel<T: GsknnScalar>(
    x: &PointSet<T>,
    q_idx: &[usize],
    ic: usize,
    mcb: usize,
    pc: usize,
    dcb: usize,
    out: &mut [T],
) {
    gather_pack(x, q_idx, ic, mcb, pc, dcb, T::MR, out)
}

/// Gather-pack the reference-side panel `Rc` (`T::NR`-wide micro-panels).
pub fn pack_r_panel<T: GsknnScalar>(
    x: &PointSet<T>,
    r_idx: &[usize],
    jc: usize,
    ncb: usize,
    pc: usize,
    dcb: usize,
    out: &mut [T],
) {
    gather_pack(x, r_idx, jc, ncb, pc, dcb, T::NR, out)
}

#[allow(clippy::too_many_arguments)]
fn gather_pack<T: GsknnScalar>(
    x: &PointSet<T>,
    idx: &[usize],
    c0: usize,
    cols: usize,
    pc: usize,
    dcb: usize,
    w: usize,
    out: &mut [T],
) {
    let blocks = cols.div_ceil(w);
    assert_eq!(out.len(), blocks * w * dcb, "packed buffer size mismatch");
    debug_assert!(c0 + cols <= idx.len());
    for ib in 0..blocks {
        let base = ib * w * dcb;
        let width = (cols - ib * w).min(w);
        for i in 0..width {
            let src = x.point_slab(idx[c0 + ib * w + i], pc, dcb);
            for (p, &v) in src.iter().enumerate() {
                out[base + p * w + i] = v;
            }
        }
        // fringe zero-padding so the micro-kernel runs full tiles
        for i in width..w {
            for p in 0..dcb {
                out[base + p * w + i] = T::ZERO;
            }
        }
    }
}

/// Gather squared norms `X2(idx[c0..c0+cols])` into `out`, padding the
/// `w`-aligned tail with zeros (pad distances are discarded by the
/// selection bounds, so their value is irrelevant).
pub fn pack_sqnorms<T: GsknnScalar>(
    x: &PointSet<T>,
    idx: &[usize],
    c0: usize,
    cols: usize,
    w: usize,
    out: &mut [T],
) {
    let padded = cols.div_ceil(w) * w;
    assert_eq!(out.len(), padded, "sqnorm buffer size mismatch");
    for i in 0..cols {
        out[i] = x.sqnorm(idx[c0 + i]);
    }
    for slot in out[cols..].iter_mut() {
        *slot = T::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;
    use gemm_kernel::{MR, NR};

    #[test]
    fn q_panel_gathers_through_indices() {
        let x = uniform(10, 3, 1);
        let q = [7usize, 2, 9, 0, 4, 1, 8, 3, 5]; // 9 queries, MR=8 -> 2 blocks
        let mcb = 9usize;
        let dcb = 2;
        let blocks = mcb.div_ceil(MR);
        let mut out = vec![f64::NAN; blocks * MR * dcb];
        pack_q_panel(&x, &q, 0, mcb, 1, dcb, &mut out);
        // element (i=0, p=0) of block 0: X(1, q[0]=7)
        assert_eq!(out[0], x.point(7)[1]);
        // element (i=3, p=1) of block 0: X(2, q[3]=0)
        assert_eq!(out[MR + 3], x.point(0)[2]);
        // block 1 holds only q[8]=5, rest zero-padded
        let b1 = MR * dcb;
        assert_eq!(out[b1], x.point(5)[1]);
        assert_eq!(out[b1 + 1], 0.0);
        assert_eq!(out[b1 + MR + 1], 0.0);
    }

    #[test]
    fn r_panel_respects_offset() {
        let x = uniform(6, 4, 2);
        let r = [5usize, 4, 3, 2, 1, 0];
        let mut out = vec![f64::NAN; NR * 4];
        pack_r_panel(&x, &r, 2, 4, 0, 4, &mut out);
        // (j=0, p=0): X(0, r[2]=3)
        assert_eq!(out[0], x.point(3)[0]);
        // (j=3, p=2): X(2, r[5]=0)
        assert_eq!(out[2 * NR + 3], x.point(0)[2]);
    }

    #[test]
    fn f32_r_panel_uses_eight_wide_micro_panels() {
        let x: dataset::PointSet<f32> = uniform(10, 3, 5).cast();
        let r: Vec<usize> = (0..10).rev().collect();
        let nr32 = <f32 as GsknnScalar>::NR;
        assert_eq!(nr32, 8);
        let blocks = 10usize.div_ceil(nr32);
        let mut out = vec![f32::NAN; blocks * nr32 * 3];
        pack_r_panel(&x, &r, 0, 10, 0, 3, &mut out);
        // (j=0, p=0): X(0, r[0]=9); (j=2, p=1) in block 0: X(1, r[2]=7)
        assert_eq!(out[0], x.point(9)[0]);
        assert_eq!(out[nr32 + 2], x.point(7)[1]);
        // block 1 holds r[8..10] = {1, 0}, rest zero-padded
        let b1 = nr32 * 3;
        assert_eq!(out[b1], x.point(1)[0]);
        assert_eq!(out[b1 + 2], 0.0);
    }

    #[test]
    fn sqnorms_gather_and_pad() {
        let x = uniform(5, 2, 3);
        let idx = [4usize, 1, 3];
        let mut out = vec![f64::NAN; 4]; // W=4 pad
        pack_sqnorms(&x, &idx, 0, 3, 4, &mut out);
        assert_eq!(out[0], x.sqnorm(4));
        assert_eq!(out[2], x.sqnorm(3));
        assert_eq!(out[3], 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Gather-packing through an index permutation must equal
            /// strided packing of the permuted dense matrix — the
            /// equivalence that lets GSKNN skip the collection phase.
            #[test]
            fn gather_equals_collect_then_pack(
                n in 1usize..25,
                d in 1usize..10,
                seed in 0u64..500,
                idx in prop::collection::vec(0usize..25, 1..30),
            ) {
                let idx: Vec<usize> = idx.into_iter().map(|i| i % n).collect();
                let x = uniform(n, d, seed);
                let collected = x.gather(&idx); // dense d×|idx| colmajor
                let mcb = idx.len();
                let dcb = d;
                let blocks = mcb.div_ceil(MR);
                let mut via_gather = vec![f64::NAN; blocks * MR * dcb];
                let mut via_collect = via_gather.clone();
                pack_q_panel(&x, &idx, 0, mcb, 0, dcb, &mut via_gather);
                gemm_kernel::pack_a_panel(&collected, d, 0, mcb, 0, dcb, &mut via_collect);
                prop_assert_eq!(via_gather, via_collect);
            }

            /// Sub-window packing agrees with full packing on the
            /// overlapping region for the reference side too.
            #[test]
            fn r_panel_subwindow(
                n in 4usize..30,
                d in 2usize..8,
                seed in 0u64..100,
            ) {
                let x = uniform(n, d, seed);
                let r_idx: Vec<usize> = (0..n).rev().collect();
                let jc = n / 4;
                let ncb = n - jc;
                let pc = d / 2;
                let dcb = d - pc;
                let blocks = ncb.div_ceil(NR);
                let mut out = vec![f64::NAN; blocks * NR * dcb];
                pack_r_panel(&x, &r_idx, jc, ncb, pc, dcb, &mut out);
                // spot-check every real element against the source
                for jb in 0..blocks {
                    let width = (ncb - jb * NR).min(NR);
                    for p in 0..dcb {
                        for j in 0..width {
                            let got = out[jb * NR * dcb + p * NR + j];
                            let want = x.point(r_idx[jc + jb * NR + j])[pc + p];
                            prop_assert_eq!(got, want);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn matches_gemm_kernel_packing_on_identity_indices() {
        // With q = 0..n, gather-packing X must equal strided packing of
        // X's raw buffer — the two packing implementations cross-check.
        let x = uniform(7, 5, 4);
        let q: Vec<usize> = (0..7).collect();
        let mcb = 7usize;
        let dcb = 3;
        let blocks = mcb.div_ceil(MR);
        let mut got = vec![f64::NAN; blocks * MR * dcb];
        let mut want = got.clone();
        pack_q_panel(&x, &q, 0, mcb, 1, dcb, &mut got);
        gemm_kernel::pack_a_panel(x.as_slice(), 5, 0, mcb, 1, dcb, &mut want);
        assert_eq!(got, want);
    }
}
