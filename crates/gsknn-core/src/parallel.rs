//! Data-parallel GSKNN (§2.5): parallelize the **4th loop**. Every query
//! chunk of `mc` rows goes to one worker, which packs its private `Qc`
//! (the paper: "each processor will create a private Qc and preserve it
//! in its private L2") while the packed `Rc` panel is shared read-only
//! ("Rc is shared and preserved in the L3 cache"). Parallelizing the
//! reference-side loops (3rd/6th) would race on the per-query heaps —
//! the paper's footnote 5 — so we never do.
//!
//! Load balance: when `m` is not a multiple of `mc × p` the fixed `mc`
//! leaves stragglers, so `mc` is re-derived per problem
//! ([`dynamic_mc`]) — the paper's "dynamically deciding mc".
//!
//! Allocation discipline: the per-worker `Qc`/`Qc2` scratch buffers are
//! created once per worker via `map_init` and reused across every chunk
//! that worker processes — the 4th-loop closure itself never allocates
//! (the buffers only `resize`, which is a no-op after the first chunk).

use crate::buffers::KernelStats;
use crate::microkernel::{FusedScalar, MR};
use crate::obs::{Phase, PhaseSet};
use crate::packing::{pack_r_panel, pack_sqnorms};
use crate::params::Variant;
use crate::variants::{
    cc_geometry, feed_degenerate, ic_block_body, select_block, DriverArgs, RefBlock, SelHeap,
};
use gemm_kernel::{AlignedBuf, GemmParams};
use rayon::prelude::*;

/// Pick an effective `mc` so the 4th loop splits into a whole number of
/// near-equal chunks per worker: smallest multiple of `MR` such that the
/// chunk count is a multiple of `p` (when `m` is large enough) and no
/// chunk exceeds the cache-derived `mc_base`. (`MR = 8` for both element
/// types, so this stays type-free.)
pub fn dynamic_mc(m: usize, p: usize, mc_base: usize) -> usize {
    assert!(p > 0 && mc_base >= MR);
    if m == 0 {
        return mc_base;
    }
    let min_chunks = m.div_ceil(mc_base).max(1);
    let chunks = min_chunks.div_ceil(p) * p;
    (m.div_ceil(chunks)).div_ceil(MR) * MR
}

/// Run the kernel with the data-parallel 4th-loop scheme on the current
/// rayon thread pool, using up to `p` query chunks per sweep. Returns the
/// observability counters and phase times merged across all workers
/// (phase times sum worker CPU time, so they can exceed wall time).
///
/// Exactly equivalent to [`crate::variants::run_serial`] (bit-identical
/// heaps: workers own disjoint query ranges, so no merge is needed).
pub fn run_data_parallel<T: FusedScalar>(
    args: &DriverArgs<'_, T>,
    heaps: &mut [SelHeap<T>],
    p: usize,
) -> (KernelStats, PhaseSet) {
    let nr = T::NR;
    let m = args.q_idx.len();
    let n = args.r_idx.len();
    let d = args.xq.dim();
    assert_eq!(heaps.len(), m, "one heap per query");
    assert!(
        args.variant != Variant::Auto,
        "driver needs a concrete variant"
    );
    args.params
        .validate_for::<T>()
        .expect("invalid blocking parameters");
    let mut total_stats = KernelStats::default();
    let mut total_phases = PhaseSet::new();
    if m == 0 || n == 0 || d == 0 {
        feed_degenerate(args, heaps);
        return (total_stats, total_phases);
    }

    let GemmParams { dc, nc, .. } = args.params;
    let mc = dynamic_mc(m, p.max(1), args.params.mc);
    let variant = args.variant;
    let geo = cc_geometry(args);
    let mut cc = AlignedBuf::new();
    if geo.need_cc {
        cc.resize(geo.pad_m * geo.ldcc);
    }
    let mut r_pack = AlignedBuf::new();
    let mut r2_pack = AlignedBuf::new();

    for jc in (0..n).step_by(nc) {
        let ncb = (n - jc).min(nc);
        let col0 = if variant == Variant::Var6 { jc } else { 0 };

        for pc in (0..d).step_by(dc) {
            let dcb = (d - pc).min(dc);
            let first = pc == 0;
            let last = pc + dcb >= d;

            let nblocks = ncb.div_ceil(nr);
            total_phases.time(Phase::PackR, || {
                r_pack.resize(nblocks * nr * dcb);
                pack_r_panel(args.xr, args.r_idx, jc, ncb, pc, dcb, r_pack.as_mut_slice());
                if last {
                    r2_pack.resize(nblocks * nr);
                    pack_sqnorms(args.xr, args.r_idx, jc, ncb, nr, r2_pack.as_mut_slice());
                }
            });
            let rb = RefBlock {
                r_pack: r_pack.as_slice(),
                r2_pack: r2_pack.as_slice(),
                jc,
                ncb,
                dcb,
                first,
                last,
                col0,
                pc,
            };

            // Parallel 4th loop: zip disjoint query/heap/Cc chunks. Each
            // worker builds its Qc/Qc2 scratch once (`map_init`) and
            // reuses it for every chunk it processes; the per-chunk
            // closure is allocation-free. Counters/phase times come back
            // in chunk order and fold into the run totals.
            let heap_chunks = heaps.par_chunks_mut(mc);
            let nchunks = m.div_ceil(mc);
            let worker_obs: Vec<(KernelStats, PhaseSet)> = if geo.need_cc {
                cc.as_mut_slice()
                    .par_chunks_mut(mc * geo.ldcc)
                    .zip(heap_chunks)
                    .enumerate()
                    .map_init(
                        || (AlignedBuf::new(), AlignedBuf::new()),
                        |(q_pack, q2_pack), (ci, (cc_rows, heap_chunk))| {
                            let ic = ci * mc;
                            let mcb = (m - ic).min(mc);
                            let mut stats = KernelStats::default();
                            let mut phases = PhaseSet::new();
                            ic_block_body(
                                args,
                                ic,
                                mcb,
                                &rb,
                                geo.ldcc,
                                q_pack,
                                q2_pack,
                                Some(cc_rows),
                                heap_chunk,
                                &mut stats,
                                &mut phases,
                            );
                            (stats, phases)
                        },
                    )
                    .collect()
            } else {
                heap_chunks
                    .enumerate()
                    .map_init(
                        || (AlignedBuf::new(), AlignedBuf::new()),
                        |(q_pack, q2_pack), (ci, heap_chunk)| {
                            let ic = ci * mc;
                            let mcb = (m - ic).min(mc);
                            let mut stats = KernelStats::default();
                            let mut phases = PhaseSet::new();
                            ic_block_body(
                                args,
                                ic,
                                mcb,
                                &rb,
                                geo.ldcc,
                                q_pack,
                                q2_pack,
                                None,
                                heap_chunk,
                                &mut stats,
                                &mut phases,
                            );
                            (stats, phases)
                        },
                    )
                    .collect()
            };
            for (stats, phases) in &worker_obs {
                total_stats.merge(stats);
                total_phases.merge(phases);
            }
            debug_assert_eq!(nchunks, m.div_ceil(mc));
        }
        // Var#5: parallel per-query selection over this jc block
        if variant == Variant::Var5 {
            let cc_ref = cc.as_slice();
            let worker_obs: Vec<(KernelStats, PhaseSet)> = heaps
                .par_iter_mut()
                .enumerate()
                .map(|(i, heap)| {
                    let mut stats = KernelStats::default();
                    let mut phases = PhaseSet::new();
                    phases.time(Phase::Select, || {
                        select_block(
                            cc_ref,
                            geo.ldcc,
                            i..i + 1,
                            col0..col0 + ncb,
                            jc,
                            args.r_idx,
                            std::slice::from_mut(heap),
                            &mut stats,
                        )
                    });
                    (stats, phases)
                })
                .collect();
            for (stats, phases) in &worker_obs {
                total_stats.merge(stats);
                total_phases.merge(phases);
            }
        }
    }
    if variant == Variant::Var6 {
        let cc_ref = cc.as_slice();
        let worker_obs: Vec<(KernelStats, PhaseSet)> = heaps
            .par_iter_mut()
            .enumerate()
            .map(|(i, heap)| {
                let mut stats = KernelStats::default();
                let mut phases = PhaseSet::new();
                phases.time(Phase::Select, || {
                    select_block(
                        cc_ref,
                        geo.ldcc,
                        i..i + 1,
                        0..n,
                        0,
                        args.r_idx,
                        std::slice::from_mut(heap),
                        &mut stats,
                    )
                });
                (stats, phases)
            })
            .collect();
        for (stats, phases) in &worker_obs {
            total_stats.merge(stats);
            total_phases.merge(phases);
        }
    }
    (total_stats, total_phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::GsknnWorkspace;
    use crate::variants::run_serial;
    use dataset::{uniform, DistanceKind, PointSet};
    use knn_select::Neighbor;

    #[test]
    fn dynamic_mc_divides_work_evenly() {
        // m = 1000, p = 4, mc_base = 104 -> 12 chunks (multiple of 4)
        let mc = dynamic_mc(1000, 4, 104);
        assert_eq!(mc % MR, 0);
        let chunks = 1000usize.div_ceil(mc);
        assert_eq!(chunks % 4, 0);
        assert!(mc <= 104);
    }

    #[test]
    fn dynamic_mc_small_m_single_chunk_per_worker() {
        let mc = dynamic_mc(16, 8, 104);
        assert_eq!(mc % MR, 0);
        assert!(16usize.div_ceil(mc) <= 8);
    }

    #[test]
    fn dynamic_mc_degenerate() {
        assert_eq!(dynamic_mc(0, 4, 104), 104);
        assert!(dynamic_mc(1, 1, MR) >= MR);
    }

    fn sorted_rows(heaps: Vec<SelHeap>) -> Vec<Vec<Neighbor>> {
        heaps.into_iter().map(|h| h.into_sorted_vec()).collect()
    }

    #[test]
    fn parallel_equals_serial_every_variant() {
        let x = uniform(150, 12, 77);
        let q_idx: Vec<usize> = (0..70).collect();
        let r_idx: Vec<usize> = (0..150).collect();
        for variant in Variant::ALL {
            let args = DriverArgs::same(
                &x,
                &q_idx,
                &r_idx,
                DistanceKind::SqL2,
                GemmParams::tiny(),
                variant,
            );
            let mut serial: Vec<SelHeap> = (0..70).map(|_| SelHeap::new(5, false)).collect();
            let mut ws = GsknnWorkspace::new();
            run_serial(&args, &mut serial, &mut ws);
            let mut par: Vec<SelHeap> = (0..70).map(|_| SelHeap::new(5, false)).collect();
            run_data_parallel(&args, &mut par, 4);
            for (i, (s, p)) in sorted_rows(serial)
                .into_iter()
                .zip(sorted_rows(par))
                .enumerate()
            {
                assert_eq!(s, p, "{} row {i}", variant.name());
            }
        }
    }

    #[test]
    fn parallel_multipass_and_norms() {
        let x = uniform(80, 30, 99); // d=30 > tiny dc=8: multipass
        let q_idx: Vec<usize> = (10..60).collect();
        let r_idx: Vec<usize> = (0..80).collect();
        for kind in [DistanceKind::SqL2, DistanceKind::LInf] {
            let args =
                DriverArgs::same(&x, &q_idx, &r_idx, kind, GemmParams::tiny(), Variant::Var1);
            let mut serial: Vec<SelHeap> = (0..50).map(|_| SelHeap::new(7, false)).collect();
            let mut ws = GsknnWorkspace::new();
            run_serial(&args, &mut serial, &mut ws);
            let mut par: Vec<SelHeap> = (0..50).map(|_| SelHeap::new(7, false)).collect();
            run_data_parallel(&args, &mut par, 3);
            for (s, p) in sorted_rows(serial).into_iter().zip(sorted_rows(par)) {
                assert_eq!(s, p, "{}", kind.name());
            }
        }
    }

    #[test]
    fn f32_parallel_equals_f32_serial() {
        // bit-identical across schemes in f32 too: same chunk geometry,
        // same kernels, disjoint heap ownership
        let x: PointSet<f32> = uniform(150, 12, 77).cast();
        let q_idx: Vec<usize> = (0..70).collect();
        let r_idx: Vec<usize> = (0..150).collect();
        for variant in [Variant::Var1, Variant::Var3, Variant::Var6] {
            let args = DriverArgs::same(
                &x,
                &q_idx,
                &r_idx,
                DistanceKind::SqL2,
                GemmParams::tiny_for::<f32>(),
                variant,
            );
            let mut serial: Vec<SelHeap<f32>> = (0..70).map(|_| SelHeap::new(5, false)).collect();
            let mut ws = GsknnWorkspace::new();
            run_serial(&args, &mut serial, &mut ws);
            let mut par: Vec<SelHeap<f32>> = (0..70).map(|_| SelHeap::new(5, false)).collect();
            run_data_parallel(&args, &mut par, 4);
            for (i, (s, p)) in serial.into_iter().zip(par).enumerate() {
                assert_eq!(
                    s.into_sorted_vec(),
                    p.into_sorted_vec(),
                    "{} row {i}",
                    variant.name()
                );
            }
        }
    }
}
